//! Minimal data-parallel helpers over `std::thread::scope`.
//!
//! The workspace used to depend on `rayon` for a handful of
//! embarrassingly-parallel loops (per-SM simulation, degree histograms,
//! chunked generators, parallel sums and sorts). That pulled a large
//! external dependency tree into an otherwise self-contained project and
//! broke builds in offline environments. These helpers cover exactly the
//! patterns the workspace needs with scoped OS threads and nothing else.
//!
//! Determinism: every helper partitions work into contiguous index ranges
//! and combines the per-range results **in index order**, so the output is
//! identical regardless of thread count — including the fully sequential
//! build with the `threads` feature disabled.

#![forbid(unsafe_code)]

use std::thread;

/// Number of worker threads the helpers will use: the machine's available
/// parallelism, or 1 when the `threads` feature is disabled.
pub fn max_threads() -> usize {
    if cfg!(feature = "threads") {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    }
}

/// Parallel `(0..n).map(f).collect()`. Results come back in index order.
pub fn map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = max_threads().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let lo = n * w / workers;
                let hi = n * (w + 1) / workers;
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("tc-par worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Parallel `items.iter().map(f).collect()`. Results come back in order.
pub fn map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_range(items.len(), |i| f(&items[i]))
}

/// Parallel map over fixed-size chunks of `items`; `f` receives the chunk
/// index and the chunk. One result per chunk, in chunk order.
pub fn map_chunks<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n = items.len().div_ceil(chunk_len);
    map_range(n, |i| {
        let lo = i * chunk_len;
        let hi = (lo + chunk_len).min(items.len());
        f(i, &items[lo..hi])
    })
}

/// Parallel sum of `f(i)` for `i` in `0..n`, evaluated in contiguous
/// per-worker ranges (each worker sums locally; partials add in order).
pub fn sum_by_u64<F>(n: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    if n == 0 {
        return 0;
    }
    let workers = max_threads().min(n);
    map_range(workers, |w| {
        let lo = n * w / workers;
        let hi = n * (w + 1) / workers;
        (lo..hi).map(&f).sum::<u64>()
    })
    .into_iter()
    .sum()
}

/// Parallel unstable sort: chunk-sort on worker threads, then bottom-up
/// two-way merges. Falls back to `slice::sort_unstable` for small inputs
/// or single-threaded builds.
pub fn sort_unstable<T: Ord + Send + Copy>(v: &mut [T]) {
    let workers = max_threads();
    if workers <= 1 || v.len() < 8192 {
        v.sort_unstable();
        return;
    }
    let chunk = v.len().div_ceil(workers);
    thread::scope(|s| {
        for piece in v.chunks_mut(chunk) {
            s.spawn(move || piece.sort_unstable());
        }
    });
    let mut run = chunk;
    let mut buf: Vec<T> = Vec::with_capacity(v.len());
    while run < v.len() {
        let mut lo = 0;
        while lo + run < v.len() {
            let mid = lo + run;
            let hi = (mid + run).min(v.len());
            merge_runs(&v[lo..mid], &v[mid..hi], &mut buf);
            v[lo..hi].copy_from_slice(&buf);
            lo = hi;
        }
        run *= 2;
    }
}

fn merge_runs<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        *seed >> 16
    }

    #[test]
    fn map_range_preserves_order() {
        let got = map_range(1000, |i| i * 3);
        assert_eq!(got, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        assert!(map_range(0, |i| i).is_empty());
    }

    #[test]
    fn map_slice_matches_sequential() {
        let items: Vec<u32> = (0..513).collect();
        assert_eq!(
            map_slice(&items, |x| x + 1),
            items.iter().map(|x| x + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn map_chunks_covers_everything_once() {
        let items: Vec<u64> = (0..100_001).collect();
        let partials = map_chunks(&items, 4096, |_, c| c.iter().sum::<u64>());
        assert_eq!(partials.len(), items.len().div_ceil(4096));
        assert_eq!(partials.iter().sum::<u64>(), items.iter().sum::<u64>());
    }

    #[test]
    fn sum_by_matches_sequential() {
        assert_eq!(sum_by_u64(0, |_| 7), 0);
        assert_eq!(sum_by_u64(12345, |i| i as u64), (0..12345u64).sum());
    }

    #[test]
    fn sort_matches_std_sort() {
        let mut seed = 42u64;
        let mut v: Vec<u64> = (0..50_000).map(|_| lcg(&mut seed) % 1000).collect();
        let mut want = v.clone();
        want.sort_unstable();
        sort_unstable(&mut v);
        assert_eq!(v, want);
        let mut empty: Vec<u64> = Vec::new();
        sort_unstable(&mut empty);
        assert!(empty.is_empty());
    }
}
