//! The deterministic metrics registry.
//!
//! Series are keyed by `(name, sorted label pairs)` and stored in
//! `BTreeMap`s, so every iteration — and therefore every export — is in
//! one canonical order no matter which worker thread touched which series
//! first. Counters and histogram cells are `u64`s (associative,
//! commutative addition: the totals cannot depend on scheduling), and
//! durations enter the registry already quantized to integer nanoseconds.
//!
//! Each metric carries a [`Determinism`] class chosen at its first use:
//! `Deterministic` series hold modeled quantities and must be
//! byte-identical across runs and worker counts; `Advisory` series hold
//! host-wall timings and schedule-dependent observations (queue depths,
//! shed counts) and are exported in a separate section that CI mode
//! omits.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json_string;

/// Number of finite histogram buckets (the last array slot is overflow).
const BUCKETS: usize = 25;

/// Fixed log-spaced histogram boundaries, in nanoseconds: `1 µs · 2^k`
/// for `k = 0..25`, covering 1 µs to ~16.8 s of modeled time. Fixed
/// boundaries (rather than adaptive ones) are what make histogram
/// snapshots comparable across runs, worker counts, and PRs.
pub const BUCKET_BOUNDS_NS: [u64; BUCKETS] = {
    let mut bounds = [0u64; BUCKETS];
    let mut k = 0;
    while k < BUCKETS {
        bounds[k] = 1_000u64 << k;
        k += 1;
    }
    bounds
};

/// Which export section a metric belongs to; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Determinism {
    /// Modeled quantities: byte-identical across runs and worker counts.
    Deterministic,
    /// Host-wall timings and schedule-dependent observations.
    Advisory,
}

/// Metric shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
struct Meta {
    kind: MetricKind,
    class: Determinism,
    help: String,
}

/// Canonical series key: metric name plus label pairs sorted by label
/// name. `Ord` on this key is the one export order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

#[derive(Clone, Debug)]
struct Histogram {
    /// Per-bucket (non-cumulative) counts; `buckets[BUCKETS]` is overflow.
    buckets: [u64; BUCKETS + 1],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS + 1],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn observe(&mut self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(BUCKETS);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }
}

#[derive(Clone, Debug)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Histogram>),
}

#[derive(Default)]
struct State {
    meta: BTreeMap<String, Meta>,
    series: BTreeMap<SeriesKey, Value>,
}

/// Thread-safe metrics registry; see the module docs. One registry per
/// serving process (the engine owns one for its lifetime, accumulating
/// across batches).
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<State>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn touch(state: &mut State, name: &str, kind: MetricKind, class: Determinism, help: &str) {
        let meta = state.meta.entry(name.to_string()).or_insert_with(|| Meta {
            kind,
            class,
            help: help.to_string(),
        });
        debug_assert_eq!(meta.kind, kind, "metric {name} re-used with another kind");
        debug_assert_eq!(
            meta.class, class,
            "metric {name} re-used with another class"
        );
    }

    /// Add `delta` to a counter series (creating it at zero).
    pub fn inc_counter(
        &self,
        class: Determinism,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        delta: u64,
    ) {
        let mut state = self.state.lock().unwrap();
        Self::touch(&mut state, name, MetricKind::Counter, class, help);
        match state
            .series
            .entry(series_key(name, labels))
            .or_insert(Value::Counter(0))
        {
            Value::Counter(c) => *c += delta,
            other => debug_assert!(false, "{name} is not a counter: {other:?}"),
        }
    }

    /// Set a gauge series to `value`.
    pub fn set_gauge(
        &self,
        class: Determinism,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let mut state = self.state.lock().unwrap();
        Self::touch(&mut state, name, MetricKind::Gauge, class, help);
        state
            .series
            .insert(series_key(name, labels), Value::Gauge(value));
    }

    /// Raise a gauge series to `value` if it is higher than the current
    /// reading — the high-water-mark idiom (queue depth, fleet size).
    pub fn gauge_max(
        &self,
        class: Determinism,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let mut state = self.state.lock().unwrap();
        Self::touch(&mut state, name, MetricKind::Gauge, class, help);
        match state
            .series
            .entry(series_key(name, labels))
            .or_insert(Value::Gauge(f64::NEG_INFINITY))
        {
            Value::Gauge(g) => *g = g.max(value),
            other => debug_assert!(false, "{name} is not a gauge: {other:?}"),
        }
    }

    /// Record one observation, in integer nanoseconds, into a fixed
    /// log-bucket histogram series.
    pub fn observe_ns(
        &self,
        class: Determinism,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        ns: u64,
    ) {
        let mut state = self.state.lock().unwrap();
        Self::touch(&mut state, name, MetricKind::Histogram, class, help);
        match state
            .series
            .entry(series_key(name, labels))
            .or_insert_with(|| Value::Histogram(Box::new(Histogram::new())))
        {
            Value::Histogram(h) => h.observe(ns),
            other => debug_assert!(false, "{name} is not a histogram: {other:?}"),
        }
    }

    /// Read one counter series back (0 if absent) — the accessor tests and
    /// report plumbing use.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let state = self.state.lock().unwrap();
        match state.series.get(&series_key(name, labels)) {
            Some(Value::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Read one gauge series back (`None` if absent).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let state = self.state.lock().unwrap();
        match state.series.get(&series_key(name, labels)) {
            Some(Value::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Snapshot every family and series in canonical order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.state.lock().unwrap();
        let mut deterministic = Vec::new();
        let mut advisory = Vec::new();
        for (name, meta) in &state.meta {
            let series: Vec<SeriesSnapshot> = state
                .series
                .range(
                    SeriesKey {
                        name: name.clone(),
                        labels: Vec::new(),
                    }..,
                )
                .take_while(|(k, _)| &k.name == name)
                .map(|(k, v)| SeriesSnapshot {
                    labels: k.labels.clone(),
                    value: match v {
                        Value::Counter(c) => MetricValue::Counter(*c),
                        Value::Gauge(g) => MetricValue::Gauge(*g),
                        Value::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .filter(|(_, c)| **c > 0)
                                .map(|(i, c)| (BUCKET_BOUNDS_NS.get(i).copied(), *c))
                                .collect(),
                            count: h.count,
                            sum_ns: h.sum_ns,
                            max_ns: h.max_ns,
                        }),
                    },
                })
                .collect();
            let family = MetricFamily {
                name: name.clone(),
                kind: meta.kind,
                class: meta.class,
                help: meta.help.clone(),
                series,
            };
            match meta.class {
                Determinism::Deterministic => deterministic.push(family),
                Determinism::Advisory => advisory.push(family),
            }
        }
        MetricsSnapshot {
            deterministic,
            advisory,
        }
    }
}

/// One metric family in a snapshot: shared name/kind/help plus its series
/// in canonical label order.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricFamily {
    pub name: String,
    pub kind: MetricKind,
    pub class: Determinism,
    pub help: String,
    pub series: Vec<SeriesSnapshot>,
}

/// One series: sorted labels and the value.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

/// Frozen histogram state: occupied buckets only, `(upper bound in ns —
/// `None` = overflow, non-cumulative count)`, plus exact integer totals.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<(Option<u64>, u64)>,
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
}

/// A frozen registry view, split by determinism class; see the module
/// docs for the export contract.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    pub deterministic: Vec<MetricFamily>,
    pub advisory: Vec<MetricFamily>,
}

impl MetricsSnapshot {
    /// Canonical JSON. With `include_advisory` false (CI mode) the
    /// advisory section renders as `null`, so the bytes depend only on
    /// deterministic series.
    pub fn to_json(&self, include_advisory: bool) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"tc-telemetry/1\",\n");
        out.push_str("  \"deterministic\": ");
        push_families_json(&mut out, &self.deterministic, "  ");
        out.push_str(",\n  \"advisory\": ");
        if include_advisory {
            push_families_json(&mut out, &self.advisory, "  ");
        } else {
            out.push_str("null");
        }
        out.push_str("\n}\n");
        out
    }

    /// Prometheus text exposition (version 0.0.4): families globally
    /// sorted by name, `# HELP`/`# TYPE` headers, histogram series as
    /// cumulative `_bucket`/`_sum`/`_count` with millisecond `le` labels.
    /// The advisory class is marked in the HELP text.
    pub fn to_prometheus(&self) -> String {
        let mut families: Vec<&MetricFamily> =
            self.deterministic.iter().chain(&self.advisory).collect();
        families.sort_by(|a, b| a.name.cmp(&b.name));
        let mut out = String::with_capacity(1024);
        for fam in families {
            let class = match fam.class {
                Determinism::Deterministic => "deterministic",
                Determinism::Advisory => "advisory",
            };
            out.push_str(&format!(
                "# HELP {} [{}] {}\n# TYPE {} {}\n",
                fam.name,
                class,
                fam.help,
                fam.name,
                fam.kind.as_str()
            ));
            for s in &fam.series {
                match &s.value {
                    MetricValue::Counter(c) => {
                        out.push_str(&format!("{}{} {}\n", fam.name, labelset(&s.labels, &[]), c));
                    }
                    MetricValue::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            labelset(&s.labels, &[]),
                            prom_f64(*g)
                        ));
                    }
                    MetricValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (le_ns, c) in &h.buckets {
                            cum += c;
                            let le = le_ns.map_or("+Inf".to_string(), ns_as_ms);
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                fam.name,
                                labelset(&s.labels, &[("le", &le)]),
                                cum
                            ));
                        }
                        if h.buckets.last().is_none_or(|(le, _)| le.is_some()) {
                            // Prometheus requires the +Inf bucket even when
                            // nothing overflowed.
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                fam.name,
                                labelset(&s.labels, &[("le", "+Inf")]),
                                h.count
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            fam.name,
                            labelset(&s.labels, &[]),
                            ns_as_ms(h.sum_ns)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            fam.name,
                            labelset(&s.labels, &[]),
                            h.count
                        ));
                    }
                }
            }
        }
        out
    }
}

fn push_families_json(out: &mut String, families: &[MetricFamily], indent: &str) {
    if families.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, fam) in families.iter().enumerate() {
        out.push_str(&format!("{indent}  {{\n"));
        out.push_str(&format!(
            "{indent}    \"name\": {},\n",
            json_string(&fam.name)
        ));
        out.push_str(&format!(
            "{indent}    \"kind\": \"{}\",\n",
            fam.kind.as_str()
        ));
        out.push_str(&format!(
            "{indent}    \"help\": {},\n",
            json_string(&fam.help)
        ));
        out.push_str(&format!("{indent}    \"series\": [\n"));
        for (j, s) in fam.series.iter().enumerate() {
            out.push_str(&format!("{indent}      {{\"labels\": {{"));
            for (k, (lk, lv)) in s.labels.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(lk), json_string(lv)));
            }
            out.push_str("}, ");
            match &s.value {
                MetricValue::Counter(c) => out.push_str(&format!("\"value\": {c}")),
                MetricValue::Gauge(g) => out.push_str(&format!("\"value\": {}", prom_f64(*g))),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \"buckets\": [",
                        h.count, h.sum_ns, h.max_ns
                    ));
                    for (k, (le_ns, c)) in h.buckets.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        match le_ns {
                            Some(ns) => out.push_str(&format!("{{\"le_ns\": {ns}, \"n\": {c}}}")),
                            None => out.push_str(&format!("{{\"le_ns\": null, \"n\": {c}}}")),
                        }
                    }
                    out.push(']');
                }
            }
            out.push('}');
            if j + 1 != fam.series.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!("{indent}    ]\n"));
        out.push_str(&format!("{indent}  }}"));
        if i + 1 != families.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!("{indent}]"));
}

/// Render a label set (base labels plus extras like `le`), `{}`-free when
/// empty, keys in sorted-then-extra order.
fn labelset(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}=\"{}\"", k, prom_escape(v)));
    }
    out.push('}');
    out
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn prom_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Integer nanoseconds as an exact millisecond decimal string
/// (`1000` → `"0.001"`, `2_500_000` → `"2.5"`).
fn ns_as_ms(ns: u64) -> String {
    let whole = ns / 1_000_000;
    let frac = ns % 1_000_000;
    if frac == 0 {
        return format!("{whole}");
    }
    let s = format!("{whole}.{frac:06}");
    s.trim_end_matches('0').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log_spaced() {
        assert_eq!(BUCKET_BOUNDS_NS[0], 1_000);
        assert_eq!(BUCKET_BOUNDS_NS[1], 2_000);
        assert_eq!(BUCKET_BOUNDS_NS[24], 1_000 << 24);
        for pair in BUCKET_BOUNDS_NS.windows(2) {
            assert_eq!(pair[1], pair[0] * 2);
        }
    }

    #[test]
    fn snapshot_is_independent_of_touch_order() {
        let mk = |order_flipped: bool| {
            let r = MetricsRegistry::new();
            type Op = Box<dyn Fn(&MetricsRegistry)>;
            let ops: Vec<Op> = vec![
                Box::new(|r: &MetricsRegistry| {
                    r.inc_counter(
                        Determinism::Deterministic,
                        "jobs_total",
                        "jobs",
                        &[("backend", "gtx980")],
                        2,
                    )
                }),
                Box::new(|r: &MetricsRegistry| {
                    r.inc_counter(
                        Determinism::Deterministic,
                        "jobs_total",
                        "jobs",
                        &[("backend", "forward")],
                        1,
                    )
                }),
                Box::new(|r: &MetricsRegistry| {
                    r.observe_ns(
                        Determinism::Deterministic,
                        "count_ms",
                        "modeled count",
                        &[],
                        1_500,
                    )
                }),
            ];
            if order_flipped {
                for op in ops.iter().rev() {
                    op(&r);
                }
            } else {
                for op in ops.iter() {
                    op(&r);
                }
            }
            r.snapshot().to_json(true)
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn advisory_section_is_separable() {
        let r = MetricsRegistry::new();
        r.inc_counter(Determinism::Deterministic, "a_total", "a", &[], 1);
        r.set_gauge(Determinism::Advisory, "wall_ms", "host wall", &[], 123.456);
        let snap = r.snapshot();
        let with = snap.to_json(true);
        let without = snap.to_json(false);
        assert!(with.contains("wall_ms"));
        assert!(!without.contains("wall_ms"));
        assert!(without.contains("\"advisory\": null"));
        assert!(without.contains("a_total"));
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        let r = MetricsRegistry::new();
        r.gauge_max(Determinism::Advisory, "depth", "queue depth", &[], 2.0);
        r.gauge_max(Determinism::Advisory, "depth", "queue depth", &[], 5.0);
        r.gauge_max(Determinism::Advisory, "depth", "queue depth", &[], 3.0);
        assert_eq!(r.gauge_value("depth", &[]), Some(5.0));
    }

    #[test]
    fn histogram_buckets_and_totals_are_exact() {
        let r = MetricsRegistry::new();
        for ns in [500, 1_000, 1_001, 3_000, u64::from(u32::MAX) * 1_000] {
            r.observe_ns(Determinism::Deterministic, "h_ms", "h", &[], ns);
        }
        let snap = r.snapshot();
        let fam = &snap.deterministic[0];
        let MetricValue::Histogram(h) = &fam.series[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(h.count, 5);
        assert_eq!(
            h.sum_ns,
            500 + 1_000 + 1_001 + 3_000 + u64::from(u32::MAX) * 1_000
        );
        // 500 and 1000 land in the first bucket (le 1µs), 1001 in le 2µs,
        // 3000 in le 4µs, the huge one in overflow.
        assert_eq!(h.buckets[0], (Some(1_000), 2));
        assert_eq!(h.buckets[1], (Some(2_000), 1));
        assert_eq!(h.buckets[2], (Some(4_000), 1));
        assert_eq!(h.buckets[3], (None, 1));
        assert_eq!(h.max_ns, u64::from(u32::MAX) * 1_000);
    }

    #[test]
    fn prometheus_exposition_is_sorted_and_duplicate_free() {
        let r = MetricsRegistry::new();
        r.inc_counter(Determinism::Deterministic, "z_total", "z", &[], 1);
        r.inc_counter(
            Determinism::Deterministic,
            "a_total",
            "a",
            &[("backend", "gtx980")],
            1,
        );
        r.inc_counter(
            Determinism::Deterministic,
            "a_total",
            "a",
            &[("backend", "forward")],
            1,
        );
        r.observe_ns(Determinism::Advisory, "m_ms", "m", &[], 2_500_000);
        let text = r.snapshot().to_prometheus();
        // Families sorted by name; series sorted by labels.
        let a = text.find("a_total{backend=\"forward\"}").unwrap();
        let b = text.find("a_total{backend=\"gtx980\"}").unwrap();
        let z = text.find("\nz_total ").unwrap();
        let m = text.find("m_ms_bucket").unwrap();
        assert!(a < b && b < m && m < z, "{text}");
        // Histogram renders cumulative buckets, an +Inf bucket, ms units.
        assert!(text.contains("m_ms_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("m_ms_sum 2.5"), "{text}");
        assert!(text.contains("m_ms_count 1"), "{text}");
        // No duplicate series lines.
        let mut lines: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        let before = lines.len();
        lines.dedup();
        assert_eq!(before, lines.len());
    }

    #[test]
    fn json_is_balanced_and_parsable_shape() {
        let r = MetricsRegistry::new();
        r.inc_counter(Determinism::Deterministic, "c_total", "c \"q\"", &[], 7);
        r.observe_ns(Determinism::Advisory, "h_ms", "h", &[("s", "x")], 42_000);
        let json = r.snapshot().to_json(true);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\\\"q\\\""));
        assert!(json.contains("\"schema\": \"tc-telemetry/1\""));
    }

    #[test]
    fn ms_strings_are_exact_decimals() {
        assert_eq!(ns_as_ms(0), "0");
        assert_eq!(ns_as_ms(1_000), "0.001");
        assert_eq!(ns_as_ms(2_500_000), "2.5");
        assert_eq!(ns_as_ms(16_777_216_000), "16777.216");
    }
}
