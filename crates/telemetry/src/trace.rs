//! End-to-end request traces with modeled integer-nanosecond timestamps.
//!
//! A [`RequestTrace`] is one request's journey through the serving
//! engine: a sequence of stage spans (admission → queue wait → cache
//! lookup → device lease → prepare → count → merge) plus the kernel
//! profiler's spans nested inside the prepare/count stages. All
//! timestamps are **modeled nanoseconds relative to the request's own
//! t = 0** — never host wall time, never a shared device clock — which is
//! what makes the serialized trace byte-identical across runs and worker
//! counts: every duration is a deterministic modeled quantity, and no
//! request's layout depends on which worker ran it or what ran before.
//!
//! [`chrome_trace_json`] serializes a batch of request traces in the
//! Trace Event Format (one trace thread per request), so a single file
//! opened in Perfetto / `chrome://tracing` shows every request from the
//! front door down to the counting kernel's DRAM phases.

use crate::{json_string, ns_as_us};

/// One span on a request's timeline. `depth` only documents nesting (the
/// Chrome viewer nests by time containment); spans at the same depth must
/// not overlap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Display name (`"engine:prepare"`, `"count-kernel"`, …).
    pub name: String,
    /// Modeled start, nanoseconds from the request's t = 0.
    pub start_ns: u64,
    /// Modeled duration, nanoseconds (0 renders as an instant marker).
    pub dur_ns: u64,
    /// Nesting depth (0 = request stage level).
    pub depth: usize,
}

impl TraceSpan {
    pub fn new(name: impl Into<String>, start_ns: u64, dur_ns: u64, depth: usize) -> Self {
        TraceSpan {
            name: name.into(),
            start_ns,
            dur_ns,
            depth,
        }
    }

    #[inline]
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// One request's trace: identity plus its spans in emission order
/// (stage spans first, nested kernel spans after their parent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestTrace {
    /// Request id — the submission index within the batch, which is also
    /// the trace thread id linking these spans to the request's slot in
    /// the batch report.
    pub id: u64,
    /// Job name (caller-chosen label).
    pub name: String,
    /// Canonical backend token.
    pub backend: String,
    pub spans: Vec<TraceSpan>,
}

impl RequestTrace {
    /// Total modeled extent of the request (end of the last span).
    pub fn total_ns(&self) -> u64 {
        self.spans.iter().map(TraceSpan::end_ns).max().unwrap_or(0)
    }

    /// First span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Serialize request traces as one Chrome Trace Event JSON document:
/// process 1, one thread per request (tid = request id) named
/// `"req <id>: <name> [<backend>]"`, every span an `"X"` complete event
/// whose `args` carry the request id for cross-referencing. Timestamps
/// are exact microsecond decimals derived from the integer nanoseconds,
/// so the output is byte-deterministic.
pub fn chrome_trace_json(traces: &[RequestTrace]) -> String {
    let mut events = Vec::new();
    for t in traces {
        events.push(format!(
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"name\": {}}}}}",
            t.id,
            json_string(&format!("req {}: {} [{}]", t.id, t.name, t.backend))
        ));
        // Emit parents before children at the same timestamp so viewers
        // that tie-break by emission order nest correctly.
        let mut order: Vec<usize> = (0..t.spans.len()).collect();
        order.sort_by_key(|&i| (t.spans[i].start_ns, t.spans[i].depth, i));
        for i in order {
            let s = &t.spans[i];
            events.push(format!(
                "  {{\"name\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"request\": {}}}}}",
                json_string(&s.name),
                ns_as_us(s.start_ns),
                ns_as_us(s.dur_ns),
                t.id,
                t.id
            ));
        }
    }
    format!("[\n{}\n]\n", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RequestTrace {
        RequestTrace {
            id: 3,
            name: "orkut#0".into(),
            backend: "gtx980/balanced".into(),
            spans: vec![
                TraceSpan::new("engine:admission", 0, 0, 0),
                TraceSpan::new("engine:prepare", 0, 2_000, 0),
                TraceSpan::new("preprocess", 0, 1_500, 1),
                TraceSpan::new("engine:count", 2_000, 1_000, 0),
                TraceSpan::new("count-kernel", 2_100, 800, 1),
            ],
        }
    }

    #[test]
    fn totals_and_lookup() {
        let t = sample();
        assert_eq!(t.total_ns(), 3_000);
        assert_eq!(t.span("engine:count").unwrap().dur_ns, 1_000);
        assert!(t.span("missing").is_none());
    }

    #[test]
    fn chrome_export_is_sound_and_ordered() {
        let json = chrome_trace_json(&[sample()]);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 5);
        assert_eq!(json.matches("\"ph\": \"M\"").count(), 1);
        assert!(json.contains("req 3: orkut#0 [gtx980/balanced]"));
        // Exact microsecond decimals from integer nanoseconds.
        assert!(json.contains("\"ts\": 2.000, \"dur\": 1.000"));
        assert!(json.contains("\"ts\": 2.100, \"dur\": 0.800"));
        // Parent (depth 0) before child at the same start.
        let prep = json.find("engine:prepare").unwrap();
        let pre = json.find("\"preprocess\"").unwrap();
        assert!(prep < pre);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn export_is_deterministic() {
        let traces = vec![sample(), {
            let mut t = sample();
            t.id = 4;
            t
        }];
        assert_eq!(chrome_trace_json(&traces), chrome_trace_json(&traces));
    }
}
