//! # tc-telemetry — deterministic serving telemetry
//!
//! The kernel layer already has an nvprof-style profiler
//! (`tc_simt::profiler`) and a compute-sanitizer analog; this crate is the
//! third observability layer: *serving* telemetry for the batched engine.
//! It provides
//!
//! * a **[`MetricsRegistry`]** of counters, gauges, and modeled-time
//!   histograms with fixed log-spaced buckets, every series keyed by
//!   `(name, sorted labels)` and classified as **deterministic** or
//!   **advisory**;
//! * **snapshot export** as hand-rolled canonical JSON
//!   ([`MetricsSnapshot::to_json`]) and Prometheus text exposition
//!   ([`MetricsSnapshot::to_prometheus`]);
//! * a **request trace model** ([`RequestTrace`], [`TraceSpan`]) with
//!   integer-nanosecond modeled timestamps and a Chrome Trace Event
//!   serializer ([`chrome_trace_json`]) that interleaves engine stage
//!   spans with kernel profiler spans on one timeline per request;
//! * the **[`Stage`]** vocabulary shared by traces, metrics, and error
//!   attribution.
//!
//! ## Determinism rules
//!
//! The *deterministic* view must be byte-identical across runs and worker
//! counts for the same job stream. The registry enforces the mechanics —
//! keyed/sorted iteration, integer arithmetic — and callers must uphold
//! the semantics:
//!
//! 1. Only record **modeled** quantities (simulated device time, planned
//!    cache decisions, modeled-time timeouts) in deterministic series.
//!    Host wall clocks, queue depths, and anything schedule-dependent
//!    goes in the **advisory** class.
//! 2. Counter increments and histogram observations are order-independent
//!    by construction (u64 addition is associative and commutative);
//!    durations are quantized to integer nanoseconds *before* entering
//!    the registry, so no float summation order can leak through.
//! 3. Deterministic gauges may only be set from values that are
//!    themselves deterministic (e.g. a planned cache-hit ratio).
//!
//! Snapshots render the two classes in clearly separated sections; the
//! advisory section can be omitted (CI mode) so artifact diffs compare
//! only modeled quantities.

#![forbid(unsafe_code)]

pub mod registry;
pub mod trace;

pub use registry::{
    Determinism, HistogramSnapshot, MetricFamily, MetricKind, MetricValue, MetricsRegistry,
    MetricsSnapshot, SeriesSnapshot, BUCKET_BOUNDS_NS,
};
pub use trace::{chrome_trace_json, RequestTrace, TraceSpan};

use std::fmt;

/// The stages a request moves through in the serving engine, from front
/// door to result assembly. Shared vocabulary for trace span names,
/// per-stage metrics, and error attribution ("which stage did this job
/// die in").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Queue admission (blocking push or shed decision).
    Admission,
    /// Waiting in the bounded job queue for a worker.
    QueueWait,
    /// Prepared-session cache lookup (planned hit/miss).
    CacheLookup,
    /// Leasing a warm device from the pool.
    DeviceLease,
    /// Host-to-device copy + the eight preprocessing steps (§III-B).
    Prepare,
    /// The counting kernel phases (§III-C).
    Count,
    /// Result assembly / partial-count merge.
    Merge,
    /// Cluster only: host-side orientation, edge partitioning, and shard
    /// uploads across the node × device grid.
    ShardPartition,
    /// Cluster only: per-shard kernel dispatch and local reductions.
    ShardCount,
    /// Cluster only: shipping per-shard partials over the modeled
    /// interconnect and summing them in node-index order.
    InternodeMerge,
}

impl Stage {
    /// Stable lowercase token used in span names, metric labels, and
    /// error messages.
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::QueueWait => "queue-wait",
            Stage::CacheLookup => "cache-lookup",
            Stage::DeviceLease => "device-lease",
            Stage::Prepare => "prepare",
            Stage::Count => "count",
            Stage::Merge => "merge",
            Stage::ShardPartition => "shard-partition",
            Stage::ShardCount => "shard-count",
            Stage::InternodeMerge => "internode-merge",
        }
    }

    /// Every stage, in request order. The three cluster stages come last:
    /// a single-device request never emits them, a cluster request emits
    /// them instead of `prepare`/`count`/`merge`.
    pub fn all() -> [Stage; 10] {
        [
            Stage::Admission,
            Stage::QueueWait,
            Stage::CacheLookup,
            Stage::DeviceLease,
            Stage::Prepare,
            Stage::Count,
            Stage::Merge,
            Stage::ShardPartition,
            Stage::ShardCount,
            Stage::InternodeMerge,
        ]
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Minimal JSON string escaping (same rules as the other hand-rolled
/// serializers in the workspace).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Integer nanoseconds rendered as microseconds with exactly three
/// decimals — the Chrome trace `ts`/`dur` format — without any float
/// round-trip (`1234` → `"1.234"`).
pub(crate) fn ns_as_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Quantize modeled seconds to integer nanoseconds. Each caller feeds a
/// deterministic f64 (a schedule-independent modeled duration), so the
/// rounding — and everything downstream of it — is deterministic too.
pub fn seconds_to_ns(s: f64) -> u64 {
    if s.is_finite() && s > 0.0 {
        (s * 1e9).round() as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_tokens_are_stable_and_ordered() {
        let all = Stage::all();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].as_str(), "admission");
        assert_eq!(all[6].as_str(), "merge");
        assert_eq!(all[7].as_str(), "shard-partition");
        assert_eq!(all[8].as_str(), "shard-count");
        assert_eq!(all[9].as_str(), "internode-merge");
        assert_eq!(Stage::Prepare.to_string(), "prepare");
        // Request order is the enum order.
        for pair in all.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn ns_formatting_is_exact() {
        assert_eq!(ns_as_us(0), "0.000");
        assert_eq!(ns_as_us(1), "0.001");
        assert_eq!(ns_as_us(1234), "1.234");
        assert_eq!(ns_as_us(1_000_000), "1000.000");
    }

    #[test]
    fn seconds_quantization_clamps_garbage() {
        assert_eq!(seconds_to_ns(1e-9), 1);
        assert_eq!(seconds_to_ns(0.5), 500_000_000);
        assert_eq!(seconds_to_ns(-1.0), 0);
        assert_eq!(seconds_to_ns(f64::NAN), 0);
        assert_eq!(seconds_to_ns(f64::INFINITY), 0);
    }
}
