//! Erdős–Rényi random graphs, for tests and baselines.
//!
//! Two flavours: `G(n, m)` (exactly `m` distinct edges) and `G(n, p)` (each
//! pair independently with probability `p`, sampled with geometric skips so
//! sparse graphs cost `O(m)` rather than `O(n²)`).

use tc_graph::EdgeArray;

use crate::rng::{Seed, Xoshiro256};

/// `G(n, m)`: exactly `m` distinct undirected edges, uniform over all such
/// graphs (rejection sampling; requires `m` ≤ half the number of pairs to
/// stay fast — asserted).
pub fn gnm(n: usize, m: usize, seed: Seed) -> EdgeArray {
    let pairs_total = n as u64 * (n as u64 - 1) / 2;
    assert!(
        (m as u64) <= pairs_total / 2,
        "gnm rejection sampling wants m <= pairs/2 ({m} vs {pairs_total})"
    );
    let mut rng = Xoshiro256::new(seed);
    let mut keys: Vec<u64> = Vec::with_capacity(m + m / 8);
    // Oversample, dedup, top up until we have m distinct pairs.
    while keys.len() < m {
        let need = m - keys.len();
        for _ in 0..need + need / 4 + 4 {
            let a = rng.next_below(n as u64) as u32;
            let b = rng.next_below(n as u64) as u32;
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                keys.push(((lo as u64) << 32) | hi as u64);
            }
        }
        keys.sort_unstable();
        keys.dedup();
    }
    keys.truncate(m);
    EdgeArray::from_undirected_pairs(keys.into_iter().map(|k| ((k >> 32) as u32, k as u32)))
}

/// `G(n, p)` via geometric jumps over the ordered pair index space.
pub fn gnp(n: usize, p: f64, seed: Seed) -> EdgeArray {
    assert!((0.0..=1.0).contains(&p));
    if p == 0.0 || n < 2 {
        return EdgeArray::default();
    }
    let mut rng = Xoshiro256::new(seed);
    let total = n as u64 * (n as u64 - 1) / 2;
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    if p >= 1.0 {
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                pairs.push((a, b));
            }
        }
        return EdgeArray::from_undirected_pairs(pairs);
    }
    let log1mp = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        // Geometric skip: next selected pair index.
        let r = rng.next_f64().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log1mp).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(i) if i < total => i,
            _ => break,
        };
        pairs.push(unrank_pair(idx, n as u64));
        idx += 1;
        if idx >= total {
            break;
        }
    }
    EdgeArray::from_undirected_pairs(pairs)
}

/// Map a linear index in `[0, n(n−1)/2)` to the ordered pair `(a, b)`,
/// `a < b`, in row-major order over the strict upper triangle.
fn unrank_pair(idx: u64, n: u64) -> (u32, u32) {
    // Row a contains (n - 1 - a) pairs; find a by solving the prefix sum.
    // Prefix(a) = a*n - a(a+1)/2. Binary search is simplest and exact.
    let (mut lo, mut hi) = (0u64, n - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let prefix_end = (mid + 1) * n - (mid + 1) * (mid + 2) / 2;
        if idx < prefix_end {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let a = lo;
    let prefix = a * n - a * (a + 1) / 2;
    let b = a + 1 + (idx - prefix);
    (a as u32, b as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = gnm(100, 300, Seed(1));
        g.validate().unwrap();
        assert_eq!(g.num_edges(), 300);
        assert!(g.num_nodes() <= 100);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm(50, 100, Seed(2)).arcs(), gnm(50, 100, Seed(2)).arcs());
    }

    #[test]
    fn gnp_density_is_close_to_p() {
        let n = 200;
        let p = 0.1;
        let g = gnp(n, p, Seed(3));
        g.validate().unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, Seed(4)).num_edges(), 0);
        let full = gnp(20, 1.0, Seed(4));
        assert_eq!(full.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn unrank_pair_covers_the_triangle() {
        let n = 7u64;
        let total = n * (n - 1) / 2;
        let mut seen = Vec::new();
        for idx in 0..total {
            let (a, b) = unrank_pair(idx, n);
            assert!(a < b && (b as u64) < n);
            seen.push((a, b));
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len() as u64, total);
    }
}
