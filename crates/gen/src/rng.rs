//! Self-contained pseudo-random number generation.
//!
//! Generators must be reproducible byte-for-byte across platforms and crate
//! versions (the benchmark suite's triangle counts are recorded in
//! EXPERIMENTS.md), so we implement the PRNG ourselves instead of depending
//! on `rand`'s evolving algorithms: SplitMix64 for seeding / cheap streams,
//! Xoshiro256** as the workhorse generator. Both are public-domain
//! algorithms by Blackman & Vigna.

/// A named seed for a generator run. Distinct wrapper type so call sites
/// read as `generate(Seed(42))` rather than a bare magic number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Seed(pub u64);

impl Seed {
    /// Derive an independent child seed, e.g. one per parallel chunk.
    pub fn child(self, index: u64) -> Seed {
        let mut sm = SplitMix64::new(self.0 ^ 0xD6E8_FEB8_6659_FD93u64.rotate_left(index as u32));
        sm.next_u64();
        Seed(sm.next_u64() ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// SplitMix64: tiny, fast, equidistributed; used for seeding and for places
/// where a full Xoshiro state is overkill.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the general-purpose generator for all graph builders.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as recommended by the algorithm's authors (avoids
    /// the all-zero state and decorrelates similar seeds).
    pub fn new(seed: Seed) -> Self {
        let mut sm = SplitMix64::new(seed.0);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `u32` index in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 0 (from the public-domain reference
        // implementation).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256::new(Seed(1));
        let mut b = Xoshiro256::new(Seed(2));
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(Seed(3));
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256::new(Seed(4));
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; allow generous slack
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::new(Seed(5));
        let mut v: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u32>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }

    #[test]
    fn child_seeds_are_distinct() {
        let s = Seed(99);
        let kids: Vec<u64> = (0..100).map(|i| s.child(i).0).collect();
        let mut dedup = kids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kids.len());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::new(Seed(6));
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
