//! The evaluation suite: scaled-down analogs of the paper's 13 Table I
//! graphs.
//!
//! Real datasets (SNAP, DIMACS) are not redistributable, so each row is
//! replaced by a synthetic analog tuned to land in the same *regime* —
//! degree skew, triangles-to-edges ratio, and relative size — at a size the
//! cycle-level GPU simulator can process in benchmark time. See DESIGN.md §2
//! for the substitution rationale. Every graph is deterministic given the
//! suite seed.

use tc_graph::EdgeArray;

use crate::barabasi_albert::BarabasiAlbert;
use crate::copaper::CoPaper;
use crate::kronecker::Rmat;
use crate::rng::Seed;
use crate::watts_strogatz::WattsStrogatz;

/// How large to build the suite. Node counts are roughly the paper's divided
/// by 2^12 (smoke), 2^8 (bench), 2^5 (large).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny graphs for unit/integration tests (hundreds of edges).
    Smoke,
    /// Default benchmarking size (10⁴–10⁶ edges): large enough for stable
    /// cache statistics, small enough for cycle simulation.
    Bench,
    /// Overnight size (up to ~10⁷ edges).
    Large,
}

/// One of the thirteen Table I workloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphSpec {
    /// Analog of the SNAP Internet (as-Skitter) topology: highly skewed
    /// R-MAT, moderate density, triangles ≈ edges.
    InternetTopology,
    /// Analog of the LiveJournal social network.
    LiveJournal,
    /// Analog of the Orkut social network — the largest real graph, the one
    /// marked † (did not fit in device memory) on the C2050.
    Orkut,
    /// Analog of the DIMACS Citeseer co-paper network (clique union,
    /// triangles ≫ edges).
    Citeseer,
    /// Analog of the DIMACS DBLP co-paper network.
    Dblp,
    /// DIMACS-style Kronecker R-MAT at the given scale offset 0..=5,
    /// mirroring the paper's Kronecker 16…21 ladder (the top rung is the
    /// † graph on the C2050).
    Kronecker(u8),
    /// Barabási–Albert preferential attachment: triangle-poor, lowest cache
    /// hit rate in Table II.
    BarabasiAlbert,
    /// Watts–Strogatz small world: regular degrees, triangle-rich.
    WattsStrogatz,
}

impl GraphSpec {
    /// All thirteen specs in Table I row order.
    pub fn all() -> Vec<GraphSpec> {
        let mut v = vec![
            GraphSpec::InternetTopology,
            GraphSpec::LiveJournal,
            GraphSpec::Orkut,
            GraphSpec::Citeseer,
            GraphSpec::Dblp,
        ];
        v.extend((0..=5).map(GraphSpec::Kronecker));
        v.push(GraphSpec::BarabasiAlbert);
        v.push(GraphSpec::WattsStrogatz);
        v
    }

    /// Table I row label (paper naming, with the ladder resolved to the
    /// scaled Kronecker exponent).
    pub fn name(&self, scale: Scale) -> String {
        match self {
            GraphSpec::InternetTopology => "internet-topology".into(),
            GraphSpec::LiveJournal => "livejournal".into(),
            GraphSpec::Orkut => "orkut".into(),
            GraphSpec::Citeseer => "citeseer".into(),
            GraphSpec::Dblp => "dblp".into(),
            GraphSpec::Kronecker(k) => {
                format!("kronecker-{}", kron_base(scale) + *k as u32)
            }
            GraphSpec::BarabasiAlbert => "barabasi-albert".into(),
            GraphSpec::WattsStrogatz => "watts-strogatz".into(),
        }
    }

    /// Is this the analog of a paper row marked † (needed the CPU
    /// preprocessing fallback on the Tesla C2050)?
    pub fn daggered_in_paper(&self) -> bool {
        matches!(self, GraphSpec::Orkut | GraphSpec::Kronecker(5))
    }

    /// Generate the graph at the given scale. The per-spec seed is derived
    /// from the suite seed so rows are independent.
    pub fn generate(&self, scale: Scale, suite_seed: Seed) -> EdgeArray {
        let seed = suite_seed.child(self.seed_index());
        // (node-ish size knob, density knob) per scale
        match *self {
            GraphSpec::InternetTopology => {
                let s = match scale {
                    Scale::Smoke => 9,
                    Scale::Bench => 13,
                    Scale::Large => 16,
                };
                Rmat::scale(s)
                    .edge_factor(13)
                    .probabilities(0.62, 0.16, 0.16)
                    .generate(seed)
            }
            GraphSpec::LiveJournal => {
                let s = match scale {
                    Scale::Smoke => 9,
                    Scale::Bench => 14,
                    Scale::Large => 17,
                };
                Rmat::scale(s).edge_factor(17).generate(seed)
            }
            GraphSpec::Orkut => {
                let (s, ef) = match scale {
                    Scale::Smoke => (9, 24),
                    Scale::Bench => (14, 60),
                    Scale::Large => (17, 60),
                };
                Rmat::scale(s).edge_factor(ef).generate(seed)
            }
            GraphSpec::Citeseer => {
                let (authors, papers) = match scale {
                    Scale::Smoke => (96, 80),
                    Scale::Bench => (3_000, 2_600),
                    Scale::Large => (24_000, 21_000),
                };
                CoPaper::new(authors, papers)
                    .author_range(3, 26)
                    .core_fraction(0.25)
                    .generate(seed)
            }
            GraphSpec::Dblp => {
                let (authors, papers) = match scale {
                    Scale::Smoke => (128, 110),
                    Scale::Bench => (4_000, 3_600),
                    Scale::Large => (32_000, 29_000),
                };
                CoPaper::new(authors, papers)
                    .author_range(2, 14)
                    .core_fraction(0.2)
                    .generate(seed)
            }
            GraphSpec::Kronecker(k) => {
                let base = kron_base(scale);
                let ef = match scale {
                    Scale::Smoke => 12,
                    Scale::Bench => 38,
                    Scale::Large => 48,
                };
                Rmat::scale(base + k as u32).edge_factor(ef).generate(seed)
            }
            GraphSpec::BarabasiAlbert => {
                let (n, m) = match scale {
                    Scale::Smoke => (200, 6),
                    Scale::Bench => (3_000, 30),
                    Scale::Large => (25_000, 60),
                };
                BarabasiAlbert::new(n, m).generate(seed)
            }
            GraphSpec::WattsStrogatz => {
                let (n, k) = match scale {
                    Scale::Smoke => (300, 8),
                    Scale::Bench => (12_000, 24),
                    Scale::Large => (100_000, 50),
                };
                WattsStrogatz::new(n, k, 0.4).generate(seed)
            }
        }
    }

    fn seed_index(&self) -> u64 {
        match *self {
            GraphSpec::InternetTopology => 1,
            GraphSpec::LiveJournal => 2,
            GraphSpec::Orkut => 3,
            GraphSpec::Citeseer => 4,
            GraphSpec::Dblp => 5,
            GraphSpec::Kronecker(k) => 10 + k as u64,
            GraphSpec::BarabasiAlbert => 20,
            GraphSpec::WattsStrogatz => 21,
        }
    }
}

/// Kronecker ladder base exponent per scale (the paper's ladder is 16…21).
fn kron_base(scale: Scale) -> u32 {
    match scale {
        Scale::Smoke => 6,
        Scale::Bench => 10,
        Scale::Large => 12,
    }
}

/// A generated suite row.
#[derive(Clone, Debug)]
pub struct SuiteGraph {
    pub spec: GraphSpec,
    pub name: String,
    pub graph: EdgeArray,
}

/// Default suite seed: fixed so EXPERIMENTS.md numbers are reproducible.
pub const SUITE_SEED: Seed = Seed(0x7C1A_9E55);

/// Build the full 13-row suite at the given scale.
pub fn full_suite(scale: Scale) -> Vec<SuiteGraph> {
    full_suite_seeded(scale, SUITE_SEED)
}

/// Build the suite with an explicit seed.
pub fn full_suite_seeded(scale: Scale, seed: Seed) -> Vec<SuiteGraph> {
    GraphSpec::all()
        .into_iter()
        .map(|spec| SuiteGraph {
            spec,
            name: spec.name(scale),
            graph: spec.generate(scale, seed),
        })
        .collect()
}

/// The Kronecker ladder only (Figure 1's x-axis).
pub fn kronecker_ladder(scale: Scale, seed: Seed) -> Vec<SuiteGraph> {
    (0..=5)
        .map(|k| {
            let spec = GraphSpec::Kronecker(k);
            SuiteGraph {
                spec,
                name: spec.name(scale),
                graph: spec.generate(scale, seed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_thirteen_rows() {
        assert_eq!(GraphSpec::all().len(), 13);
        let suite = full_suite(Scale::Smoke);
        assert_eq!(suite.len(), 13);
        for row in &suite {
            row.graph.validate().unwrap();
            assert!(row.graph.num_edges() > 0, "{} is empty", row.name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = full_suite(Scale::Smoke);
        let b = full_suite(Scale::Smoke);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph.arcs(), y.graph.arcs(), "{}", x.name);
        }
    }

    #[test]
    fn names_are_distinct() {
        let suite = full_suite(Scale::Smoke);
        let mut names: Vec<&str> = suite.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn kronecker_ladder_doubles_nodes() {
        let ladder = kronecker_ladder(Scale::Smoke, SUITE_SEED);
        assert_eq!(ladder.len(), 6);
        for w in ladder.windows(2) {
            let ratio = w[1].graph.num_nodes() as f64 / w[0].graph.num_nodes() as f64;
            assert!((1.5..=2.5).contains(&ratio), "node ratio {ratio}");
        }
    }

    #[test]
    fn daggered_rows_are_the_largest() {
        assert!(GraphSpec::Orkut.daggered_in_paper());
        assert!(GraphSpec::Kronecker(5).daggered_in_paper());
        assert!(!GraphSpec::Kronecker(0).daggered_in_paper());
        assert!(!GraphSpec::Dblp.daggered_in_paper());
    }

    #[test]
    fn regimes_hold_at_smoke_scale() {
        use tc_graph::stats::degree_cv;
        let seed = SUITE_SEED;
        let internet = GraphSpec::InternetTopology.generate(Scale::Smoke, seed);
        let ws = GraphSpec::WattsStrogatz.generate(Scale::Smoke, seed);
        // The internet analog must be far more skewed than the small world.
        assert!(degree_cv(&internet) > 2.0 * degree_cv(&ws));
    }
}
