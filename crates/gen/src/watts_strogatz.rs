//! Watts–Strogatz small-world networks [1 in the paper].
//!
//! Start from a ring lattice where each vertex connects to its `k` nearest
//! neighbours (`k/2` on each side), then rewire each edge's far endpoint
//! with probability `beta`. At `beta = 0` the triangle count has the closed
//! form `n · (k/2) · (k/2 − 1) / 2` (see [`WattsStrogatz::lattice_triangles`]),
//! which the test suite uses as ground truth for the counting backends. WS
//! graphs are the paper's low-degree-variance, triangle-rich regime
//! (219 M triangles on 50 M edges in Table I).

use tc_graph::EdgeArray;

use crate::rng::{Seed, Xoshiro256};

/// Builder for a WS network on `n` vertices with even lattice degree `k`.
#[derive(Clone, Copy, Debug)]
pub struct WattsStrogatz {
    n: usize,
    k: usize,
    beta: f64,
}

impl WattsStrogatz {
    pub fn new(n: usize, k: usize, beta: f64) -> Self {
        assert!(k.is_multiple_of(2), "lattice degree k must be even");
        assert!(k >= 2 && k < n, "need 2 <= k < n (k={k}, n={n})");
        assert!((0.0..=1.0).contains(&beta));
        WattsStrogatz { n, k, beta }
    }

    /// Triangle count of the unrewired ring lattice (`beta = 0`), used as a
    /// ground-truth fixture.
    ///
    /// Every triangle has a unique "leftmost" vertex `v` from which the other
    /// two lie clockwise at offsets `0 < i < j`. The edges `(v, v+i)`,
    /// `(v, v+j)`, `(v+i, v+j)` all exist iff `j ≤ h` (with `h = k/2`), since
    /// `n > 2k` rules out wrap-around shortcuts; then `j − i < h` holds
    /// automatically. That gives `Σ_{j=2..h} (j−1) = h(h−1)/2` triangles per
    /// vertex, so `n·h·(h−1)/2` in total.
    pub fn lattice_triangles(&self) -> u64 {
        assert!(self.n > 2 * self.k, "closed form needs n > 2k");
        let h = (self.k / 2) as u64;
        self.n as u64 * h * (h - 1) / 2
    }

    pub fn generate(&self, seed: Seed) -> EdgeArray {
        let mut rng = Xoshiro256::new(seed);
        let n = self.n;
        let h = self.k / 2;
        // Adjacency as a sorted set per vertex would be slow; track existing
        // undirected edges in a hash-free canonical list we dedup at the end,
        // but rewiring must avoid duplicates, so keep a per-vertex Vec.
        let mut adj: Vec<Vec<u32>> = vec![Vec::with_capacity(self.k); n];
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n * h);
        let connected = |adj: &Vec<Vec<u32>>, a: u32, b: u32| adj[a as usize].contains(&b);
        for v in 0..n as u32 {
            for d in 1..=h as u32 {
                let w = (v + d) % n as u32;
                let target = if self.beta > 0.0 && rng.chance(self.beta) {
                    // Rewire: pick a uniform non-self, non-duplicate target.
                    let mut t;
                    let mut attempts = 0;
                    loop {
                        t = rng.next_below(n as u64) as u32;
                        if t != v && !connected(&adj, v, t) {
                            break;
                        }
                        attempts += 1;
                        if attempts > 64 {
                            // Dense corner case: fall back to the lattice
                            // neighbour if it is still free, else skip.
                            t = w;
                            break;
                        }
                    }
                    t
                } else {
                    w
                };
                if target != v && !connected(&adj, v, target) {
                    adj[v as usize].push(target);
                    adj[target as usize].push(v);
                    pairs.push((v, target));
                }
            }
        }
        EdgeArray::from_undirected_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrewired_lattice_has_exact_size() {
        let ws = WattsStrogatz::new(100, 6, 0.0);
        let g = ws.generate(Seed(1));
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 100 * 3);
        // Every vertex has degree exactly k.
        assert!(g.degrees().iter().all(|&d| d == 6));
    }

    #[test]
    fn lattice_triangle_closed_form_small_cases() {
        // k = 2: ring, no triangles.
        assert_eq!(WattsStrogatz::new(50, 2, 0.0).lattice_triangles(), 0);
        // k = 4 (h = 2): each vertex is the leftmost of exactly one triangle
        // (v, v+1, v+2). k = 6 (h = 3): three per vertex. Also verified
        // against brute-force counting in the integration tests.
        assert_eq!(WattsStrogatz::new(50, 4, 0.0).lattice_triangles(), 50);
        assert_eq!(WattsStrogatz::new(50, 6, 0.0).lattice_triangles(), 150);
    }

    #[test]
    fn rewiring_preserves_edge_budget_approximately() {
        let ws = WattsStrogatz::new(400, 8, 0.3);
        let g = ws.generate(Seed(2));
        g.validate().unwrap();
        // Rewiring can only drop an edge in rare dense corners.
        assert!(g.num_edges() <= 400 * 4);
        assert!(g.num_edges() >= 400 * 4 - 40);
    }

    #[test]
    fn beta_one_destroys_lattice_regularity() {
        let g = WattsStrogatz::new(500, 6, 1.0).generate(Seed(3));
        let degrees = g.degrees();
        assert!(degrees.iter().any(|&d| d != 6));
    }

    #[test]
    fn deterministic() {
        let ws = WattsStrogatz::new(200, 4, 0.2);
        assert_eq!(ws.generate(Seed(9)).arcs(), ws.generate(Seed(9)).arcs());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        let _ = WattsStrogatz::new(10, 3, 0.0);
    }
}
