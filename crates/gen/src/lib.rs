//! Deterministic synthetic graph generators.
//!
//! The paper's evaluation (§IV) uses five real-world graphs and three
//! synthetic families. The real datasets are not redistributable, so this
//! crate provides:
//!
//! * the three synthetic families exactly as cited — [`kronecker`] R-MAT
//!   (10th DIMACS Implementation Challenge), [`barabasi_albert`]
//!   preferential attachment, and [`watts_strogatz`] small-world rewiring;
//! * [`copaper`], a clique-union model standing in for the Citeseer/DBLP
//!   co-paper networks (co-authorship graphs are unions of per-paper cliques,
//!   which is what makes them triangle-dense);
//! * [`erdos_renyi`] and [`classic`] families for tests and examples;
//! * [`suite`], the scaled-down 13-graph evaluation suite mirroring Table I.
//!
//! All generators are fully deterministic given a [`Seed`]; the PRNG stack
//! ([`rng`]) is self-contained (SplitMix64 seeding a Xoshiro256**), so
//! generated graphs are reproducible across platforms and releases.

#![forbid(unsafe_code)]

pub mod barabasi_albert;
pub mod classic;
pub mod copaper;
pub mod erdos_renyi;
pub mod kronecker;
pub mod rng;
pub mod suite;
pub mod watts_strogatz;

pub use rng::{Seed, Xoshiro256};
pub use suite::{GraphSpec, Scale, SuiteGraph};
