//! Kronecker R-MAT graphs (Chakrabarti–Zhan–Faloutsos), as used by the 10th
//! DIMACS Implementation Challenge and the paper's "Kronecker 16…21" rows.
//!
//! Each edge is placed by `scale` recursive quadrant choices with
//! probabilities `(a, b, c, d)`; the DIMACS/Graph500 defaults
//! `(0.57, 0.19, 0.19, 0.05)` give the heavy-tailed degree distribution and
//! the very large triangles-to-edges ratio that makes these graphs the
//! best case for the paper's multi-GPU setup (§III-E).

use tc_graph::EdgeArray;

use crate::rng::{Seed, Xoshiro256};

/// Builder for an R-MAT graph with `2^scale` vertices.
#[derive(Clone, Copy, Debug)]
pub struct Rmat {
    scale: u32,
    edge_factor: usize,
    a: f64,
    b: f64,
    c: f64,
}

impl Rmat {
    /// Start a builder for `2^scale` vertices with DIMACS default quadrant
    /// probabilities and edge factor 16 (Graph500 convention: the paper's
    /// Kronecker graphs have ~24·n edges; the suite overrides this).
    ///
    /// ```
    /// use tc_gen::{kronecker::Rmat, Seed};
    /// let g = Rmat::scale(8).edge_factor(8).generate(Seed(1));
    /// assert!(g.num_nodes() <= 256);
    /// assert_eq!(g.arcs(), Rmat::scale(8).edge_factor(8).generate(Seed(1)).arcs());
    /// ```
    pub fn scale(scale: u32) -> Self {
        assert!(scale <= 30, "scale {scale} would overflow u32 vertex ids");
        Rmat {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// Number of undirected edge *attempts* per vertex (duplicates and
    /// self-loops are removed afterwards, so the final count is slightly
    /// lower).
    pub fn edge_factor(mut self, f: usize) -> Self {
        self.edge_factor = f;
        self
    }

    /// Override quadrant probabilities; `d` is implied (`1 − a − b − c`).
    pub fn probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-12);
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    pub fn num_nodes(&self) -> usize {
        1usize << self.scale
    }

    /// Generate the graph. Edge attempts are produced in parallel chunks,
    /// each chunk on an independent child seed, so the result is
    /// deterministic regardless of thread count.
    pub fn generate(&self, seed: Seed) -> EdgeArray {
        let attempts = self.num_nodes() * self.edge_factor;
        let chunk = 1usize << 16;
        let chunks = attempts.div_ceil(chunk);
        let pairs: Vec<(u32, u32)> = tc_par::map_range(chunks, |ci| {
            let mut rng = Xoshiro256::new(seed.child(ci as u64));
            let count = chunk.min(attempts - ci * chunk);
            (0..count)
                .map(|_| self.one_edge(&mut rng))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        EdgeArray::from_undirected_pairs(pairs)
    }

    /// One recursive-quadrant edge placement.
    #[inline]
    fn one_edge(&self, rng: &mut Xoshiro256) -> (u32, u32) {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..self.scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < self.a {
                // top-left: no bits set
            } else if r < self.a + self.b {
                v |= 1;
            } else if r < self.a + self.b + self.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::stats::degree_cv;

    #[test]
    fn generates_valid_graph_of_right_size() {
        let g = Rmat::scale(10).edge_factor(8).generate(Seed(1));
        g.validate().unwrap();
        assert!(g.num_nodes() <= 1 << 10);
        // Dedup removes some attempts but most survive at this density.
        let attempts = (1usize << 10) * 8;
        assert!(g.num_edges() > attempts / 2, "{} edges", g.num_edges());
        assert!(g.num_edges() <= attempts);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Rmat::scale(8).generate(Seed(7));
        let b = Rmat::scale(8).generate(Seed(7));
        assert_eq!(a.arcs(), b.arcs());
        let c = Rmat::scale(8).generate(Seed(8));
        assert_ne!(a.arcs(), c.arcs());
    }

    #[test]
    fn skewed_probabilities_give_skewed_degrees() {
        let skewed = Rmat::scale(10).edge_factor(8).generate(Seed(2));
        let uniform = Rmat::scale(10)
            .edge_factor(8)
            .probabilities(0.25, 0.25, 0.25)
            .generate(Seed(2));
        assert!(
            degree_cv(&skewed) > degree_cv(&uniform) * 1.5,
            "skewed cv {} vs uniform cv {}",
            degree_cv(&skewed),
            degree_cv(&uniform)
        );
    }

    #[test]
    fn scale_zero_is_empty() {
        // One vertex; every attempt is a self-loop and gets dropped.
        let g = Rmat::scale(0).edge_factor(4).generate(Seed(3));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn determinism_does_not_depend_on_thread_count() {
        // Compare the (possibly threaded) generator against an inline
        // strictly sequential reference that walks the same child-seeded
        // chunks in order.
        let spec = Rmat::scale(9).edge_factor(8);
        let par = spec.generate(Seed(11));
        let attempts = spec.num_nodes() * spec.edge_factor;
        let chunk = 1usize << 16;
        let mut pairs = Vec::with_capacity(attempts);
        for ci in 0..attempts.div_ceil(chunk) {
            let mut rng = Xoshiro256::new(Seed(11).child(ci as u64));
            let count = chunk.min(attempts - ci * chunk);
            for _ in 0..count {
                pairs.push(spec.one_edge(&mut rng));
            }
        }
        let seq = EdgeArray::from_undirected_pairs(pairs);
        assert_eq!(par.arcs(), seq.arcs());
    }
}
