//! Barabási–Albert preferential attachment [20 in the paper].
//!
//! Vertices arrive one at a time and attach `m` edges to existing vertices
//! with probability proportional to degree. Implemented with the standard
//! repeated-endpoint trick: keep a flat list containing every edge endpoint;
//! sampling uniformly from it *is* degree-proportional sampling. BA graphs
//! have very few triangles relative to edges (3 M triangles on 20 M edges in
//! Table I) and the lowest cache hit rate in Table II — the generator's role
//! in the suite is to exercise that regime.

use tc_graph::EdgeArray;

use crate::rng::{Seed, Xoshiro256};

/// Builder for a BA network with `n` vertices attaching `m` edges each.
#[derive(Clone, Copy, Debug)]
pub struct BarabasiAlbert {
    n: usize,
    m: usize,
}

impl BarabasiAlbert {
    pub fn new(n: usize, m: usize) -> Self {
        assert!(m >= 1, "attachment count must be at least 1");
        assert!(n > m, "need more vertices ({n}) than attachments ({m})");
        BarabasiAlbert { n, m }
    }

    pub fn generate(&self, seed: Seed) -> EdgeArray {
        let mut rng = Xoshiro256::new(seed);
        // Seed graph: a clique on the first m+1 vertices, so every early
        // vertex already has degree ≥ m.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.n * self.m);
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * self.n * self.m);
        for i in 0..=(self.m as u32) {
            for j in 0..i {
                pairs.push((j, i));
                endpoints.push(j);
                endpoints.push(i);
            }
        }
        let mut chosen: Vec<u32> = Vec::with_capacity(self.m);
        for v in (self.m as u32 + 1)..(self.n as u32) {
            chosen.clear();
            // Sample m distinct degree-proportional targets.
            while chosen.len() < self.m {
                let t = endpoints[rng.next_index(endpoints.len())];
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            for &t in &chosen {
                pairs.push((t, v));
                endpoints.push(t);
                endpoints.push(v);
            }
        }
        EdgeArray::from_undirected_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::stats::degree_cv;

    #[test]
    fn size_is_exact() {
        let ba = BarabasiAlbert::new(500, 4);
        let g = ba.generate(Seed(1));
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 500);
        // clique(5) = 10 edges, then 495 vertices × 4 distinct targets
        assert_eq!(g.num_edges(), 10 + 495 * 4);
    }

    #[test]
    fn deterministic() {
        let ba = BarabasiAlbert::new(300, 3);
        assert_eq!(ba.generate(Seed(5)).arcs(), ba.generate(Seed(5)).arcs());
        assert_ne!(ba.generate(Seed(5)).arcs(), ba.generate(Seed(6)).arcs());
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = BarabasiAlbert::new(2000, 3).generate(Seed(2));
        // Preferential attachment must beat an ER graph's concentration.
        assert!(degree_cv(&g) > 0.5, "cv = {}", degree_cv(&g));
        let degrees = g.degrees();
        let max = *degrees.iter().max().unwrap();
        assert!(max > 30, "hub degree {max} too small for BA");
    }

    #[test]
    fn minimum_degree_is_m() {
        let g = BarabasiAlbert::new(400, 5).generate(Seed(3));
        let min = g.degrees().into_iter().min().unwrap();
        assert!(min >= 5);
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_degenerate_parameters() {
        let _ = BarabasiAlbert::new(3, 3);
    }
}
