//! Deterministic classic graph families with known triangle counts — the
//! ground-truth fixtures of the test suite.

use tc_graph::EdgeArray;

/// Complete graph `K_n`: exactly `C(n, 3)` triangles.
pub fn complete(n: usize) -> EdgeArray {
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            pairs.push((a, b));
        }
    }
    EdgeArray::from_undirected_pairs(pairs)
}

/// Triangles in `K_n`.
pub fn complete_triangles(n: usize) -> u64 {
    let n = n as u64;
    if n < 3 {
        0
    } else {
        n * (n - 1) * (n - 2) / 6
    }
}

/// Complete bipartite graph `K_{a,b}`: bipartite, hence zero triangles.
pub fn complete_bipartite(a: usize, b: usize) -> EdgeArray {
    let mut pairs = Vec::with_capacity(a * b);
    for x in 0..a as u32 {
        for y in 0..b as u32 {
            pairs.push((x, a as u32 + y));
        }
    }
    EdgeArray::from_undirected_pairs(pairs)
}

/// Cycle `C_n`: zero triangles for `n > 3`, one for `n == 3`.
pub fn cycle(n: usize) -> EdgeArray {
    assert!(n >= 3);
    EdgeArray::from_undirected_pairs((0..n as u32).map(|v| (v, (v + 1) % n as u32)))
}

/// Path `P_n` on `n` vertices: zero triangles.
pub fn path(n: usize) -> EdgeArray {
    EdgeArray::from_undirected_pairs((0..n.saturating_sub(1) as u32).map(|v| (v, v + 1)))
}

/// Star `S_n`: one hub, `n` leaves, zero triangles. The worst case for
/// edge-iterator-style algorithms and the motivating case for the degree
/// orientation.
pub fn star(leaves: usize) -> EdgeArray {
    EdgeArray::from_undirected_pairs((1..=leaves as u32).map(|v| (0, v)))
}

/// Wheel `W_n`: hub joined to a cycle of length `n`; exactly `n` triangles
/// for `n > 3` (each rim edge closes one with the hub).
pub fn wheel(rim: usize) -> EdgeArray {
    assert!(rim >= 3);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(2 * rim);
    for v in 0..rim as u32 {
        pairs.push((0, v + 1));
        pairs.push((v + 1, (v + 1) % rim as u32 + 1));
    }
    EdgeArray::from_undirected_pairs(pairs)
}

/// Triangles in the wheel `W_n`.
pub fn wheel_triangles(rim: usize) -> u64 {
    match rim {
        3 => 4, // K_4
        r => r as u64,
    }
}

/// 2-D grid graph `a × b` (rook-move neighbours only): bipartite, zero
/// triangles, regular interior — a cache-friendly counterexample workload.
pub fn grid(a: usize, b: usize) -> EdgeArray {
    let id = |x: usize, y: usize| (x * b + y) as u32;
    let mut pairs = Vec::new();
    for x in 0..a {
        for y in 0..b {
            if x + 1 < a {
                pairs.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < b {
                pairs.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    EdgeArray::from_undirected_pairs(pairs)
}

/// Disjoint union of `count` triangles: exactly `count` triangles, maximally
/// parallel workload.
pub fn triangle_soup(count: usize) -> EdgeArray {
    let mut pairs = Vec::with_capacity(3 * count);
    for t in 0..count as u32 {
        let base = 3 * t;
        pairs.push((base, base + 1));
        pairs.push((base + 1, base + 2));
        pairs.push((base, base + 2));
    }
    EdgeArray::from_undirected_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_sizes() {
        let g = complete(6);
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(complete_triangles(6), 20);
        assert_eq!(complete_triangles(2), 0);
    }

    #[test]
    fn bipartite_is_triangle_free_by_degrees() {
        let g = complete_bipartite(3, 4);
        g.validate().unwrap();
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.num_nodes(), 7);
    }

    #[test]
    fn cycle_path_star_shapes() {
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(path(1).num_edges(), 0);
        let s = star(9);
        assert_eq!(s.num_edges(), 9);
        assert_eq!(s.degrees()[0], 9);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(5);
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(wheel_triangles(5), 5);
        assert_eq!(wheel_triangles(3), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 2 * 12 - 3 - 4); // 2ab - a - b
    }

    #[test]
    fn triangle_soup_shape() {
        let g = triangle_soup(10);
        g.validate().unwrap();
        assert_eq!(g.num_nodes(), 30);
        assert_eq!(g.num_edges(), 30);
    }
}
