//! Clique-union "co-paper" graphs: synthetic stand-ins for the Citeseer and
//! DBLP co-paper networks of the 10th DIMACS Implementation Challenge.
//!
//! In a co-paper network two authors are adjacent iff they co-authored a
//! paper, so every paper contributes a clique on its author set. That is
//! exactly why Citeseer carries 872 M triangles on only 32 M edges in
//! Table I — cliques are triangle factories. This generator samples papers
//! with a heavy-tailed author-count distribution over an author population
//! with a few prolific hubs, then unions the cliques.

use tc_graph::EdgeArray;

use crate::rng::{Seed, Xoshiro256};

/// Builder for a clique-union co-authorship graph.
#[derive(Clone, Copy, Debug)]
pub struct CoPaper {
    authors: usize,
    papers: usize,
    /// Minimum and maximum authors per paper (sampled with a Zipf-ish tail).
    min_authors: usize,
    max_authors: usize,
    /// Fraction of author slots drawn from the "prolific" core instead of
    /// uniformly — models a community of frequent collaborators.
    core_fraction: f64,
}

impl CoPaper {
    pub fn new(authors: usize, papers: usize) -> Self {
        assert!(authors >= 8);
        CoPaper {
            authors,
            papers,
            min_authors: 2,
            max_authors: 12,
            core_fraction: 0.3,
        }
    }

    pub fn author_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 2 && max >= min);
        self.min_authors = min;
        self.max_authors = max;
        self
    }

    pub fn core_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.core_fraction = f;
        self
    }

    pub fn generate(&self, seed: Seed) -> EdgeArray {
        let mut rng = Xoshiro256::new(seed);
        let core = (self.authors / 20).max(4);
        let span = self.max_authors - self.min_authors;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut team: Vec<u32> = Vec::with_capacity(self.max_authors);
        for _ in 0..self.papers {
            // Zipf-flavoured team size: small teams common, large ones rare.
            let size = if span == 0 {
                self.min_authors
            } else {
                let r = rng.next_f64();
                self.min_authors + ((span + 1) as f64 * r * r * r) as usize
            }
            .min(self.max_authors);
            team.clear();
            while team.len() < size {
                let a = if rng.chance(self.core_fraction) {
                    rng.next_below(core as u64) as u32
                } else {
                    rng.next_below(self.authors as u64) as u32
                };
                if !team.contains(&a) {
                    team.push(a);
                }
            }
            for i in 0..team.len() {
                for j in (i + 1)..team.len() {
                    pairs.push((team[i], team[j]));
                }
            }
        }
        EdgeArray::from_undirected_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_graph() {
        let g = CoPaper::new(1000, 800).generate(Seed(1));
        g.validate().unwrap();
        assert!(g.num_nodes() <= 1000);
        assert!(g.num_edges() > 800); // cliques contribute multiple edges
    }

    #[test]
    fn deterministic() {
        let cp = CoPaper::new(500, 400);
        assert_eq!(cp.generate(Seed(2)).arcs(), cp.generate(Seed(2)).arcs());
        assert_ne!(cp.generate(Seed(2)).arcs(), cp.generate(Seed(3)).arcs());
    }

    #[test]
    fn is_triangle_dense() {
        // Count triangles brute-force on a small instance: a clique-union
        // graph should have far more triangles than an ER graph with the
        // same edge budget. Cheap proxy: wedges per edge is high.
        use tc_graph::GraphStats;
        let g = CoPaper::new(300, 400).author_range(3, 10).generate(Seed(4));
        let s = GraphStats::from_edge_array(&g);
        assert!(
            s.wedges as f64 / s.num_edges as f64 > 3.0,
            "wedges/edge = {}",
            s.wedges as f64 / s.num_edges as f64
        );
    }

    #[test]
    fn respects_author_range() {
        let g = CoPaper::new(100, 50).author_range(2, 2).generate(Seed(5));
        // All papers are pairs: the graph is a union of single edges, so
        // every vertex degree is at most the number of papers it is in.
        g.validate().unwrap();
        assert!(g.num_edges() <= 50);
    }
}
