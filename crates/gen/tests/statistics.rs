//! Statistical shape tests for the generators: each family must land in
//! the degree/clustering regime its Table I counterpart occupies.

use tc_gen::barabasi_albert::BarabasiAlbert;
use tc_gen::copaper::CoPaper;
use tc_gen::erdos_renyi::{gnm, gnp};
use tc_gen::kronecker::Rmat;
use tc_gen::watts_strogatz::WattsStrogatz;
use tc_gen::Seed;
use tc_graph::stats::{degree_cv, degree_histogram};
use tc_graph::GraphStats;

#[test]
fn rmat_is_heavier_tailed_than_er() {
    let rmat = Rmat::scale(11).edge_factor(8).generate(Seed(1));
    let er = gnm(rmat.num_nodes(), rmat.num_edges(), Seed(1));
    assert!(
        degree_cv(&rmat) > 2.0 * degree_cv(&er),
        "rmat cv {} vs er cv {}",
        degree_cv(&rmat),
        degree_cv(&er)
    );
}

#[test]
fn ba_max_degree_dwarfs_median() {
    let g = BarabasiAlbert::new(3_000, 5).generate(Seed(2));
    let hist = degree_histogram(&g);
    let max_degree = hist.len() - 1;
    // Median degree is near m = 5; hubs must be two orders above.
    assert!(max_degree > 100, "max degree {max_degree}");
}

#[test]
fn ws_degrees_stay_concentrated_after_rewiring() {
    let g = WattsStrogatz::new(4_000, 12, 0.3).generate(Seed(3));
    assert!(degree_cv(&g) < 0.3, "cv {}", degree_cv(&g));
}

#[test]
fn copaper_wedge_density_beats_social_analogs() {
    let cp = CoPaper::new(1_500, 1_300)
        .author_range(3, 20)
        .generate(Seed(4));
    let rm = Rmat::scale(11).edge_factor(10).generate(Seed(4));
    let cps = GraphStats::from_edge_array(&cp);
    let rms = GraphStats::from_edge_array(&rm);
    // Wedges per edge is a cheap clustering proxy that does not need a
    // triangle count.
    let cp_ratio = cps.wedges as f64 / cps.num_edges as f64;
    let rm_ratio = rms.wedges as f64 / rms.num_edges as f64;
    assert!(
        cp_ratio > 0.5 * rm_ratio,
        "copaper {cp_ratio} vs rmat {rm_ratio}"
    );
}

#[test]
fn gnp_and_gnm_agree_on_expected_density() {
    let n = 400;
    let p = 0.05;
    let expected = (n * (n - 1) / 2) as f64 * p;
    let a = gnp(n, p, Seed(5));
    let b = gnm(n, expected as usize, Seed(5));
    let rel = (a.num_edges() as f64 - b.num_edges() as f64).abs() / expected;
    assert!(rel < 0.2, "gnp {} vs gnm {}", a.num_edges(), b.num_edges());
}

#[test]
fn all_generators_are_seed_deterministic() {
    assert_eq!(
        Rmat::scale(9).generate(Seed(7)).arcs(),
        Rmat::scale(9).generate(Seed(7)).arcs()
    );
    assert_eq!(
        BarabasiAlbert::new(500, 4).generate(Seed(7)).arcs(),
        BarabasiAlbert::new(500, 4).generate(Seed(7)).arcs()
    );
    assert_eq!(
        WattsStrogatz::new(500, 8, 0.25).generate(Seed(7)).arcs(),
        WattsStrogatz::new(500, 8, 0.25).generate(Seed(7)).arcs()
    );
    assert_eq!(
        CoPaper::new(300, 250).generate(Seed(7)).arcs(),
        CoPaper::new(300, 250).generate(Seed(7)).arcs()
    );
    assert_eq!(gnm(200, 800, Seed(7)).arcs(), gnm(200, 800, Seed(7)).arcs());
    assert_eq!(
        gnp(200, 0.05, Seed(7)).arcs(),
        gnp(200, 0.05, Seed(7)).arcs()
    );
}
