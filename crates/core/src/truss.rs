//! k-truss decomposition — the canonical analytic built *on top of*
//! triangle counting (every edge's "support" is the number of triangles
//! through it), included as a downstream application of the library's
//! machinery beyond the paper's scope.
//!
//! The k-truss of a graph is the maximal subgraph in which every edge lies
//! in at least `k − 2` triangles of the subgraph. This module computes
//! every edge's *trussness* (the largest k whose k-truss contains it) by
//! the standard peeling algorithm: repeatedly remove the edge of minimum
//! support and decrement the support of the edges it formed triangles
//! with.

use std::collections::BTreeSet;

use tc_graph::{Csr, EdgeArray, GraphError};

/// Per-edge truss decomposition result.
#[derive(Clone, Debug)]
pub struct TrussDecomposition {
    /// Undirected edges as `(u, v)` with `u < v`, in a fixed order.
    pub edges: Vec<(u32, u32)>,
    /// `trussness[i]` of `edges[i]`: the largest k such that the edge
    /// belongs to the k-truss (≥ 2 for every edge).
    pub trussness: Vec<u32>,
    /// The maximum trussness (the graph's "truss number").
    pub max_trussness: u32,
}

impl TrussDecomposition {
    /// Number of edges in the k-truss.
    pub fn truss_size(&self, k: u32) -> usize {
        self.trussness.iter().filter(|&&t| t >= k).count()
    }
}

/// Compute the truss decomposition by support peeling. `O(m^1.5)` support
/// initialization (one merge per edge, like the forward counting phase)
/// plus near-linear peeling.
pub fn truss_decomposition(g: &EdgeArray) -> Result<TrussDecomposition, GraphError> {
    let csr = Csr::from_edge_array(g)?;
    let edges: Vec<(u32, u32)> = g.undirected_iter().collect();
    let m = edges.len();

    // Edge-id lookup: index into `edges` by canonical pair, via per-vertex
    // sorted neighbour offsets. Build a map (u, v) -> id using binary search
    // over a per-u sorted slice of (v, id).
    let mut by_u: Vec<Vec<(u32, usize)>> = vec![Vec::new(); csr.num_nodes()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        by_u[u as usize].push((v, i));
    }
    for list in &mut by_u {
        list.sort_unstable();
    }
    let edge_id = |a: u32, b: u32| -> Option<usize> {
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        let list = &by_u[u as usize];
        list.binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| list[i].1)
    };

    // Initial supports: for each edge, intersect the endpoint lists.
    let mut support = vec![0u32; m];
    let mut triangle_edges: Vec<[usize; 2]> = Vec::new(); // not materialized; recomputed on peel
    triangle_edges.clear();
    for (i, &(u, v)) in edges.iter().enumerate() {
        let (mut a, mut b) = (csr.neighbors(u), csr.neighbors(v));
        let (mut x, mut y) = (0usize, 0usize);
        let mut s = 0u32;
        while x < a.len() && y < b.len() {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    s += 1;
                    x += 1;
                    y += 1;
                }
            }
        }
        support[i] = s;
        // Silence unused-var lint paths.
        let _ = (&mut a, &mut b);
    }

    // Peel in increasing support order. A BTreeSet of (support, id) is an
    // O(m log m) priority structure with cheap decrease-key.
    let mut alive = vec![true; m];
    let mut queue: BTreeSet<(u32, usize)> = (0..m).map(|i| (support[i], i)).collect();
    let mut trussness = vec![2u32; m];
    let mut k = 2u32;
    while let Some(&(s, i)) = queue.iter().next() {
        queue.remove(&(s, i));
        k = k.max(s + 2);
        trussness[i] = k;
        alive[i] = false;
        let (u, v) = edges[i];
        // Every common neighbour w with both edges alive loses one support.
        let (a, b) = (csr.neighbors(u), csr.neighbors(v));
        let (mut x, mut y) = (0usize, 0usize);
        while x < a.len() && y < b.len() {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    let w = a[x];
                    x += 1;
                    y += 1;
                    let (Some(e1), Some(e2)) = (edge_id(u, w), edge_id(v, w)) else {
                        continue;
                    };
                    if alive[e1] && alive[e2] {
                        for e in [e1, e2] {
                            queue.remove(&(support[e], e));
                            support[e] -= 1;
                            queue.insert((support[e].max(s), e));
                            // Monotonicity: an edge cannot peel below the
                            // current level; clamp its key to `s`.
                            support[e] = support[e].max(s);
                        }
                    }
                }
            }
        }
    }
    let max_trussness = trussness.iter().copied().max().unwrap_or(2);
    Ok(TrussDecomposition {
        edges,
        trussness,
        max_trussness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u32) -> EdgeArray {
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                pairs.push((a, b));
            }
        }
        EdgeArray::from_undirected_pairs(pairs)
    }

    #[test]
    fn complete_graph_is_one_truss() {
        // Every edge of K_n lies in n−2 triangles: trussness n.
        let d = truss_decomposition(&complete(6)).unwrap();
        assert_eq!(d.max_trussness, 6);
        assert!(d.trussness.iter().all(|&t| t == 6));
        assert_eq!(d.truss_size(6), 15);
        assert_eq!(d.truss_size(7), 0);
    }

    #[test]
    fn triangle_free_graph_is_all_twos() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = truss_decomposition(&g).unwrap();
        assert_eq!(d.max_trussness, 2);
        assert!(d.trussness.iter().all(|&t| t == 2));
    }

    #[test]
    fn clique_with_tail_separates() {
        // K5 plus a pendant edge: clique edges trussness 5, pendant 2.
        let mut pairs = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                pairs.push((a, b));
            }
        }
        pairs.push((4, 9));
        let g = EdgeArray::from_undirected_pairs(pairs);
        let d = truss_decomposition(&g).unwrap();
        assert_eq!(d.max_trussness, 5);
        for (i, &(u, v)) in d.edges.iter().enumerate() {
            if v == 9 {
                assert_eq!(d.trussness[i], 2, "pendant edge ({u},{v})");
            } else {
                assert_eq!(d.trussness[i], 5, "clique edge ({u},{v})");
            }
        }
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // Diamond: all five edges are in the 3-truss; the shared edge has
        // support 2 but the 4-truss would need every edge in 2 triangles.
        let g = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let d = truss_decomposition(&g).unwrap();
        assert_eq!(d.max_trussness, 3);
        assert!(d.trussness.iter().all(|&t| t == 3));
    }

    #[test]
    fn empty_graph() {
        let d = truss_decomposition(&EdgeArray::default()).unwrap();
        assert!(d.edges.is_empty());
        assert_eq!(d.max_trussness, 2);
    }

    /// Brute-force k-truss by definition: repeatedly delete edges with
    /// subgraph-support < k−2 until stable; an edge's trussness is the
    /// largest k that retains it.
    fn trussness_by_definition(g: &EdgeArray) -> Vec<((u32, u32), u32)> {
        let base: Vec<(u32, u32)> = g.undirected_iter().collect();
        let mut out: Vec<((u32, u32), u32)> = base.iter().map(|&e| (e, 2)).collect();
        for k in 3..=16u32 {
            let mut kept: Vec<(u32, u32)> = base.clone();
            loop {
                let sub = EdgeArray::from_undirected_pairs(kept.iter().copied());
                let csr = Csr::from_edge_array(&sub).unwrap();
                let n = csr.num_nodes() as u32;
                let survives = |&(u, v): &(u32, u32)| {
                    if u >= n || v >= n {
                        return false;
                    }
                    let (a, b) = (csr.neighbors(u), csr.neighbors(v));
                    let mut common = 0;
                    let (mut x, mut y) = (0, 0);
                    while x < a.len() && y < b.len() {
                        match a[x].cmp(&b[y]) {
                            std::cmp::Ordering::Less => x += 1,
                            std::cmp::Ordering::Greater => y += 1,
                            std::cmp::Ordering::Equal => {
                                common += 1;
                                x += 1;
                                y += 1;
                            }
                        }
                    }
                    common >= k - 2
                };
                let next: Vec<(u32, u32)> = kept.iter().copied().filter(|e| survives(e)).collect();
                if next.len() == kept.len() {
                    break;
                }
                kept = next;
            }
            for (e, t) in out.iter_mut() {
                if kept.contains(e) {
                    *t = k;
                }
            }
            if kept.is_empty() {
                break;
            }
        }
        out
    }

    #[test]
    fn matches_iterative_definition_on_random_graphs() {
        for seed in [3u64, 7, 21] {
            let mut pairs = Vec::new();
            let mut x = seed;
            for _ in 0..120 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = ((x >> 33) % 25) as u32;
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let b = ((x >> 33) % 25) as u32;
                pairs.push((a, b));
            }
            let g = EdgeArray::from_undirected_pairs(pairs);
            let fast = truss_decomposition(&g).unwrap();
            let slow = trussness_by_definition(&g);
            for ((e, want), (have_e, have)) in
                slow.iter().zip(fast.edges.iter().zip(&fast.trussness))
            {
                assert_eq!(e, have_e, "edge order must match");
                assert_eq!(have, want, "seed {seed}: edge {e:?}");
            }
        }
    }
}
