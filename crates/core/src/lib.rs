//! # tc-core — forward-algorithm triangle counting
//!
//! The paper's contribution (Polak, *Counting Triangles in Large Graphs on
//! GPU*, IPDPSW 2016), reproduced end to end:
//!
//! * [`cpu`] — the sequential **forward** algorithm (the paper's baseline,
//!   §II-B), the **edge-iterator** and **node-iterator** references, a
//!   hashed forward variant, and a rayon-parallel forward counter;
//! * [`gpu`] — the CUDA implementation (§III) on the [`tc_simt`] simulator:
//!   the eight-step preprocessing pipeline, the `CountTriangles` kernel in
//!   both the preliminary and the read-avoiding final form, every §III-D
//!   optimization toggle, the §III-D6 CPU-preprocessing fallback, and the
//!   §III-E multi-GPU orchestration;
//! * [`clustering`] — per-vertex triangle counts, local clustering
//!   coefficients, and the transitivity ratio (the motivating application,
//!   §I);
//! * [`count`] — the front door: a [`CountRequest`] built around a
//!   [`Backend`] selector;
//! * [`approx`] — the approximation alternatives the paper cites (§V):
//!   DOULION edge sparsification \[6\] and wedge sampling \[7\];
//! * [`verify`] — brute-force reference counters used by the test suite.

#![forbid(unsafe_code)]

pub mod approx;
pub mod clustering;
pub mod count;
pub mod cpu;
pub mod error;
pub mod gpu;
pub mod truss;
pub mod verify;

pub use count::{Backend, CountRequest, GpuOptions, ParseBackendError, TriangleCount};
pub use error::{CoreError, ErrorContext};
pub use gpu::cluster::{ClusterCount, ClusterPartition, ClusterReport, PreparedCluster};
pub use gpu::pipeline::GpuReport;
pub use gpu::prepared::{PreparedCount, PreparedGraph};
pub use gpu::schedule::KernelSchedule;
pub use gpu::{EdgeLayout, LoopVariant};
