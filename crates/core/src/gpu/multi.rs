//! Multi-GPU counting (§III-E): preprocess on one device, broadcast the
//! edge and node arrays, give each device a stripe of edges, sum the counts.
//!
//! The achievable speedup is Amdahl-limited by the preprocessing fraction —
//! 0.08 to 0.76 across the paper's graphs, capping 4-GPU speedup between
//! 3.23× and 1.22×, best on the triangle-rich Kronecker graphs. The report
//! exposes exactly the quantities needed to check that.

use tc_graph::EdgeArray;
use tc_simt::primitives::reduce_sum_u64;
use tc_simt::profiler::ProfileReport;
use tc_simt::{DeviceGroup, KernelStats, LaunchConfig, SanitizerReport, VerifierReport};

use crate::count::GpuOptions;
use crate::error::CoreError;
use crate::gpu::count_kernel::{CountKernel, KernelArrays};
use crate::gpu::pipeline::RunTrace;
use crate::gpu::preprocess::preprocess_auto;
use crate::gpu::schedule::build_plan;
use crate::gpu::warp_centric::{
    hash_scratch_len, hash_shared_slots, IntersectStrategy, WarpCentricKernel,
};
use crate::gpu::EdgeLayout;

/// Results of a multi-GPU run.
#[derive(Clone, Debug)]
pub struct MultiGpuReport {
    pub triangles: u64,
    /// Modeled wall time: preprocessing (device 0) + the slowest device's
    /// broadcast-plus-count phase.
    pub total_s: f64,
    pub preprocess_s: f64,
    /// Slowest device's post-preprocessing work (broadcast + kernel +
    /// reduction + result copy).
    pub count_s: f64,
    pub devices: usize,
    pub used_cpu_fallback: bool,
    /// Per-device post-preprocessing seconds.
    pub per_device_s: Vec<f64>,
    /// Counting-kernel profile of device 0 (representative stripe).
    pub kernel: KernelStats,
    /// Merged compute-sanitizer findings across every device, in device
    /// index order (`None` when the sanitizer was off).
    pub sanitizer: Option<SanitizerReport>,
    /// Merged static launch-verifier reports across every device, in
    /// device index order (`None` when the verifier was off).
    pub verifier: Option<VerifierReport>,
}

/// Run the §III-E scheme on `devices` identical simulated cards.
pub fn run_multi_gpu(
    g: &EdgeArray,
    opts: &GpuOptions,
    devices: usize,
) -> Result<MultiGpuReport, CoreError> {
    run_multi_gpu_profiled(g, opts, devices).map(|(report, _)| report)
}

/// Like [`run_multi_gpu`] but also returns one [`RunTrace`] per device
/// (trace thread `gpu0`, `gpu1`, …). Merge the per-device profiles with
/// [`ProfileReport::merged`] for the whole-run view.
pub fn run_multi_gpu_profiled(
    g: &EdgeArray,
    opts: &GpuOptions,
    devices: usize,
) -> Result<(MultiGpuReport, Vec<RunTrace>), CoreError> {
    assert!(devices >= 1);
    assert!(
        opts.layout == EdgeLayout::SoA,
        "the multi-GPU scheme broadcasts the production SoA layout"
    );
    // Fold the per-run sanitizer request into the device preset so every
    // striped device installs its shadow map at construction.
    let mut cfg = opts.device.clone();
    cfg.sanitizer = cfg.sanitizer.max(opts.sanitizer);
    cfg.verifier = cfg.verifier || opts.verify;
    let mut group = DeviceGroup::homogeneous(&cfg, devices);
    if opts.preinit_context {
        group.preinit_all();
    }
    group.reset_clocks();

    // Preprocess on device 0 only, reserving room for its result array.
    let reserve = {
        let dev0 = group.device(0);
        let lc = opts.launch.unwrap_or_else(|| dev0.config().paper_launch());
        LaunchConfig {
            blocks: lc.blocks * opts.warp_split,
            threads_per_block: lc.threads_per_block,
            warp_split: opts.warp_split,
        }
        .active_threads(dev0.config().warp_size) as u64
            * 8
    };
    group.device_mut(0).push_phase("preprocess");
    let pre = preprocess_auto(group.device_mut(0), g, false, reserve, opts.reorder);
    group.device_mut(0).pop_phase();
    let pre = pre?;

    // The balanced bin plan, built and charged on device 0 like the
    // preprocessing it extends.
    group.device_mut(0).push_phase("schedule");
    let plan = build_plan(group.device_mut(0), &pre, opts.schedule);
    group.device_mut(0).pop_phase();
    let plan = plan?;
    let preprocess_s = group.device(0).elapsed() + pre.host_seconds;

    // Broadcast the shared arrays (plus the gathered bin-ordered edge
    // copies under a balanced plan). Target clocks start accumulating here.
    let t_before: Vec<f64> = (0..devices).map(|i| group.device(i).elapsed()).collect();
    for i in 0..devices {
        group.device_mut(i).push_phase("broadcast");
    }
    let nbr = group.broadcast(0, &pre.nbr)?;
    let owner = group.broadcast(0, &pre.owner)?;
    let node = group.broadcast(0, &pre.node)?;
    let gathered = match &plan {
        Some(plan) => Some((group.broadcast(0, &plan.eu)?, group.broadcast(0, &plan.ev)?)),
        None => None,
    };
    for i in 0..devices {
        group.device_mut(i).pop_phase();
    }

    // Each device counts its stripe — of the whole edge array under the
    // paper's scheme, of every occupied bin under a balanced plan (so each
    // device sees the same light/heavy mix and the stripes stay even).
    let mut triangles = 0u64;
    let mut kernel_stats: Option<KernelStats> = None;
    for i in 0..devices {
        let dev = group.device_mut(i);
        let lc = opts.launch.unwrap_or_else(|| dev.config().paper_launch());
        let lc = LaunchConfig {
            blocks: lc.blocks * opts.warp_split,
            threads_per_block: lc.threads_per_block,
            warp_split: opts.warp_split,
        };
        let total_threads = lc.active_threads(dev.config().warp_size);
        dev.push_phase("count");
        let result = dev.alloc::<u64>(total_threads)?;
        // Hash bins need per-device table scratch (each device runs its
        // own stripe of every bin with the full launch geometry).
        let scratch_len = plan.as_ref().and_then(|p| {
            p.bins
                .iter()
                .filter(|b| b.hash && b.len > 0)
                .map(|b| hash_scratch_len(total_threads, b.width))
                .max()
        });
        let hash_scratch = match scratch_len {
            Some(len) => Some(dev.alloc::<u32>(len)?),
            None => None,
        };
        match (&plan, &gathered) {
            (Some(plan), Some((eu, ev))) => {
                let mut slowest: Option<KernelStats> = None;
                for bin in plan.occupied() {
                    dev.poke(&result, &vec![0u64; total_threads]);
                    let offset = bin.start + bin.len * i / devices;
                    let count = bin.start + bin.len * (i + 1) / devices - offset;
                    if count == 0 {
                        continue;
                    }
                    let stats = if bin.width == 1 {
                        let kernel = CountKernel {
                            arrays: KernelArrays::Gathered {
                                eu: eu[i],
                                ev: ev[i],
                                adj: nbr[i],
                            },
                            node: node[i],
                            result,
                            offset,
                            count,
                            variant: opts.kernel,
                            use_texture_cache: opts.use_texture_cache,
                        };
                        dev.with_phase("count-kernel", |d| {
                            d.launch("CountTriangles(bin stripe)", lc, &kernel)
                        })?
                    } else {
                        let kernel = WarpCentricKernel {
                            adj: nbr[i],
                            edge_u: eu[i],
                            edge_v: ev[i],
                            node: node[i],
                            result,
                            offset,
                            count,
                            virtual_warp: bin.width,
                            use_texture_cache: opts.use_texture_cache,
                            strategy: if bin.hash {
                                IntersectStrategy::Hash
                            } else {
                                IntersectStrategy::ChunkScan
                            },
                            scratch: if bin.hash { hash_scratch } else { None },
                            shared_slots: if bin.hash {
                                hash_shared_slots(dev.config(), lc.threads_per_block, bin.width)
                            } else {
                                0
                            },
                        };
                        let label = if bin.hash {
                            "CountTrianglesWarpHash(bin stripe)"
                        } else {
                            "CountTrianglesWarp(bin stripe)"
                        };
                        dev.with_phase("count-kernel", |d| d.launch(label, lc, &kernel))?
                    };
                    if slowest.as_ref().is_none_or(|s| stats.time_s > s.time_s) {
                        slowest = Some(stats);
                    }
                    triangles += dev.with_phase("reduce", |d| reduce_sum_u64(d, &result));
                }
                if i == 0 {
                    kernel_stats = Some(slowest.unwrap_or_default());
                }
            }
            _ => {
                dev.poke(&result, &vec![0u64; total_threads]);
                let offset = pre.m * i / devices;
                let count = pre.m * (i + 1) / devices - offset;
                let kernel = CountKernel {
                    arrays: KernelArrays::SoA {
                        nbr: nbr[i],
                        owner: owner[i],
                    },
                    node: node[i],
                    result,
                    offset,
                    count,
                    variant: opts.kernel,
                    use_texture_cache: opts.use_texture_cache,
                };
                let stats = dev.with_phase("count-kernel", |d| {
                    d.launch("CountTriangles(stripe)", lc, &kernel)
                })?;
                if i == 0 {
                    kernel_stats = Some(stats);
                }
                triangles += dev.with_phase("reduce", |d| reduce_sum_u64(d, &result));
            }
        }
        if let Some(scratch) = hash_scratch {
            dev.free(scratch)?;
        }
        dev.free(result)?;
        dev.pop_phase();
    }

    let per_device_s: Vec<f64> = (0..devices)
        .map(|i| group.device(i).elapsed() - t_before[i])
        .collect();
    let count_s = per_device_s.iter().copied().fold(0.0, f64::max);
    let total_s = preprocess_s + count_s;
    let traces: Vec<RunTrace> = (0..devices)
        .map(|i| {
            let dev = group.device(i);
            RunTrace {
                device_name: format!("gpu{i} ({})", dev.config().name),
                log: dev.time_log().to_vec(),
                spans: dev.spans().to_vec(),
                profile: dev.profile(),
            }
        })
        .collect();
    let per_device_reports: Vec<SanitizerReport> = (0..devices)
        .filter_map(|i| group.device(i).sanitizer_report())
        .collect();
    let sanitizer = if per_device_reports.is_empty() {
        None
    } else {
        Some(SanitizerReport::merged(&per_device_reports))
    };
    let verifier_reports: Vec<VerifierReport> = (0..devices)
        .filter_map(|i| group.device(i).verifier_report())
        .collect();
    let verifier = if verifier_reports.is_empty() {
        None
    } else {
        Some(VerifierReport::merged(&verifier_reports))
    };
    let report = MultiGpuReport {
        triangles,
        total_s,
        preprocess_s,
        count_s,
        devices,
        used_cpu_fallback: pre.used_cpu_fallback,
        per_device_s,
        kernel: kernel_stats.expect("at least one device"),
        sanitizer,
        verifier,
    };
    Ok((report, traces))
}

/// Merge the per-device profiles of a [`run_multi_gpu_profiled`] run into
/// one whole-run [`ProfileReport`].
pub fn merged_profile(traces: &[RunTrace]) -> ProfileReport {
    let profiles: Vec<ProfileReport> = traces.iter().map(|t| t.profile.clone()).collect();
    ProfileReport::merged(&profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::count_forward;
    use tc_simt::DeviceConfig;

    fn dense_graph() -> EdgeArray {
        // Large enough that the counting kernel dominates the per-device
        // broadcast cost (the regime the paper's §III-E numbers are in).
        let mut pairs = Vec::new();
        for a in 0..96u32 {
            for b in (a + 1)..96 {
                if (a * 5 + b * 3) % 4 != 1 {
                    pairs.push((a, b));
                }
            }
        }
        EdgeArray::from_undirected_pairs(pairs)
    }

    #[test]
    fn multi_gpu_counts_match_cpu_for_1_2_4_devices() {
        let g = dense_graph();
        let want = count_forward(&g).unwrap();
        let opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
        for devices in [1, 2, 4] {
            let report = run_multi_gpu(&g, &opts, devices).unwrap();
            assert_eq!(report.triangles, want, "devices = {devices}");
            assert_eq!(report.devices, devices);
            assert_eq!(report.per_device_s.len(), devices);
            assert!(report.total_s > 0.0);
        }
    }

    #[test]
    fn counting_phase_shrinks_with_more_devices() {
        let g = dense_graph();
        let mut opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
        // Keep the grid small relative to the edge count so each lane has a
        // work queue (the paper's regime: millions of edges per launch).
        // With more threads than edges the kernel is latency-bound and
        // striping cannot shrink the per-lane critical path.
        opts.launch = Some(LaunchConfig::new(2, 64));
        let one = run_multi_gpu(&g, &opts, 1).unwrap();
        let four = run_multi_gpu(&g, &opts, 4).unwrap();
        // Kernel stripes are a quarter of the work; allow broadcast costs.
        assert!(
            four.count_s < one.count_s,
            "4-GPU count {} !< 1-GPU count {}",
            four.count_s,
            one.count_s
        );
        // Preprocessing is identical (device 0 does it alone).
        let rel = (four.preprocess_s - one.preprocess_s).abs() / one.preprocess_s;
        assert!(rel < 1e-9, "preprocessing must not depend on device count");
    }

    #[test]
    fn balanced_multi_gpu_counts_match_cpu_for_every_device_count() {
        let g = dense_graph();
        let want = count_forward(&g).unwrap();
        let dev = DeviceConfig::tesla_c2050().with_unlimited_memory();
        for schedule in [
            crate::KernelSchedule::Balanced,
            crate::KernelSchedule::BalancedFixed {
                threshold: 32,
                width: 8,
            },
        ] {
            let mut opts = GpuOptions::new(dev.clone());
            opts.schedule = schedule;
            for devices in [1, 2, 3, 4] {
                let report = run_multi_gpu(&g, &opts, devices).unwrap();
                assert_eq!(
                    report.triangles, want,
                    "schedule = {schedule}, devices = {devices}"
                );
            }
        }
    }

    #[test]
    fn single_device_multi_matches_pipeline_shape() {
        let g = dense_graph();
        let opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
        let multi = run_multi_gpu(&g, &opts, 1).unwrap();
        let single = crate::gpu::pipeline::run_gpu_pipeline(&g, &opts).unwrap();
        assert_eq!(multi.triangles, single.triangles);
    }
}
