//! The `CountTriangles` kernel (§III-C) as a SIMT lane program.
//!
//! Functionally and memory-access-faithfully mirrors the published CUDA:
//! thread `tid` handles the edges whose index ≡ `tid` modulo the grid size;
//! for each edge it loads the endpoints, the four node-array cells, and
//! runs the two-pointer merge over the neighbour array. The §III-D toggles:
//!
//! * [`LoopVariant::FinalReadAvoiding`] vs [`LoopVariant::Preliminary`]
//!   changes exactly the loads per merge iteration (1 vs 2);
//! * `EdgeLayout::SoA` vs `EdgeLayout::AoS` changes the stride of
//!   neighbour-array entries (4 B vs 8 B) and fuses the endpoint loads;
//! * `use_texture_cache` flips the `cached` flag on every data load
//!   (modelling the presence/absence of `const __restrict__`).
//!
//! Like the CUDA original, the final-variant merge issues a benign
//! one-past-the-end load on its last iteration (`a = edge[++u_it]` with
//! `u_it == u_end`); the simulator's arena guarantees those loads are safe.

use tc_simt::{
    AccessContract, AffineFootprint, DeviceBuffer, Effect, Interval, Kernel, Lane, LaunchConfig,
    MemView,
};

use super::LoopVariant;

/// Where the kernel's arrays live on the device.
#[derive(Clone, Copy, Debug)]
pub enum KernelArrays {
    /// Unzipped layout: `nbr[i]` = second endpoint (the concatenated,
    /// sorted adjacency lists), `owner[i]` = first endpoint.
    SoA {
        nbr: DeviceBuffer<u32>,
        owner: DeviceBuffer<u32>,
    },
    /// Packed `(owner << 32) | nbr` arcs.
    AoS { arcs: DeviceBuffer<u64> },
    /// Bin-ordered gathered endpoints (the balanced scheduler's layout):
    /// `eu[i]`/`ev[i]` are the edge's endpoints in work-sorted order,
    /// while merges still read the *original* adjacency array `adj` that
    /// the node array points into.
    Gathered {
        eu: DeviceBuffer<u32>,
        ev: DeviceBuffer<u32>,
        adj: DeviceBuffer<u32>,
    },
}

/// The triangle-counting kernel.
#[derive(Clone, Copy, Debug)]
pub struct CountKernel {
    pub arrays: KernelArrays,
    pub node: DeviceBuffer<u32>,
    pub result: DeviceBuffer<u64>,
    /// First edge index of this device's stripe (multi-GPU; 0 otherwise).
    pub offset: usize,
    /// Edges in this stripe (single GPU: the full `m`).
    pub count: usize,
    pub variant: LoopVariant,
    pub use_texture_cache: bool,
}

impl Kernel for CountKernel {
    type Lane = CountLane;

    fn contract(&self, _lc: LaunchConfig, total: usize) -> Option<AccessContract> {
        // Reads: the edge stripe this grid covers, the whole node array
        // (endpoint vertices are data-dependent), and the whole neighbour
        // array the merges walk. The final variant's benign one-past-the-end
        // load is covered by the verifier's guard-byte tolerance on reads.
        let mut reads = vec![Interval::bytes(self.node.addr(), self.node.byte_len())];
        match self.arrays {
            KernelArrays::SoA { nbr, owner } => {
                reads.push(Interval::bytes(
                    owner.addr() + self.offset as u64 * 4,
                    self.count as u64 * 4,
                ));
                reads.push(Interval::bytes(nbr.addr(), nbr.byte_len()));
            }
            // Packed arcs serve both as the edge stripe and as the
            // adjacency storage the node array points into.
            KernelArrays::AoS { arcs } => {
                reads.push(Interval::bytes(arcs.addr(), arcs.byte_len()));
            }
            KernelArrays::Gathered { eu, ev, adj } => {
                reads.push(Interval::bytes(
                    eu.addr() + self.offset as u64 * 4,
                    self.count as u64 * 4,
                ));
                reads.push(Interval::bytes(
                    ev.addr() + self.offset as u64 * 4,
                    self.count as u64 * 4,
                ));
                reads.push(Interval::bytes(adj.addr(), adj.byte_len()));
            }
        }
        // Each lane writes exactly its own 8-byte result cell, once.
        let writes = vec![AffineFootprint::per_lane(
            self.result.addr(),
            8,
            total as u64,
        )];
        Some(AccessContract {
            reads,
            writes,
            ..AccessContract::default()
        })
    }

    fn spawn(&self, tid: usize, total: usize) -> CountLane {
        CountLane {
            k: *self,
            i: self.offset + tid,
            end: self.offset + self.count,
            stride: total,
            tid,
            u_it: 0,
            u_end: 0,
            v_it: 0,
            v_end: 0,
            a: 0,
            b: 0,
            u: 0,
            v: 0,
            count: 0,
            phase: Phase::NextEdge,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    NextEdge,
    LoadEdge2, // SoA only: second endpoint load
    LoadNodeU,
    LoadNodeUEnd,
    LoadNodeV,
    LoadNodeVEnd,
    /// Initial `a` load (final variant performs it before the loop test,
    /// like the CUDA source).
    LoadA,
    LoadB,
    Merge,
    /// After a match in the final variant: reload `a`, then `b`.
    MatchReloadB,
    /// Preliminary variant: load `a` then `b` then compare, every iteration.
    PrelimLoadB,
    WriteResult,
    Finished,
}

/// One thread of [`CountKernel`].
pub struct CountLane {
    k: CountKernel,
    i: usize,
    end: usize,
    stride: usize,
    tid: usize,
    u_it: u32,
    u_end: u32,
    v_it: u32,
    v_end: u32,
    a: u32,
    b: u32,
    u: u32,
    v: u32,
    count: u64,
    phase: Phase,
}

impl CountLane {
    /// Address and width of neighbour-array element `idx`.
    #[inline]
    fn elem(&self, idx: u32) -> (u64, u32) {
        match self.k.arrays {
            KernelArrays::SoA { nbr, .. } => (nbr.addr() + idx as u64 * 4, 4),
            KernelArrays::AoS { arcs } => (arcs.addr() + idx as u64 * 8, 8),
            KernelArrays::Gathered { adj, .. } => (adj.addr() + idx as u64 * 4, 4),
        }
    }

    /// Load neighbour-array element `idx` (low half in AoS).
    #[inline]
    fn read_elem(&self, mem: &MemView<'_>, idx: u32) -> u32 {
        match self.k.arrays {
            KernelArrays::SoA { nbr, .. } => mem.read_u32(nbr.addr() + idx as u64 * 4),
            KernelArrays::AoS { arcs } => mem.read_u32(arcs.addr() + idx as u64 * 8),
            KernelArrays::Gathered { adj, .. } => mem.read_u32(adj.addr() + idx as u64 * 4),
        }
    }

    #[inline]
    fn read(&self, addr: u64, bytes: u32) -> Effect {
        Effect::Read {
            addr,
            bytes,
            cached: self.k.use_texture_cache,
        }
    }
}

impl Lane for CountLane {
    fn step(&mut self, mem: &MemView<'_>) -> Effect {
        // Register-only transitions are folded into the next memory step, so
        // every `step` returns exactly one chargeable effect.
        loop {
            match self.phase {
                Phase::NextEdge => {
                    if self.i >= self.end {
                        self.phase = Phase::WriteResult;
                        continue;
                    }
                    match self.k.arrays {
                        KernelArrays::SoA { owner, .. } => {
                            self.u = mem.read_u32(owner.addr() + self.i as u64 * 4);
                            self.phase = Phase::LoadEdge2;
                            return self.read(owner.addr() + self.i as u64 * 4, 4);
                        }
                        KernelArrays::AoS { arcs } => {
                            let packed = mem.read_u64(arcs.addr() + self.i as u64 * 8);
                            self.u = (packed >> 32) as u32;
                            self.v = packed as u32;
                            self.phase = Phase::LoadNodeU;
                            return self.read(arcs.addr() + self.i as u64 * 8, 8);
                        }
                        KernelArrays::Gathered { eu, .. } => {
                            self.u = mem.read_u32(eu.addr() + self.i as u64 * 4);
                            self.phase = Phase::LoadEdge2;
                            return self.read(eu.addr() + self.i as u64 * 4, 4);
                        }
                    }
                }
                Phase::LoadEdge2 => {
                    let second = match self.k.arrays {
                        KernelArrays::SoA { nbr, .. } => nbr,
                        KernelArrays::Gathered { ev, .. } => ev,
                        KernelArrays::AoS { .. } => unreachable!(),
                    };
                    self.v = mem.read_u32(second.addr() + self.i as u64 * 4);
                    self.phase = Phase::LoadNodeU;
                    return self.read(second.addr() + self.i as u64 * 4, 4);
                }
                Phase::LoadNodeU => {
                    let addr = self.k.node.addr() + self.u as u64 * 4;
                    self.u_it = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeUEnd;
                    return self.read(addr, 4);
                }
                Phase::LoadNodeUEnd => {
                    let addr = self.k.node.addr() + (self.u as u64 + 1) * 4;
                    self.u_end = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeV;
                    return self.read(addr, 4);
                }
                Phase::LoadNodeV => {
                    let addr = self.k.node.addr() + self.v as u64 * 4;
                    self.v_it = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeVEnd;
                    return self.read(addr, 4);
                }
                Phase::LoadNodeVEnd => {
                    let addr = self.k.node.addr() + (self.v as u64 + 1) * 4;
                    self.v_end = mem.read_u32(addr);
                    self.phase = match self.k.variant {
                        // `int a = edge[u_it], b = edge[v_it];` precedes the
                        // loop test in the CUDA source.
                        LoopVariant::FinalReadAvoiding => Phase::LoadA,
                        LoopVariant::Preliminary => {
                            if self.u_it < self.u_end && self.v_it < self.v_end {
                                Phase::LoadA
                            } else {
                                self.i += self.stride;
                                Phase::NextEdge
                            }
                        }
                    };
                    return self.read(addr, 4);
                }
                Phase::LoadA => {
                    self.a = self.read_elem(mem, self.u_it);
                    let (addr, bytes) = self.elem(self.u_it);
                    self.phase = match self.k.variant {
                        LoopVariant::FinalReadAvoiding => Phase::LoadB,
                        LoopVariant::Preliminary => Phase::PrelimLoadB,
                    };
                    return self.read(addr, bytes);
                }
                Phase::LoadB => {
                    self.b = self.read_elem(mem, self.v_it);
                    let (addr, bytes) = self.elem(self.v_it);
                    self.phase = Phase::Merge;
                    return self.read(addr, bytes);
                }
                Phase::Merge => {
                    // Loop test first (matches the while condition).
                    if self.u_it >= self.u_end || self.v_it >= self.v_end {
                        self.i += self.stride;
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    debug_assert_eq!(self.k.variant, LoopVariant::FinalReadAvoiding);
                    match self.a.cmp(&self.b) {
                        std::cmp::Ordering::Less => {
                            self.u_it += 1;
                            self.a = self.read_elem(mem, self.u_it);
                            let (addr, bytes) = self.elem(self.u_it);
                            return self.read(addr, bytes);
                        }
                        std::cmp::Ordering::Greater => {
                            self.v_it += 1;
                            self.b = self.read_elem(mem, self.v_it);
                            let (addr, bytes) = self.elem(self.v_it);
                            return self.read(addr, bytes);
                        }
                        std::cmp::Ordering::Equal => {
                            self.count += 1;
                            self.u_it += 1;
                            self.v_it += 1;
                            self.a = self.read_elem(mem, self.u_it);
                            let (addr, bytes) = self.elem(self.u_it);
                            self.phase = Phase::MatchReloadB;
                            return self.read(addr, bytes);
                        }
                    }
                }
                Phase::MatchReloadB => {
                    self.b = self.read_elem(mem, self.v_it);
                    let (addr, bytes) = self.elem(self.v_it);
                    self.phase = Phase::Merge;
                    return self.read(addr, bytes);
                }
                Phase::PrelimLoadB => {
                    // Preliminary variant: we just loaded `a`; load `b`, then
                    // compare and advance with *no* carried registers.
                    self.b = self.read_elem(mem, self.v_it);
                    let (addr, bytes) = self.elem(self.v_it);
                    match self.a.cmp(&self.b) {
                        std::cmp::Ordering::Less => self.u_it += 1,
                        std::cmp::Ordering::Greater => self.v_it += 1,
                        std::cmp::Ordering::Equal => {
                            self.count += 1;
                            self.u_it += 1;
                            self.v_it += 1;
                        }
                    }
                    self.phase = if self.u_it < self.u_end && self.v_it < self.v_end {
                        Phase::LoadA
                    } else {
                        self.i += self.stride;
                        Phase::NextEdge
                    };
                    return self.read(addr, bytes);
                }
                Phase::WriteResult => {
                    self.phase = Phase::Finished;
                    return Effect::Write {
                        addr: self.k.result.addr() + self.tid as u64 * 8,
                        bytes: 8,
                        value: self.count,
                    };
                }
                Phase::Finished => return Effect::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_simt::{Device, DeviceConfig, LaunchConfig};

    /// Tiny hand-built oriented graph: two triangles sharing edge (0, 1) in
    /// orientation space. Oriented arcs sorted by (owner, nbr):
    ///   0 -> 1, 0 -> 2, 0 -> 3, 1 -> 2, 1 -> 3
    /// Intersections: (0,1): {2,3} = 2; (0,2): {} ; (0,3): {}; (1,2); (1,3).
    fn device_with_graph() -> (Device, KernelArrays, DeviceBuffer<u32>, usize) {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let owner: Vec<u32> = vec![0, 0, 0, 1, 1];
        let nbr: Vec<u32> = vec![1, 2, 3, 2, 3];
        let node: Vec<u32> = vec![0, 3, 5, 5, 5]; // n = 4
        let m = owner.len();
        let owner_buf = dev.htod_copy(&owner).unwrap();
        let nbr_buf = dev.htod_copy(&nbr).unwrap();
        let node_buf = dev.htod_copy(&node).unwrap();
        (
            dev,
            KernelArrays::SoA {
                nbr: nbr_buf,
                owner: owner_buf,
            },
            node_buf,
            m,
        )
    }

    fn run(
        dev: &mut Device,
        arrays: KernelArrays,
        node: DeviceBuffer<u32>,
        m: usize,
        variant: LoopVariant,
    ) -> u64 {
        let lc = LaunchConfig::new(2, 32);
        let total = lc.active_threads(dev.config().warp_size);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = CountKernel {
            arrays,
            node,
            result,
            offset: 0,
            count: m,
            variant,
            use_texture_cache: true,
        };
        dev.launch("count", lc, &kernel).unwrap();
        dev.peek(&result).iter().sum()
    }

    #[test]
    fn counts_two_triangles_soa_final() {
        let (mut dev, arrays, node, m) = device_with_graph();
        assert_eq!(
            run(&mut dev, arrays, node, m, LoopVariant::FinalReadAvoiding),
            2
        );
    }

    #[test]
    fn counts_two_triangles_preliminary() {
        let (mut dev, arrays, node, m) = device_with_graph();
        assert_eq!(run(&mut dev, arrays, node, m, LoopVariant::Preliminary), 2);
    }

    #[test]
    fn counts_two_triangles_aos() {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let arcs: Vec<u64> = [(0u64, 1u64), (0, 2), (0, 3), (1, 2), (1, 3)]
            .iter()
            .map(|&(u, v)| (u << 32) | v)
            .collect();
        let node: Vec<u32> = vec![0, 3, 5, 5, 5];
        let arcs_buf = dev.htod_copy(&arcs).unwrap();
        let node_buf = dev.htod_copy(&node).unwrap();
        let n = run(
            &mut dev,
            KernelArrays::AoS { arcs: arcs_buf },
            node_buf,
            arcs.len(),
            LoopVariant::FinalReadAvoiding,
        );
        assert_eq!(n, 2);
    }

    #[test]
    fn stripe_offsets_partition_the_work() {
        // Count edges [0, 3) and [3, 5) separately; totals must add up.
        let (mut dev, arrays, node, _) = device_with_graph();
        let lc = LaunchConfig::new(1, 32);
        let total = lc.active_threads(dev.config().warp_size);
        let mut sum = 0;
        for (off, cnt) in [(0usize, 3usize), (3, 2)] {
            let result = dev.alloc::<u64>(total).unwrap();
            dev.poke(&result, &vec![0u64; total]);
            let kernel = CountKernel {
                arrays,
                node,
                result,
                offset: off,
                count: cnt,
                variant: LoopVariant::FinalReadAvoiding,
                use_texture_cache: true,
            };
            dev.launch("count-stripe", lc, &kernel).unwrap();
            sum += dev.peek(&result).iter().sum::<u64>();
        }
        assert_eq!(sum, 2);
    }

    #[test]
    fn empty_edge_list_counts_zero() {
        let (mut dev, arrays, node, _) = device_with_graph();
        assert_eq!(
            run(&mut dev, arrays, node, 0, LoopVariant::FinalReadAvoiding),
            0
        );
    }

    #[test]
    fn preliminary_variant_issues_more_loads_on_mismatching_merges() {
        // A single edge (0, 1) whose endpoint lists are long, interleaved,
        // and match-free: the final variant loads one element per merge
        // iteration, the preliminary one two. (On all-match merges both
        // load two; the III-D3 gain comes from the mismatch-heavy
        // iterations that dominate real graphs.) Only edge index 0 is in
        // the stripe; the rest of the neighbour buffer is pure adjacency
        // storage, which the node array is free to point into.
        let k = 200u32;
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        // nbr[0] = the edge's second endpoint; then vertex 0's list
        // (evens), then vertex 1's list (odds).
        let mut nbr: Vec<u32> = vec![1];
        nbr.extend((0..k).map(|i| 100 + 2 * i));
        nbr.extend((0..k).map(|i| 101 + 2 * i));
        let owner: Vec<u32> = vec![0];
        let mut node: Vec<u32> = vec![1, 1 + k, 1 + 2 * k];
        node.extend(std::iter::repeat_n(1 + 2 * k, 600));
        let owner_buf = dev.htod_copy(&owner).unwrap();
        let nbr_buf = dev.htod_copy(&nbr).unwrap();
        let node_buf = dev.htod_copy(&node).unwrap();

        let lc = LaunchConfig::new(1, 32);
        let total = lc.active_threads(dev.config().warp_size);
        let mut steps = Vec::new();
        for variant in [LoopVariant::FinalReadAvoiding, LoopVariant::Preliminary] {
            let result = dev.alloc::<u64>(total).unwrap();
            dev.poke(&result, &vec![0u64; total]);
            let kernel = CountKernel {
                arrays: KernelArrays::SoA {
                    nbr: nbr_buf,
                    owner: owner_buf,
                },
                node: node_buf,
                result,
                offset: 0,
                count: 1,
                variant,
                use_texture_cache: true,
            };
            let stats = dev.launch("count", lc, &kernel).unwrap();
            let counted: u64 = dev.peek(&result).iter().sum();
            assert_eq!(counted, 0, "interleaved lists share no element");
            steps.push(stats.lane_steps);
        }
        assert!(
            steps[1] as f64 > 1.4 * steps[0] as f64,
            "prelim {} not clearly above final {}",
            steps[1],
            steps[0]
        );
    }
}
