//! The virtual warp-centric kernel — one of §III-D7's *unsuccessful*
//! optimization attempts ("we tried the virtual warp-centric method \[10\]…
//! none of these optimizations increased the performance of our
//! implementation, probably due to a high overhead compared to possible
//! gains").
//!
//! Instead of one thread per edge, a *virtual warp* of `W` lanes
//! cooperates on each edge: the lanes stride over the shorter endpoint
//! list and each tests its elements against the longer list by binary
//! search. That parallelizes the intersection (the idea Green et al. \[15\]
//! build on) but replaces the merge's ~1 sequential read per element with
//! ~log₂(len) scattered reads — exactly the overhead the paper observed.
//! The kernel exists so the ablation bench can demonstrate the paper's
//! negative result; counts are exact.

use tc_simt::{DeviceBuffer, Effect, Kernel, Lane, MemView};

/// Virtual-warp-centric triangle counting over the preprocessed SoA arrays.
#[derive(Clone, Copy, Debug)]
pub struct WarpCentricKernel {
    pub nbr: DeviceBuffer<u32>,
    pub owner: DeviceBuffer<u32>,
    pub node: DeviceBuffer<u32>,
    pub result: DeviceBuffer<u64>,
    /// Edges in the launch (single GPU: the oriented `m`).
    pub count: usize,
    /// Virtual warp width `W` (lanes cooperating per edge); must divide the
    /// physical warp size.
    pub virtual_warp: u32,
    pub use_texture_cache: bool,
}

impl Kernel for WarpCentricKernel {
    type Lane = WarpCentricLane;

    fn spawn(&self, tid: usize, total: usize) -> WarpCentricLane {
        let w = self.virtual_warp as usize;
        WarpCentricLane {
            k: *self,
            edge: tid / w,
            edge_stride: total / w,
            role: (tid % w) as u32,
            tid,
            count: 0,
            phase: Phase::NextEdge,
            u: 0,
            v: 0,
            short_it: 0,
            short_end: 0,
            long_lo: 0,
            long_hi: 0,
            needle: 0,
            bs_lo: 0,
            bs_hi: 0,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    NextEdge,
    LoadEdge2,
    LoadNodeU,
    LoadNodeUEnd,
    LoadNodeV,
    LoadNodeVEnd,
    /// Load the lane's next element of the shorter list.
    LoadNeedle,
    /// One probe of the binary search over the longer list.
    Probe,
    WriteResult,
    Finished,
}

/// One lane of a virtual warp.
pub struct WarpCentricLane {
    k: WarpCentricKernel,
    edge: usize,
    edge_stride: usize,
    role: u32,
    tid: usize,
    count: u64,
    phase: Phase,
    u: u32,
    v: u32,
    /// Cursor over the shorter list (this lane's stripe).
    short_it: u32,
    short_end: u32,
    /// The longer list's bounds.
    long_lo: u32,
    long_hi: u32,
    /// Current element being searched, and the live binary-search window.
    needle: u32,
    bs_lo: u32,
    bs_hi: u32,
}

impl WarpCentricLane {
    #[inline]
    fn read(&self, addr: u64) -> Effect {
        Effect::Read {
            addr,
            bytes: 4,
            cached: self.k.use_texture_cache,
        }
    }
}

impl Lane for WarpCentricLane {
    fn step(&mut self, mem: &MemView<'_>) -> Effect {
        loop {
            match self.phase {
                Phase::NextEdge => {
                    if self.edge >= self.k.count {
                        self.phase = Phase::WriteResult;
                        continue;
                    }
                    let addr = self.k.owner.addr_of(self.edge);
                    self.u = mem.read_u32(addr);
                    self.phase = Phase::LoadEdge2;
                    return self.read(addr);
                }
                Phase::LoadEdge2 => {
                    let addr = self.k.nbr.addr_of(self.edge);
                    self.v = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeU;
                    return self.read(addr);
                }
                Phase::LoadNodeU => {
                    let addr = self.k.node.addr_of(self.u as usize);
                    self.short_it = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeUEnd;
                    return self.read(addr);
                }
                Phase::LoadNodeUEnd => {
                    let addr = self.k.node.addr_of(self.u as usize + 1);
                    self.short_end = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeV;
                    return self.read(addr);
                }
                Phase::LoadNodeV => {
                    let addr = self.k.node.addr_of(self.v as usize);
                    self.long_lo = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeVEnd;
                    return self.read(addr);
                }
                Phase::LoadNodeVEnd => {
                    let addr = self.k.node.addr_of(self.v as usize + 1);
                    self.long_hi = mem.read_u32(addr);
                    // Walk the shorter list, search the longer one.
                    if self.long_hi - self.long_lo < self.short_end - self.short_it {
                        std::mem::swap(&mut self.short_it, &mut self.long_lo);
                        std::mem::swap(&mut self.short_end, &mut self.long_hi);
                    }
                    // This lane's stripe of the shorter list.
                    self.short_it += self.role;
                    self.phase = Phase::LoadNeedle;
                    return self.read(addr);
                }
                Phase::LoadNeedle => {
                    if self.short_it >= self.short_end {
                        self.edge += self.edge_stride;
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    let addr = self.k.nbr.addr_of(self.short_it as usize);
                    self.needle = mem.read_u32(addr);
                    self.bs_lo = self.long_lo;
                    self.bs_hi = self.long_hi;
                    self.phase = Phase::Probe;
                    return self.read(addr);
                }
                Phase::Probe => {
                    if self.bs_lo >= self.bs_hi {
                        // Not found; next stripe element.
                        self.short_it += self.k.virtual_warp;
                        self.phase = Phase::LoadNeedle;
                        continue;
                    }
                    let mid = self.bs_lo + (self.bs_hi - self.bs_lo) / 2;
                    let addr = self.k.nbr.addr_of(mid as usize);
                    let val = mem.read_u32(addr);
                    match self.needle.cmp(&val) {
                        std::cmp::Ordering::Equal => {
                            self.count += 1;
                            self.short_it += self.k.virtual_warp;
                            self.phase = Phase::LoadNeedle;
                        }
                        std::cmp::Ordering::Less => self.bs_hi = mid,
                        std::cmp::Ordering::Greater => self.bs_lo = mid + 1,
                    }
                    return self.read(addr);
                }
                Phase::WriteResult => {
                    self.phase = Phase::Finished;
                    return Effect::Write {
                        addr: self.k.result.addr_of(self.tid),
                        bytes: 8,
                        value: self.count,
                    };
                }
                Phase::Finished => return Effect::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::count_kernel::{CountKernel, KernelArrays};
    use crate::gpu::preprocess::preprocess_full_gpu;
    use crate::gpu::LoopVariant;
    use tc_graph::EdgeArray;
    use tc_simt::{Device, DeviceConfig, LaunchConfig};

    fn run_warp_centric(g: &EdgeArray, w: u32) -> (u64, f64) {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = WarpCentricKernel {
            nbr: pre.nbr,
            owner: pre.owner,
            node: pre.node,
            result,
            count: pre.m,
            virtual_warp: w,
            use_texture_cache: true,
        };
        let stats = dev.launch("warp-centric", lc, &kernel).unwrap();
        (dev.peek(&result).iter().sum(), stats.time_s)
    }

    fn run_merge(g: &EdgeArray) -> (u64, f64) {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = CountKernel {
            arrays: KernelArrays::SoA {
                nbr: pre.nbr,
                owner: pre.owner,
            },
            node: pre.node,
            result,
            offset: 0,
            count: pre.m,
            variant: LoopVariant::FinalReadAvoiding,
            use_texture_cache: true,
        };
        let stats = dev.launch("merge", lc, &kernel).unwrap();
        (dev.peek(&result).iter().sum(), stats.time_s)
    }

    fn messy_graph() -> EdgeArray {
        let mut pairs = Vec::new();
        let mut x = 99u64;
        for _ in 0..2500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((x >> 33) % 300) as u32;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((x >> 33) % 300) as u32;
            pairs.push((a, b));
        }
        EdgeArray::from_undirected_pairs(pairs)
    }

    #[test]
    fn counts_match_the_merge_kernel() {
        let g = messy_graph();
        let (merge_count, _) = run_merge(&g);
        for w in [1u32, 2, 4, 8] {
            let (count, _) = run_warp_centric(&g, w);
            assert_eq!(count, merge_count, "virtual warp {w}");
        }
    }

    #[test]
    fn warp_centric_is_not_faster_here() {
        // The paper's §III-D7 negative result: the cooperative kernel's
        // log-factor of extra scattered reads outweighs its intra-edge
        // parallelism on these workloads.
        let g = messy_graph();
        let (_, merge_time) = run_merge(&g);
        let (_, wc_time) = run_warp_centric(&g, 4);
        assert!(
            wc_time > 0.9 * merge_time,
            "warp-centric {wc_time} unexpectedly beats merge {merge_time} decisively"
        );
    }

    #[test]
    fn profiler_counters_expose_the_divergence_overhead() {
        // §III-D7's overhead is visible in the new hardware counters: the
        // cooperative kernel's per-lane binary searches diverge, so the
        // profiler must attribute serialized issue groups to its phase.
        let g = messy_graph();
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = WarpCentricKernel {
            nbr: pre.nbr,
            owner: pre.owner,
            node: pre.node,
            result,
            count: pre.m,
            virtual_warp: 4,
            use_texture_cache: true,
        };
        let stats = dev
            .with_phase("warp-centric", |d| d.launch("warp-centric", lc, &kernel))
            .unwrap();
        assert!(
            stats.serialized_groups > 0,
            "binary-search lanes must diverge"
        );
        assert!(stats.occupancy > 0.0 && stats.occupancy <= 1.0);
        let profile = dev.profile();
        let span = profile.span("warp-centric").expect("span recorded");
        assert_eq!(span.counters.serialized_groups, stats.serialized_groups);
        assert_eq!(span.counters.divergent_steps, stats.divergent_steps);
        assert!(span.achieved_bandwidth_gbs() > 0.0);
    }

    #[test]
    fn works_on_triangle_free_and_tiny_graphs() {
        let square = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(run_warp_centric(&square, 4).0, 0);
        let tri = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(run_warp_centric(&tri, 2).0, 1);
        let empty = EdgeArray::default();
        assert_eq!(run_warp_centric(&empty, 4).0, 0);
    }
}
