//! The virtual warp-centric kernel: a *virtual warp* of `W` lanes
//! cooperates on each edge's intersection, in one of two strategies.
//!
//! [`IntersectStrategy::BinarySearch`] is §III-D7's *unsuccessful*
//! optimization attempt ("we tried the virtual warp-centric method \[10\]…
//! none of these optimizations increased the performance of our
//! implementation, probably due to a high overhead compared to possible
//! gains"): the lanes stride over the shorter endpoint list and each
//! tests its elements against the longer list by binary search. That
//! parallelizes the intersection (the idea Green et al. \[15\] build on)
//! but replaces the merge's ~1 sequential read per element with
//! ~log₂(len) *scattered* reads — exactly the overhead the paper
//! observed. The ablation bench keeps this variant to demonstrate the
//! negative result.
//!
//! [`IntersectStrategy::ChunkScan`] is the balanced scheduler's variant
//! (the workload-balancing line of Hu et al. and TRUST): the `W` lanes
//! coalesce-load a `W`-element chunk of the *longer* list into registers
//! (the chunk's last element reaching every lane by register shuffle),
//! then scan the *shorter* list with lockstep vectorized reads — every
//! lane loads the same `int4`-style quad, so a scan step costs one or two
//! transactions for `4 × W` comparisons. Per edge the memory pipeline
//! sees roughly `short/3 + long/8` transactions instead of the merge's
//! `short + long`, which is what makes the virtual-warp idea profitable
//! after all on the transaction-throughput-bound counting kernel. Counts
//! are exact under both strategies.

use tc_simt::{DeviceBuffer, Effect, Kernel, Lane, MemView};

/// How the `W` lanes of a virtual warp intersect the two adjacency lists.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IntersectStrategy {
    /// §III-D7's attempt: stride the shorter list, binary search the
    /// longer one. Scattered probe reads; the paper's negative result.
    #[default]
    BinarySearch,
    /// The balanced scheduler's strategy: coalesced chunk loads of the
    /// longer list + lockstep broadcast scan of the shorter one.
    ChunkScan,
}

/// Virtual-warp-centric triangle counting.
///
/// Endpoint loads come from `edge_u`/`edge_v` (the preprocessed
/// `owner`/`nbr` pair, or the balanced scheduler's bin-ordered gathered
/// copies); merges and binary searches read the adjacency array `adj`
/// that the `node` array points into.
#[derive(Clone, Copy, Debug)]
pub struct WarpCentricKernel {
    /// Adjacency storage (`node[v] .. node[v+1]` spans vertex `v`'s list).
    pub adj: DeviceBuffer<u32>,
    /// First endpoint per edge.
    pub edge_u: DeviceBuffer<u32>,
    /// Second endpoint per edge.
    pub edge_v: DeviceBuffer<u32>,
    pub node: DeviceBuffer<u32>,
    pub result: DeviceBuffer<u64>,
    /// First edge index of this launch's stripe/bin (0 otherwise).
    pub offset: usize,
    /// Edges in the launch (single GPU: the oriented `m`).
    pub count: usize,
    /// Virtual warp width `W` (lanes cooperating per edge); must divide the
    /// physical warp size.
    pub virtual_warp: u32,
    pub use_texture_cache: bool,
    /// How the virtual warp intersects the two lists.
    pub strategy: IntersectStrategy,
}

impl Kernel for WarpCentricKernel {
    type Lane = WarpCentricLane;

    fn spawn(&self, tid: usize, total: usize) -> WarpCentricLane {
        let w = self.virtual_warp as usize;
        WarpCentricLane {
            k: *self,
            edge: self.offset + tid / w,
            edge_stride: total / w,
            role: (tid % w) as u32,
            tid,
            count: 0,
            phase: Phase::NextEdge,
            u: 0,
            v: 0,
            short_it: 0,
            short_end: 0,
            long_lo: 0,
            long_hi: 0,
            needle: 0,
            bs_lo: 0,
            bs_hi: 0,
            chunk_base: 0,
            chunk_val: 0,
            chunk_last: 0,
            chunk_dead: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    NextEdge,
    LoadEdge2,
    LoadNodeU,
    LoadNodeUEnd,
    LoadNodeV,
    LoadNodeVEnd,
    /// Binary search: load the lane's next element of the shorter list.
    LoadNeedle,
    /// Binary search: one probe over the longer list.
    Probe,
    /// Chunk scan: coalesced load of this lane's element of the longer
    /// list's current `W`-wide chunk (the chunk's last element — the scan
    /// bound — reaches every lane by register shuffle, no extra traffic).
    ChunkLoad,
    /// Chunk scan: lockstep vectorized read (`int4`-style, up to four
    /// elements) of the shorter list; each lane compares the loaded values
    /// against its private chunk element.
    Scan,
    WriteResult,
    Finished,
}

/// One lane of a virtual warp.
pub struct WarpCentricLane {
    k: WarpCentricKernel,
    edge: usize,
    edge_stride: usize,
    role: u32,
    tid: usize,
    count: u64,
    phase: Phase,
    u: u32,
    v: u32,
    /// Cursor over the shorter list (this lane's stripe).
    short_it: u32,
    short_end: u32,
    /// The longer list's bounds.
    long_lo: u32,
    long_hi: u32,
    /// Current element being searched, and the live binary-search window.
    needle: u32,
    bs_lo: u32,
    bs_hi: u32,
    /// Chunk scan: first index of the longer list's current chunk.
    chunk_base: u32,
    /// Chunk scan: this lane's private element of the chunk.
    chunk_val: u32,
    /// Chunk scan: the chunk's last element (scan advance bound).
    chunk_last: u32,
    /// Chunk scan: this lane's chunk slot is past the list end (its
    /// clamped load must not count matches).
    chunk_dead: bool,
}

impl WarpCentricLane {
    #[inline]
    fn read(&self, addr: u64) -> Effect {
        Effect::Read {
            addr,
            bytes: 4,
            cached: self.k.use_texture_cache,
        }
    }
}

impl Lane for WarpCentricLane {
    fn step(&mut self, mem: &MemView<'_>) -> Effect {
        loop {
            match self.phase {
                Phase::NextEdge => {
                    if self.edge >= self.k.offset + self.k.count {
                        self.phase = Phase::WriteResult;
                        continue;
                    }
                    let addr = self.k.edge_u.addr_of(self.edge);
                    self.u = mem.read_u32(addr);
                    self.phase = Phase::LoadEdge2;
                    return self.read(addr);
                }
                Phase::LoadEdge2 => {
                    let addr = self.k.edge_v.addr_of(self.edge);
                    self.v = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeU;
                    return self.read(addr);
                }
                Phase::LoadNodeU => {
                    let addr = self.k.node.addr_of(self.u as usize);
                    self.short_it = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeUEnd;
                    return self.read(addr);
                }
                Phase::LoadNodeUEnd => {
                    let addr = self.k.node.addr_of(self.u as usize + 1);
                    self.short_end = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeV;
                    return self.read(addr);
                }
                Phase::LoadNodeV => {
                    let addr = self.k.node.addr_of(self.v as usize);
                    self.long_lo = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeVEnd;
                    return self.read(addr);
                }
                Phase::LoadNodeVEnd => {
                    let addr = self.k.node.addr_of(self.v as usize + 1);
                    self.long_hi = mem.read_u32(addr);
                    // Walk the shorter list, search/chunk the longer one.
                    if self.long_hi - self.long_lo < self.short_end - self.short_it {
                        std::mem::swap(&mut self.short_it, &mut self.long_lo);
                        std::mem::swap(&mut self.short_end, &mut self.long_hi);
                    }
                    match self.k.strategy {
                        IntersectStrategy::BinarySearch => {
                            // This lane's stripe of the shorter list.
                            self.short_it += self.role;
                            self.phase = Phase::LoadNeedle;
                        }
                        IntersectStrategy::ChunkScan => {
                            // Every lane scans the full shorter list in
                            // lockstep; the chunk walk starts at the
                            // longer list's head.
                            self.chunk_base = self.long_lo;
                            self.phase = Phase::ChunkLoad;
                        }
                    }
                    return self.read(addr);
                }
                Phase::LoadNeedle => {
                    if self.short_it >= self.short_end {
                        self.edge += self.edge_stride;
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    let addr = self.k.adj.addr_of(self.short_it as usize);
                    self.needle = mem.read_u32(addr);
                    self.bs_lo = self.long_lo;
                    self.bs_hi = self.long_hi;
                    self.phase = Phase::Probe;
                    return self.read(addr);
                }
                Phase::Probe => {
                    if self.bs_lo >= self.bs_hi {
                        // Not found; next stripe element.
                        self.short_it += self.k.virtual_warp;
                        self.phase = Phase::LoadNeedle;
                        continue;
                    }
                    let mid = self.bs_lo + (self.bs_hi - self.bs_lo) / 2;
                    let addr = self.k.adj.addr_of(mid as usize);
                    let val = mem.read_u32(addr);
                    match self.needle.cmp(&val) {
                        std::cmp::Ordering::Equal => {
                            self.count += 1;
                            self.short_it += self.k.virtual_warp;
                            self.phase = Phase::LoadNeedle;
                        }
                        std::cmp::Ordering::Less => self.bs_hi = mid,
                        std::cmp::Ordering::Greater => self.bs_lo = mid + 1,
                    }
                    return self.read(addr);
                }
                Phase::ChunkLoad => {
                    if self.chunk_base >= self.long_hi || self.short_it >= self.short_end {
                        // Either list exhausted: no more matches possible.
                        self.edge += self.edge_stride;
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    // The W lanes read W consecutive elements — one or two
                    // coalesced line transactions. Slots past the end clamp
                    // to the last element but must never count a match.
                    let slot = self.chunk_base + self.role;
                    self.chunk_dead = slot >= self.long_hi;
                    let idx = slot.min(self.long_hi - 1);
                    let addr = self.k.adj.addr_of(idx as usize);
                    self.chunk_val = mem.read_u32(addr);
                    // The chunk's last element is the scan's advance bound.
                    // The lane holding it just loaded it, so every other
                    // lane gets it by register shuffle (`__shfl_sync`) —
                    // no extra memory traffic.
                    let last = (self.chunk_base + self.k.virtual_warp).min(self.long_hi) - 1;
                    self.chunk_last = mem.read_u32(self.k.adj.addr_of(last as usize));
                    self.phase = Phase::Scan;
                    return self.read(addr);
                }
                Phase::Scan => {
                    if self.short_it >= self.short_end {
                        self.edge += self.edge_stride;
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    // Lockstep vectorized read: the whole virtual warp loads
                    // the same up-to-four consecutive shorter-list elements
                    // (an `int4`-style load — one effect, one or two line
                    // transactions for `4 × W` comparisons). Adjacency lists
                    // are strictly sorted, so each loaded value is consumed
                    // by exactly one chunk: values `< chunk_last` stay in
                    // this chunk, a value `== chunk_last` is consumed here
                    // and ends the chunk, values above wait for the next.
                    let valid = 4.min(self.short_end - self.short_it);
                    let addr = self.k.adj.addr_of(self.short_it as usize);
                    let mut consumed = 0u32;
                    let mut hit_last = false;
                    for j in 0..valid {
                        let s_val = mem.read_u32(self.k.adj.addr_of((self.short_it + j) as usize));
                        if s_val > self.chunk_last {
                            break;
                        }
                        consumed += 1;
                        if !self.chunk_dead && s_val == self.chunk_val {
                            self.count += 1;
                        }
                        if s_val == self.chunk_last {
                            hit_last = true;
                            break;
                        }
                    }
                    self.short_it += consumed;
                    if consumed < valid || hit_last {
                        // Later shorter-list elements exceed this chunk.
                        self.chunk_base += self.k.virtual_warp;
                        self.phase = Phase::ChunkLoad;
                    }
                    return Effect::Read {
                        addr,
                        bytes: 4 * valid,
                        cached: self.k.use_texture_cache,
                    };
                }
                Phase::WriteResult => {
                    self.phase = Phase::Finished;
                    return Effect::Write {
                        addr: self.k.result.addr_of(self.tid),
                        bytes: 8,
                        value: self.count,
                    };
                }
                Phase::Finished => return Effect::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::count_kernel::{CountKernel, KernelArrays};
    use crate::gpu::preprocess::preprocess_full_gpu;
    use crate::gpu::LoopVariant;
    use tc_graph::EdgeArray;
    use tc_simt::{Device, DeviceConfig, LaunchConfig};

    fn run_warp_centric(g: &EdgeArray, w: u32) -> (u64, f64) {
        run_with_strategy(g, w, IntersectStrategy::BinarySearch)
    }

    fn run_with_strategy(g: &EdgeArray, w: u32, strategy: IntersectStrategy) -> (u64, f64) {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = WarpCentricKernel {
            adj: pre.nbr,
            edge_u: pre.owner,
            edge_v: pre.nbr,
            node: pre.node,
            result,
            offset: 0,
            count: pre.m,
            virtual_warp: w,
            use_texture_cache: true,
            strategy,
        };
        let stats = dev.launch("warp-centric", lc, &kernel).unwrap();
        (dev.peek(&result).iter().sum(), stats.time_s)
    }

    fn run_merge(g: &EdgeArray) -> (u64, f64) {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = CountKernel {
            arrays: KernelArrays::SoA {
                nbr: pre.nbr,
                owner: pre.owner,
            },
            node: pre.node,
            result,
            offset: 0,
            count: pre.m,
            variant: LoopVariant::FinalReadAvoiding,
            use_texture_cache: true,
        };
        let stats = dev.launch("merge", lc, &kernel).unwrap();
        (dev.peek(&result).iter().sum(), stats.time_s)
    }

    fn messy_graph() -> EdgeArray {
        let mut pairs = Vec::new();
        let mut x = 99u64;
        for _ in 0..2500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((x >> 33) % 300) as u32;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((x >> 33) % 300) as u32;
            pairs.push((a, b));
        }
        EdgeArray::from_undirected_pairs(pairs)
    }

    #[test]
    fn counts_match_the_merge_kernel() {
        let g = messy_graph();
        let (merge_count, _) = run_merge(&g);
        for w in [1u32, 2, 4, 8] {
            let (count, _) = run_warp_centric(&g, w);
            assert_eq!(count, merge_count, "virtual warp {w}");
        }
    }

    #[test]
    fn chunk_scan_counts_match_the_merge_kernel() {
        let g = messy_graph();
        let (merge_count, _) = run_merge(&g);
        for w in [2u32, 4, 8, 16, 32] {
            let (count, _) = run_with_strategy(&g, w, IntersectStrategy::ChunkScan);
            assert_eq!(count, merge_count, "virtual warp {w}");
        }
    }

    #[test]
    fn chunk_scan_works_on_degenerate_graphs() {
        // Path (no triangles), single triangle, and a clique whose
        // adjacency lists exercise chunk boundaries at every width.
        let path = EdgeArray::from_undirected_pairs(vec![(0, 1), (1, 2), (2, 3)]);
        let tri = EdgeArray::from_undirected_pairs(vec![(0, 1), (1, 2), (0, 2)]);
        let mut clique = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                clique.push((a, b));
            }
        }
        let clique = EdgeArray::from_undirected_pairs(clique);
        for (g, want) in [(&path, 0u64), (&tri, 1), (&clique, 40 * 39 * 38 / 6)] {
            for w in [2u32, 8, 32] {
                let (count, _) = run_with_strategy(g, w, IntersectStrategy::ChunkScan);
                assert_eq!(count, want, "virtual warp {w}");
            }
        }
    }

    #[test]
    fn warp_centric_is_not_faster_here() {
        // The paper's §III-D7 negative result: the cooperative kernel's
        // log-factor of extra scattered reads outweighs its intra-edge
        // parallelism on these workloads.
        let g = messy_graph();
        let (_, merge_time) = run_merge(&g);
        let (_, wc_time) = run_warp_centric(&g, 4);
        assert!(
            wc_time > 0.9 * merge_time,
            "warp-centric {wc_time} unexpectedly beats merge {merge_time} decisively"
        );
    }

    #[test]
    fn profiler_counters_expose_the_divergence_overhead() {
        // §III-D7's overhead is visible in the new hardware counters: the
        // cooperative kernel's per-lane binary searches diverge, so the
        // profiler must attribute serialized issue groups to its phase.
        let g = messy_graph();
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = WarpCentricKernel {
            adj: pre.nbr,
            edge_u: pre.owner,
            edge_v: pre.nbr,
            node: pre.node,
            result,
            offset: 0,
            count: pre.m,
            virtual_warp: 4,
            use_texture_cache: true,
            strategy: IntersectStrategy::BinarySearch,
        };
        let stats = dev
            .with_phase("warp-centric", |d| d.launch("warp-centric", lc, &kernel))
            .unwrap();
        assert!(
            stats.serialized_groups > 0,
            "binary-search lanes must diverge"
        );
        assert!(stats.occupancy > 0.0 && stats.occupancy <= 1.0);
        let profile = dev.profile();
        let span = profile.span("warp-centric").expect("span recorded");
        assert_eq!(span.counters.serialized_groups, stats.serialized_groups);
        assert_eq!(span.counters.divergent_steps, stats.divergent_steps);
        assert!(span.achieved_bandwidth_gbs() > 0.0);
    }

    #[test]
    fn works_on_triangle_free_and_tiny_graphs() {
        let square = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(run_warp_centric(&square, 4).0, 0);
        let tri = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(run_warp_centric(&tri, 2).0, 1);
        let empty = EdgeArray::default();
        assert_eq!(run_warp_centric(&empty, 4).0, 0);
    }
}
