//! The virtual warp-centric kernel: a *virtual warp* of `W` lanes
//! cooperates on each edge's intersection, in one of two strategies.
//!
//! [`IntersectStrategy::BinarySearch`] is §III-D7's *unsuccessful*
//! optimization attempt ("we tried the virtual warp-centric method \[10\]…
//! none of these optimizations increased the performance of our
//! implementation, probably due to a high overhead compared to possible
//! gains"): the lanes stride over the shorter endpoint list and each
//! tests its elements against the longer list by binary search. That
//! parallelizes the intersection (the idea Green et al. \[15\] build on)
//! but replaces the merge's ~1 sequential read per element with
//! ~log₂(len) *scattered* reads — exactly the overhead the paper
//! observed. The ablation bench keeps this variant to demonstrate the
//! negative result.
//!
//! [`IntersectStrategy::ChunkScan`] is the balanced scheduler's variant
//! (the workload-balancing line of Hu et al. and TRUST): the `W` lanes
//! coalesce-load a `W`-element chunk of the *longer* list into registers
//! (the chunk's last element reaching every lane by register shuffle),
//! then scan the *shorter* list with lockstep vectorized reads — every
//! lane loads the same `int4`-style quad, so a scan step costs one or two
//! transactions for `4 × W` comparisons. Per edge the memory pipeline
//! sees roughly `short/3 + long/8` transactions instead of the merge's
//! `short + long`, which is what makes the virtual-warp idea profitable
//! after all on the transaction-throughput-bound counting kernel.
//!
//! [`IntersectStrategy::Hash`] is the TRUST-style vertex-centric variant
//! (Pandey et al. 2021): the virtual warp builds a power-of-two hash
//! table over the *shorter* list in a per-warp shared-memory scratch
//! window (linear collision chains, load factor ≤ ½), then streams the
//! *longer* list through it with coalesced loads — both lists are
//! consumed at `W` elements per step instead of the chunk scan's
//! lockstep-broadcast 4 per step on the short side. Build inserts,
//! chain-walk reads, and bank conflicts are charged through the shared
//! effects of the cycle model; tables that overflow the per-warp shared
//! budget spill to global scratch (priced through L2/DRAM), and tables
//! that cannot fit the scratch stride at all fall back to the chunk scan
//! for that edge. Consecutive edges sharing a build list reuse the table
//! (the vertex-centric amortization TRUST is named for). Counts are
//! exact under all strategies.

use tc_simt::{
    AccessContract, AffineFootprint, DeviceBuffer, Effect, Interval, Kernel, Lane, LaunchConfig,
    MemView,
};

/// Per-virtual-warp hash-table scratch stride in `u32` slots (16 KB): the
/// static shared-memory window a CUDA build would declare per warp. Tables
/// needing more slots than this fall back to the chunk scan in-kernel.
pub const HASH_TABLE_SLOTS: u32 = 4096;

/// Empty hash slot marker (valid vertex ids are `< u32::MAX`).
const HASH_SENTINEL: u32 = u32::MAX;

/// Hash-bin edges are dealt to virtual warps in runs of this many
/// consecutive edges: long enough that the bin's `(u, v)`-ordered edges
/// sharing a build list land on one warp and amortize the table build,
/// short enough that heavy edges still interleave across warps.
const HASH_RUN: usize = 8;

/// Fibonacci multiplicative hash into `32 − shift` bits.
#[inline]
fn hash_slot(x: u32, shift: u32) -> u32 {
    x.wrapping_mul(0x9E37_79B1) >> shift
}

/// Scratch length in `u32` slots the hash strategy needs for a launch with
/// `total_threads` active threads at virtual-warp width `virtual_warp`:
/// one [`HASH_TABLE_SLOTS`]-slot window per virtual warp.
pub fn hash_scratch_len(total_threads: usize, virtual_warp: u32) -> usize {
    (total_threads / virtual_warp.max(1) as usize) * HASH_TABLE_SLOTS as usize
}

/// How many of a virtual warp's scratch slots fit on-chip for a launch:
/// the per-block shared-memory budget divided evenly among the block's
/// virtual warps, capped at the scratch stride. Tables larger than this
/// spill to global scratch (modeled through L2/DRAM).
pub fn hash_shared_slots(
    cfg: &tc_simt::DeviceConfig,
    threads_per_block: u32,
    virtual_warp: u32,
) -> u32 {
    let vwarps = (threads_per_block / virtual_warp.max(1)).max(1);
    (cfg.shared_mem_per_block_bytes / vwarps / 4).min(HASH_TABLE_SLOTS)
}

/// How the `W` lanes of a virtual warp intersect the two adjacency lists.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IntersectStrategy {
    /// §III-D7's attempt: stride the shorter list, binary search the
    /// longer one. Scattered probe reads; the paper's negative result.
    #[default]
    BinarySearch,
    /// The balanced scheduler's strategy: coalesced chunk loads of the
    /// longer list + lockstep broadcast scan of the shorter one.
    ChunkScan,
    /// TRUST-style: build a shared-memory hash table over the shorter
    /// list, stream the longer list through it. Requires
    /// [`WarpCentricKernel::scratch`].
    Hash,
}

/// Virtual-warp-centric triangle counting.
///
/// Endpoint loads come from `edge_u`/`edge_v` (the preprocessed
/// `owner`/`nbr` pair, or the balanced scheduler's bin-ordered gathered
/// copies); merges and binary searches read the adjacency array `adj`
/// that the `node` array points into.
#[derive(Clone, Copy, Debug)]
pub struct WarpCentricKernel {
    /// Adjacency storage (`node[v] .. node[v+1]` spans vertex `v`'s list).
    pub adj: DeviceBuffer<u32>,
    /// First endpoint per edge.
    pub edge_u: DeviceBuffer<u32>,
    /// Second endpoint per edge.
    pub edge_v: DeviceBuffer<u32>,
    pub node: DeviceBuffer<u32>,
    pub result: DeviceBuffer<u64>,
    /// First edge index of this launch's stripe/bin (0 otherwise).
    pub offset: usize,
    /// Edges in the launch (single GPU: the oriented `m`).
    pub count: usize,
    /// Virtual warp width `W` (lanes cooperating per edge); must divide the
    /// physical warp size.
    pub virtual_warp: u32,
    pub use_texture_cache: bool,
    /// How the virtual warp intersects the two lists.
    pub strategy: IntersectStrategy,
    /// Hash strategy only: global scratch backing every virtual warp's
    /// [`HASH_TABLE_SLOTS`]-slot table window (warp `i` owns slots
    /// `i * HASH_TABLE_SLOTS ..`). The sanitizer checks table accesses
    /// against this buffer's bounds.
    pub scratch: Option<DeviceBuffer<u32>>,
    /// Hash strategy only: how many of a warp's scratch slots fit the
    /// per-block shared-memory budget. Larger tables (up to the stride)
    /// spill to global scratch through L2/DRAM.
    pub shared_slots: u32,
}

impl Kernel for WarpCentricKernel {
    type Lane = WarpCentricLane;

    fn contract(&self, lc: LaunchConfig, total: usize) -> Option<AccessContract> {
        let w = self.virtual_warp.max(1);
        let reads = vec![
            Interval::bytes(self.node.addr(), self.node.byte_len()),
            Interval::bytes(self.adj.addr(), self.adj.byte_len()),
            Interval::bytes(
                self.edge_u.addr() + self.offset as u64 * 4,
                self.count as u64 * 4,
            ),
            Interval::bytes(
                self.edge_v.addr() + self.offset as u64 * 4,
                self.count as u64 * 4,
            ),
        ];
        // Each lane writes exactly its own 8-byte result cell, once.
        let writes = vec![AffineFootprint::per_lane(
            self.result.addr(),
            8,
            total as u64,
        )];
        // Hash strategy: the virtual warps share HASH_TABLE_SLOTS-slot
        // scratch windows — disjoint across warps, cooperatively written
        // within one. Its on-chip portion claims the per-block shared
        // budget (the spilled remainder travels L2/DRAM instead).
        let mut scratch = Vec::new();
        let mut shared_bytes_per_block = 0;
        if let Some(s) = self.scratch {
            let window = HASH_TABLE_SLOTS as u64 * 4;
            scratch.push(AffineFootprint {
                base: s.addr(),
                stride: window,
                span: window,
                groups: (total as u64) / w as u64,
                lanes_per_group: w,
                disjoint: true,
            });
            let vwarps_per_block = (lc.threads_per_block / w).max(1) as u64;
            shared_bytes_per_block =
                vwarps_per_block * self.shared_slots.min(HASH_TABLE_SLOTS) as u64 * 4;
        }
        Some(AccessContract {
            reads,
            writes,
            scratch,
            shared_bytes_per_block,
        })
    }

    fn spawn(&self, tid: usize, total: usize) -> WarpCentricLane {
        let w = self.virtual_warp as usize;
        let vw = tid / w;
        let hash = self.strategy == IntersectStrategy::Hash;
        WarpCentricLane {
            k: *self,
            // Hash bins deal edges in HASH_RUN-long runs round-robin over
            // the virtual warps (build-list amortization); the other
            // strategies grid-stride one edge at a time.
            edge: if hash {
                self.offset + vw * HASH_RUN
            } else {
                self.offset + vw
            },
            edge_stride: total / w,
            role: (tid % w) as u32,
            tid,
            count: 0,
            phase: Phase::NextEdge,
            u: 0,
            v: 0,
            short_it: 0,
            short_end: 0,
            long_lo: 0,
            long_hi: 0,
            needle: 0,
            bs_lo: 0,
            bs_hi: 0,
            chunk_base: 0,
            chunk_val: 0,
            chunk_last: 0,
            chunk_dead: false,
            run_block: vw,
            run_off: 0,
            table: Vec::new(),
            walks: Vec::new(),
            built_span: (u32::MAX, u32::MAX),
            table_mask: 0,
            table_shift: 0,
            table_spilled: false,
            scratch_base: self
                .scratch
                .map(|s| s.addr_of(vw * HASH_TABLE_SLOTS as usize))
                .unwrap_or(0),
            hb_round: 0,
            hb_rounds: 0,
            hb_active: false,
            hb_x: 0,
            walk_slot: 0,
            walk_len: 0,
            pr_round: 0,
            pr_rounds: 0,
            pr_active: false,
            probe_found: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    NextEdge,
    LoadEdge2,
    LoadNodeU,
    LoadNodeUEnd,
    LoadNodeV,
    LoadNodeVEnd,
    /// Binary search: load the lane's next element of the shorter list.
    LoadNeedle,
    /// Binary search: one probe over the longer list.
    Probe,
    /// Chunk scan: coalesced load of this lane's element of the longer
    /// list's current `W`-wide chunk (the chunk's last element — the scan
    /// bound — reaches every lane by register shuffle, no extra traffic).
    ChunkLoad,
    /// Chunk scan: lockstep vectorized read (`int4`-style, up to four
    /// elements) of the shorter list; each lane compares the loaded values
    /// against its private chunk element.
    Scan,
    /// Hash: coalesced load of this lane's next build element of the
    /// shorter list.
    HashBuildLoad,
    /// Hash: charge the insert's chain walk over consecutive table slots.
    HashBuildWalk,
    /// Hash: store the element into its final slot.
    HashBuildInsert,
    /// Hash: coalesced load of this lane's next probe element of the
    /// longer list.
    HashProbeLoad,
    /// Hash: charge the probe's chain walk (ends at a match or an empty
    /// slot).
    HashProbeWalk,
    WriteResult,
    Finished,
}

/// One lane of a virtual warp.
pub struct WarpCentricLane {
    k: WarpCentricKernel,
    edge: usize,
    edge_stride: usize,
    role: u32,
    tid: usize,
    count: u64,
    phase: Phase,
    u: u32,
    v: u32,
    /// Cursor over the shorter list (this lane's stripe).
    short_it: u32,
    short_end: u32,
    /// The longer list's bounds.
    long_lo: u32,
    long_hi: u32,
    /// Current element being searched, and the live binary-search window.
    needle: u32,
    bs_lo: u32,
    bs_hi: u32,
    /// Chunk scan: first index of the longer list's current chunk.
    chunk_base: u32,
    /// Chunk scan: this lane's private element of the chunk.
    chunk_val: u32,
    /// Chunk scan: the chunk's last element (scan advance bound).
    chunk_last: u32,
    /// Chunk scan: this lane's chunk slot is past the list end (its
    /// clamped load must not count matches).
    chunk_dead: bool,
    /// Hash: current run block (run-of-[`HASH_RUN`] index) and offset
    /// within it.
    run_block: usize,
    run_off: usize,
    /// Hash: this lane's functional copy of the virtual warp's table
    /// (every lane of a warp builds the same table deterministically, so
    /// per-lane copies stay identical — the simulator's stand-in for
    /// actually shared storage).
    table: Vec<u32>,
    /// Hash: per-build-element chain-walk lengths, indexed by position in
    /// the build list.
    walks: Vec<u32>,
    /// Hash: the adjacency span the current table was built over
    /// (`(u32::MAX, u32::MAX)` = none). Matching spans reuse the table.
    built_span: (u32, u32),
    table_mask: u32,
    table_shift: u32,
    /// Hash: current table exceeds the shared budget and lives in global
    /// scratch.
    table_spilled: bool,
    /// Hash: device address of this virtual warp's scratch window.
    scratch_base: u64,
    /// Hash: build round cursor and total build rounds (`ceil(s / W)`) —
    /// identical across the virtual warp's lanes, which is what keeps the
    /// warp's phases lockstep (and its loads coalesced) even when chain
    /// lengths differ per lane.
    hb_round: u32,
    hb_rounds: u32,
    /// Hash: whether this lane holds a real element in the current round
    /// (lanes past the list end are predicated off and burn issue slots).
    hb_active: bool,
    hb_x: u32,
    /// Hash: the pending chain walk — start slot and this lane's own
    /// length. Charged as a single shared access per round regardless of
    /// length; the bank-conflict degree models the serialization.
    walk_slot: u32,
    walk_len: u32,
    /// Hash: probe round cursor, total probe rounds (`ceil(l / W)`),
    /// predication, and the pending probe outcome.
    pr_round: u32,
    pr_rounds: u32,
    pr_active: bool,
    probe_found: bool,
}

impl WarpCentricLane {
    #[inline]
    fn read(&self, addr: u64) -> Effect {
        Effect::Read {
            addr,
            bytes: 4,
            cached: self.k.use_texture_cache,
        }
    }

    /// Advance to this lane's next edge: grid stride normally, run-blocked
    /// dealing under the hash strategy.
    #[inline]
    fn advance_edge(&mut self) {
        if self.k.strategy == IntersectStrategy::Hash {
            self.run_off += 1;
            if self.run_off == HASH_RUN {
                self.run_off = 0;
                self.run_block += self.edge_stride;
            }
            self.edge = self.k.offset + self.run_block * HASH_RUN + self.run_off;
        } else {
            self.edge += self.edge_stride;
        }
    }

    /// Decide how the hash strategy handles the current edge and set the
    /// next phase: build (or reuse) a table over `short_it..short_end`,
    /// or fall back to the chunk scan when the table cannot fit the
    /// scratch stride. Functional table construction happens here with
    /// free reads; the build phases replay this lane's stripe of it as
    /// charged effects.
    fn hash_setup(&mut self, mem: &MemView<'_>) {
        let s = self.short_end - self.short_it;
        if s == 0 {
            self.advance_edge();
            self.phase = Phase::NextEdge;
            return;
        }
        let slots = (2 * s).next_power_of_two().max(8);
        if slots > HASH_TABLE_SLOTS {
            // Too big for the scratch window: chunk-scan this edge.
            self.chunk_base = self.long_lo;
            self.phase = Phase::ChunkLoad;
            return;
        }
        let w = self.k.virtual_warp;
        self.pr_round = 0;
        self.pr_rounds = (self.long_hi - self.long_lo).div_ceil(w);
        if self.built_span == (self.short_it, self.short_end) {
            // Same build list as the previous edge: reuse the table
            // (vertex-centric amortization), skip straight to probing.
            self.phase = Phase::HashProbeLoad;
            return;
        }
        self.built_span = (self.short_it, self.short_end);
        self.table_mask = slots - 1;
        self.table_shift = 32 - slots.trailing_zeros();
        self.table_spilled = slots > self.k.shared_slots;
        self.table.clear();
        self.table.resize(slots as usize, HASH_SENTINEL);
        self.walks.clear();
        for i in self.short_it..self.short_end {
            let x = mem.read_u32(self.k.adj.addr_of(i as usize));
            let mut slot = hash_slot(x, self.table_shift);
            let mut len = 1u32;
            while self.table[slot as usize] != HASH_SENTINEL {
                slot = (slot + 1) & self.table_mask;
                len += 1;
            }
            self.table[slot as usize] = x;
            self.walks.push(len);
        }
        self.hb_round = 0;
        self.hb_rounds = s.div_ceil(w);
        self.phase = Phase::HashBuildLoad;
    }

    /// Probe the functional table for `y`: chain-walk length and whether
    /// it is present.
    fn hash_probe(&self, y: u32) -> (u32, bool) {
        let mut slot = hash_slot(y, self.table_shift);
        let mut len = 1u32;
        loop {
            let t = self.table[slot as usize];
            if t == y {
                return (len, true);
            }
            if t == HASH_SENTINEL {
                return (len, false);
            }
            slot = (slot + 1) & self.table_mask;
            len += 1;
        }
    }

    /// Charge the pending chain walk: one shared access over the chain's
    /// consecutive slots (the rare piece wrapping past the table end is
    /// dropped rather than split, so every lane's walk is exactly one
    /// step and the warp stays lockstep). The bank-conflict degree of the
    /// multi-word access is what serializes long chains.
    fn walk_effect(&self) -> Effect {
        let slots = self.table_mask + 1;
        let contiguous = self.walk_len.min(slots - self.walk_slot).max(1);
        Effect::SharedRead {
            addr: self.scratch_base + self.walk_slot as u64 * 4,
            bytes: 4 * contiguous,
            spilled: self.table_spilled,
        }
    }
}

impl Lane for WarpCentricLane {
    fn step(&mut self, mem: &MemView<'_>) -> Effect {
        loop {
            match self.phase {
                Phase::NextEdge => {
                    if self.edge >= self.k.offset + self.k.count {
                        self.phase = Phase::WriteResult;
                        continue;
                    }
                    let addr = self.k.edge_u.addr_of(self.edge);
                    self.u = mem.read_u32(addr);
                    self.phase = Phase::LoadEdge2;
                    return self.read(addr);
                }
                Phase::LoadEdge2 => {
                    let addr = self.k.edge_v.addr_of(self.edge);
                    self.v = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeU;
                    return self.read(addr);
                }
                Phase::LoadNodeU => {
                    let addr = self.k.node.addr_of(self.u as usize);
                    self.short_it = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeUEnd;
                    return self.read(addr);
                }
                Phase::LoadNodeUEnd => {
                    let addr = self.k.node.addr_of(self.u as usize + 1);
                    self.short_end = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeV;
                    return self.read(addr);
                }
                Phase::LoadNodeV => {
                    let addr = self.k.node.addr_of(self.v as usize);
                    self.long_lo = mem.read_u32(addr);
                    self.phase = Phase::LoadNodeVEnd;
                    return self.read(addr);
                }
                Phase::LoadNodeVEnd => {
                    let addr = self.k.node.addr_of(self.v as usize + 1);
                    self.long_hi = mem.read_u32(addr);
                    // Walk the shorter list, search/chunk the longer one.
                    if self.long_hi - self.long_lo < self.short_end - self.short_it {
                        std::mem::swap(&mut self.short_it, &mut self.long_lo);
                        std::mem::swap(&mut self.short_end, &mut self.long_hi);
                    }
                    match self.k.strategy {
                        IntersectStrategy::BinarySearch => {
                            // This lane's stripe of the shorter list.
                            self.short_it += self.role;
                            self.phase = Phase::LoadNeedle;
                        }
                        IntersectStrategy::ChunkScan => {
                            // Every lane scans the full shorter list in
                            // lockstep; the chunk walk starts at the
                            // longer list's head.
                            self.chunk_base = self.long_lo;
                            self.phase = Phase::ChunkLoad;
                        }
                        IntersectStrategy::Hash => self.hash_setup(mem),
                    }
                    return self.read(addr);
                }
                Phase::LoadNeedle => {
                    if self.short_it >= self.short_end {
                        self.advance_edge();
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    let addr = self.k.adj.addr_of(self.short_it as usize);
                    self.needle = mem.read_u32(addr);
                    self.bs_lo = self.long_lo;
                    self.bs_hi = self.long_hi;
                    self.phase = Phase::Probe;
                    return self.read(addr);
                }
                Phase::Probe => {
                    if self.bs_lo >= self.bs_hi {
                        // Not found; next stripe element.
                        self.short_it += self.k.virtual_warp;
                        self.phase = Phase::LoadNeedle;
                        continue;
                    }
                    let mid = self.bs_lo + (self.bs_hi - self.bs_lo) / 2;
                    let addr = self.k.adj.addr_of(mid as usize);
                    let val = mem.read_u32(addr);
                    match self.needle.cmp(&val) {
                        std::cmp::Ordering::Equal => {
                            self.count += 1;
                            self.short_it += self.k.virtual_warp;
                            self.phase = Phase::LoadNeedle;
                        }
                        std::cmp::Ordering::Less => self.bs_hi = mid,
                        std::cmp::Ordering::Greater => self.bs_lo = mid + 1,
                    }
                    return self.read(addr);
                }
                Phase::ChunkLoad => {
                    if self.chunk_base >= self.long_hi || self.short_it >= self.short_end {
                        // Either list exhausted: no more matches possible.
                        self.advance_edge();
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    // The W lanes read W consecutive elements — one or two
                    // coalesced line transactions. Slots past the end clamp
                    // to the last element but must never count a match.
                    let slot = self.chunk_base + self.role;
                    self.chunk_dead = slot >= self.long_hi;
                    let idx = slot.min(self.long_hi - 1);
                    let addr = self.k.adj.addr_of(idx as usize);
                    self.chunk_val = mem.read_u32(addr);
                    // The chunk's last element is the scan's advance bound.
                    // The lane holding it just loaded it, so every other
                    // lane gets it by register shuffle (`__shfl_sync`) —
                    // no extra memory traffic.
                    let last = (self.chunk_base + self.k.virtual_warp).min(self.long_hi) - 1;
                    self.chunk_last = mem.read_u32(self.k.adj.addr_of(last as usize));
                    self.phase = Phase::Scan;
                    return self.read(addr);
                }
                Phase::Scan => {
                    if self.short_it >= self.short_end {
                        self.advance_edge();
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    // Lockstep vectorized read: the whole virtual warp loads
                    // the same up-to-four consecutive shorter-list elements
                    // (an `int4`-style load — one effect, one or two line
                    // transactions for `4 × W` comparisons). Adjacency lists
                    // are strictly sorted, so each loaded value is consumed
                    // by exactly one chunk: values `< chunk_last` stay in
                    // this chunk, a value `== chunk_last` is consumed here
                    // and ends the chunk, values above wait for the next.
                    let valid = 4.min(self.short_end - self.short_it);
                    let addr = self.k.adj.addr_of(self.short_it as usize);
                    let mut consumed = 0u32;
                    let mut hit_last = false;
                    for j in 0..valid {
                        let s_val = mem.read_u32(self.k.adj.addr_of((self.short_it + j) as usize));
                        if s_val > self.chunk_last {
                            break;
                        }
                        consumed += 1;
                        if !self.chunk_dead && s_val == self.chunk_val {
                            self.count += 1;
                        }
                        if s_val == self.chunk_last {
                            hit_last = true;
                            break;
                        }
                    }
                    self.short_it += consumed;
                    if consumed < valid || hit_last {
                        // Later shorter-list elements exceed this chunk.
                        self.chunk_base += self.k.virtual_warp;
                        self.phase = Phase::ChunkLoad;
                    }
                    return Effect::Read {
                        addr,
                        bytes: 4 * valid,
                        cached: self.k.use_texture_cache,
                    };
                }
                Phase::HashBuildLoad => {
                    if self.hb_round >= self.hb_rounds {
                        self.phase = Phase::HashProbeLoad;
                        continue;
                    }
                    // Coalesced: in round `r` lane `role` loads build
                    // element `short_it + r·W + role` — consecutive
                    // addresses across the virtual warp. Lanes past the
                    // list end stay predicated off for the whole round so
                    // the warp's step count (and hence its coalescing)
                    // never drifts.
                    let i = self.short_it + self.hb_round * self.k.virtual_warp + self.role;
                    self.phase = Phase::HashBuildWalk;
                    if i >= self.short_end {
                        self.hb_active = false;
                        return Effect::Compute { cycles: 1 };
                    }
                    self.hb_active = true;
                    let addr = self.k.adj.addr_of(i as usize);
                    self.hb_x = mem.read_u32(addr);
                    self.walk_slot = hash_slot(self.hb_x, self.table_shift);
                    self.walk_len = self.walks[(i - self.short_it) as usize];
                    return self.read(addr);
                }
                Phase::HashBuildWalk => {
                    self.phase = Phase::HashBuildInsert;
                    if !self.hb_active {
                        return Effect::Compute { cycles: 1 };
                    }
                    return self.walk_effect();
                }
                Phase::HashBuildInsert => {
                    self.hb_round += 1;
                    self.phase = Phase::HashBuildLoad;
                    if !self.hb_active {
                        return Effect::Compute { cycles: 1 };
                    }
                    // The element's final slot: chain start advanced by
                    // the walk length, circularly.
                    let slot = (self.walk_slot + self.walk_len).wrapping_sub(1) & self.table_mask;
                    return Effect::SharedWrite {
                        addr: self.scratch_base + slot as u64 * 4,
                        bytes: 4,
                        value: self.hb_x as u64,
                        spilled: self.table_spilled,
                    };
                }
                Phase::HashProbeLoad => {
                    if self.pr_round >= self.pr_rounds {
                        self.advance_edge();
                        self.phase = Phase::NextEdge;
                        continue;
                    }
                    let i = self.long_lo + self.pr_round * self.k.virtual_warp + self.role;
                    self.phase = Phase::HashProbeWalk;
                    if i >= self.long_hi {
                        self.pr_active = false;
                        return Effect::Compute { cycles: 1 };
                    }
                    self.pr_active = true;
                    let addr = self.k.adj.addr_of(i as usize);
                    let y = mem.read_u32(addr);
                    let (len, found) = self.hash_probe(y);
                    self.walk_slot = hash_slot(y, self.table_shift);
                    self.walk_len = len;
                    self.probe_found = found;
                    return self.read(addr);
                }
                Phase::HashProbeWalk => {
                    self.pr_round += 1;
                    self.phase = Phase::HashProbeLoad;
                    if !self.pr_active {
                        return Effect::Compute { cycles: 1 };
                    }
                    if self.probe_found {
                        self.count += 1;
                    }
                    return self.walk_effect();
                }
                Phase::WriteResult => {
                    self.phase = Phase::Finished;
                    return Effect::Write {
                        addr: self.k.result.addr_of(self.tid),
                        bytes: 8,
                        value: self.count,
                    };
                }
                Phase::Finished => return Effect::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::count_kernel::{CountKernel, KernelArrays};
    use crate::gpu::preprocess::preprocess_full_gpu;
    use crate::gpu::LoopVariant;
    use tc_graph::EdgeArray;
    use tc_simt::{Device, DeviceConfig, LaunchConfig};

    fn run_warp_centric(g: &EdgeArray, w: u32) -> (u64, f64) {
        run_with_strategy(g, w, IntersectStrategy::BinarySearch)
    }

    fn run_with_strategy(g: &EdgeArray, w: u32, strategy: IntersectStrategy) -> (u64, f64) {
        let (count, stats) = run_with_strategy_slots(g, w, strategy, HASH_TABLE_SLOTS);
        (count, stats.time_s)
    }

    fn run_with_strategy_slots(
        g: &EdgeArray,
        w: u32,
        strategy: IntersectStrategy,
        shared_slots: u32,
    ) -> (u64, tc_simt::KernelStats) {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let scratch = (strategy == IntersectStrategy::Hash)
            .then(|| dev.alloc::<u32>(hash_scratch_len(total, w)).unwrap());
        let kernel = WarpCentricKernel {
            adj: pre.nbr,
            edge_u: pre.owner,
            edge_v: pre.nbr,
            node: pre.node,
            result,
            offset: 0,
            count: pre.m,
            virtual_warp: w,
            use_texture_cache: true,
            strategy,
            scratch,
            shared_slots,
        };
        let stats = dev.launch("warp-centric", lc, &kernel).unwrap();
        (dev.peek(&result).iter().sum(), stats)
    }

    fn run_merge(g: &EdgeArray) -> (u64, f64) {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = CountKernel {
            arrays: KernelArrays::SoA {
                nbr: pre.nbr,
                owner: pre.owner,
            },
            node: pre.node,
            result,
            offset: 0,
            count: pre.m,
            variant: LoopVariant::FinalReadAvoiding,
            use_texture_cache: true,
        };
        let stats = dev.launch("merge", lc, &kernel).unwrap();
        (dev.peek(&result).iter().sum(), stats.time_s)
    }

    fn messy_graph() -> EdgeArray {
        let mut pairs = Vec::new();
        let mut x = 99u64;
        for _ in 0..2500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((x >> 33) % 300) as u32;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((x >> 33) % 300) as u32;
            pairs.push((a, b));
        }
        EdgeArray::from_undirected_pairs(pairs)
    }

    #[test]
    fn counts_match_the_merge_kernel() {
        let g = messy_graph();
        let (merge_count, _) = run_merge(&g);
        for w in [1u32, 2, 4, 8] {
            let (count, _) = run_warp_centric(&g, w);
            assert_eq!(count, merge_count, "virtual warp {w}");
        }
    }

    #[test]
    fn chunk_scan_counts_match_the_merge_kernel() {
        let g = messy_graph();
        let (merge_count, _) = run_merge(&g);
        for w in [2u32, 4, 8, 16, 32] {
            let (count, _) = run_with_strategy(&g, w, IntersectStrategy::ChunkScan);
            assert_eq!(count, merge_count, "virtual warp {w}");
        }
    }

    #[test]
    fn chunk_scan_works_on_degenerate_graphs() {
        // Path (no triangles), single triangle, and a clique whose
        // adjacency lists exercise chunk boundaries at every width.
        let path = EdgeArray::from_undirected_pairs(vec![(0, 1), (1, 2), (2, 3)]);
        let tri = EdgeArray::from_undirected_pairs(vec![(0, 1), (1, 2), (0, 2)]);
        let mut clique = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                clique.push((a, b));
            }
        }
        let clique = EdgeArray::from_undirected_pairs(clique);
        for (g, want) in [(&path, 0u64), (&tri, 1), (&clique, 40 * 39 * 38 / 6)] {
            for w in [2u32, 8, 32] {
                let (count, _) = run_with_strategy(g, w, IntersectStrategy::ChunkScan);
                assert_eq!(count, want, "virtual warp {w}");
            }
        }
    }

    #[test]
    fn hash_counts_match_the_merge_kernel() {
        let g = messy_graph();
        let (merge_count, _) = run_merge(&g);
        for w in [4u32, 8, 16, 32] {
            let (count, stats) =
                run_with_strategy_slots(&g, w, IntersectStrategy::Hash, HASH_TABLE_SLOTS);
            assert_eq!(count, merge_count, "virtual warp {w}");
            assert!(stats.shared_accesses > 0, "hash must hit shared memory");
        }
    }

    #[test]
    fn hash_works_on_degenerate_graphs() {
        let path = EdgeArray::from_undirected_pairs(vec![(0, 1), (1, 2), (2, 3)]);
        let tri = EdgeArray::from_undirected_pairs(vec![(0, 1), (1, 2), (0, 2)]);
        let mut clique = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                clique.push((a, b));
            }
        }
        let clique = EdgeArray::from_undirected_pairs(clique);
        let empty = EdgeArray::default();
        for (g, want) in [
            (&path, 0u64),
            (&tri, 1),
            (&clique, 40 * 39 * 38 / 6),
            (&empty, 0),
        ] {
            for w in [8u32, 32] {
                let (count, _) =
                    run_with_strategy_slots(g, w, IntersectStrategy::Hash, HASH_TABLE_SLOTS);
                assert_eq!(count, want, "virtual warp {w}");
            }
        }
    }

    #[test]
    fn hash_spilled_tables_stay_exact_and_cost_global_traffic() {
        // Force nearly every table past a tiny shared budget: counts must
        // not change, but the spilled chain walks now travel the global
        // path (transactions) instead of the shared banks.
        let g = messy_graph();
        let (merge_count, _) = run_merge(&g);
        let (on_chip, fits) =
            run_with_strategy_slots(&g, 32, IntersectStrategy::Hash, HASH_TABLE_SLOTS);
        let (spilled, spills) = run_with_strategy_slots(&g, 32, IntersectStrategy::Hash, 8);
        assert_eq!(on_chip, merge_count);
        assert_eq!(spilled, merge_count);
        assert!(
            spills.shared_accesses < fits.shared_accesses,
            "spilled run must demote shared accesses ({} vs {})",
            spills.shared_accesses,
            fits.shared_accesses
        );
        assert!(
            spills.transactions > fits.transactions,
            "spilled walks must show up as global transactions"
        );
    }

    #[test]
    fn hash_beats_chunk_scan_on_skewed_lists() {
        // The tentpole's reason to exist: on long-list edges the hash
        // probe consumes both lists at W elements per lockstep round,
        // where the chunk scan broadcasts only 4 shorter-list elements
        // per round. A clique maximizes long intersections.
        let mut clique = Vec::new();
        for a in 0..120u32 {
            for b in (a + 1)..120 {
                clique.push((a, b));
            }
        }
        let g = EdgeArray::from_undirected_pairs(clique);
        let (chunk_count, chunk) =
            run_with_strategy_slots(&g, 32, IntersectStrategy::ChunkScan, HASH_TABLE_SLOTS);
        let (hash_count, hash) =
            run_with_strategy_slots(&g, 32, IntersectStrategy::Hash, HASH_TABLE_SLOTS);
        assert_eq!(hash_count, chunk_count);
        assert!(
            hash.time_s < chunk.time_s,
            "hash {} should beat chunk scan {} on a clique",
            hash.time_s,
            chunk.time_s
        );
    }

    #[test]
    fn warp_centric_is_not_faster_here() {
        // The paper's §III-D7 negative result: the cooperative kernel's
        // log-factor of extra scattered reads outweighs its intra-edge
        // parallelism on these workloads.
        let g = messy_graph();
        let (_, merge_time) = run_merge(&g);
        let (_, wc_time) = run_warp_centric(&g, 4);
        assert!(
            wc_time > 0.9 * merge_time,
            "warp-centric {wc_time} unexpectedly beats merge {merge_time} decisively"
        );
    }

    #[test]
    fn profiler_counters_expose_the_divergence_overhead() {
        // §III-D7's overhead is visible in the new hardware counters: the
        // cooperative kernel's per-lane binary searches diverge, so the
        // profiler must attribute serialized issue groups to its phase.
        let g = messy_graph();
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        let lc = LaunchConfig::new(16, 64);
        let total = lc.active_threads(32);
        let result = dev.alloc::<u64>(total).unwrap();
        dev.poke(&result, &vec![0u64; total]);
        let kernel = WarpCentricKernel {
            adj: pre.nbr,
            edge_u: pre.owner,
            edge_v: pre.nbr,
            node: pre.node,
            result,
            offset: 0,
            count: pre.m,
            virtual_warp: 4,
            use_texture_cache: true,
            strategy: IntersectStrategy::BinarySearch,
            scratch: None,
            shared_slots: 0,
        };
        let stats = dev
            .with_phase("warp-centric", |d| d.launch("warp-centric", lc, &kernel))
            .unwrap();
        assert!(
            stats.serialized_groups > 0,
            "binary-search lanes must diverge"
        );
        assert!(stats.occupancy > 0.0 && stats.occupancy <= 1.0);
        let profile = dev.profile();
        let span = profile.span("warp-centric").expect("span recorded");
        assert_eq!(span.counters.serialized_groups, stats.serialized_groups);
        assert_eq!(span.counters.divergent_steps, stats.divergent_steps);
        assert!(span.achieved_bandwidth_gbs() > 0.0);
    }

    #[test]
    fn works_on_triangle_free_and_tiny_graphs() {
        let square = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(run_warp_centric(&square, 4).0, 0);
        let tri = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(run_warp_centric(&tri, 2).0, 1);
        let empty = EdgeArray::default();
        assert_eq!(run_warp_centric(&empty, 4).0, 0);
    }
}
