//! The preprocessing phase (§III-B) and its CPU fallback (§III-D6).
//!
//! Eight steps on the device:
//!
//! 1. copy the edge array to device memory (arcs packed `(u << 32) | v`;
//!    the paper packs pairs into 64-bit values too, §III-D2);
//! 2. vertex count = max identifier + 1, via `thrust::reduce(max)`;
//! 3. radix-sort the packed arcs — the peak-memory step;
//! 4. build the node array by boundary detection;
//! 5. mark arcs going from higher- to lower-degree endpoints (ties on id);
//! 6. `thrust::remove_if` compacts the forward arcs (exactly m̂ survive);
//! 7. unzip into structure-of-arrays;
//! 8. rebuild the node array over the compacted arcs.
//!
//! When the device cannot hold the doubled edge array *plus* the sort's
//! double buffer, [`preprocess_auto`] falls back to §III-D6: the host
//! computes degrees and drops backward arcs (halving what the device must
//! hold) and only sorting/unzipping/node-building run on the device. The
//! host part is charged with a deterministic cost model (a single-threaded
//! streaming pass at [`HOST_PREPROCESS_NS_PER_ARC`]) rather than a live
//! stopwatch, so † rows — like all simulated times — are bit-reproducible
//! across runs and hosts; the paper's observation survives either way (the
//! fallback "runs slower than on the GPU but halves the input size").
//!
//! # Degree-descending reordering (TRUST-style)
//!
//! Both paths accept a `reorder` flag that inserts a relabeling pass
//! *before* orientation: every vertex is ranked by (descending undirected
//! degree, ascending id) and the arcs are rewritten in terms of the ranks.
//! Degrees are invariant under a relabeling and the rank order breaks ties
//! exactly like the original ids, so the oriented graph is the isomorphic
//! image of the unreordered one — triangle counts cannot change, only the
//! memory layout does: hub adjacency lists move to the front of the
//! neighbour array, concentrating the hot probe range for the cache
//! hierarchy. The inverse permutation (`relabel[new] = old`) rides along in
//! [`Preprocessed::relabel`] so any per-vertex output can be mapped back to
//! the input labels, keeping reported results identical to unreordered
//! runs. The rank sort reuses the same on-device `sort_u64` radix machinery
//! as the arc sort and every pass is charged through the cycle model.

use tc_graph::EdgeArray;
use tc_simt::primitives::{
    charge_transform_pass, compact_marked_u64, group_boundaries, mark_if_u64, reduce_map_max_u64,
    sort_u64, unzip_u64,
};
use tc_simt::{Device, DeviceBuffer, SimtError};

use crate::error::CoreError;

/// Output of preprocessing: everything the counting kernel needs.
#[derive(Clone, Copy, Debug)]
pub struct Preprocessed {
    /// Concatenated oriented adjacency lists (second endpoints), length `m`.
    pub nbr: DeviceBuffer<u32>,
    /// First endpoints, length `m` (the kernel reads `owner[i]` as `u`).
    pub owner: DeviceBuffer<u32>,
    /// Node array, length `n + 1`.
    pub node: DeviceBuffer<u32>,
    /// The packed arcs, retained only when the AoS kernel layout is wanted
    /// (§III-D1 ablation); `None` in the production SoA configuration.
    pub arcs_aos: Option<DeviceBuffer<u64>>,
    /// Oriented arc count (= number of undirected edges).
    pub m: usize,
    /// Vertex count.
    pub n: usize,
    /// Which path ran.
    pub used_cpu_fallback: bool,
    /// Host seconds spent when the fallback ran (0 otherwise).
    pub host_seconds: f64,
    /// Inverse permutation of the degree-descending relabeling
    /// (`relabel[new] = original`), kept on device so per-vertex outputs can
    /// be mapped back to input labels. `None` when reordering was off.
    pub relabel: Option<DeviceBuffer<u32>>,
}

/// Conservative device-byte estimate for the full-GPU path: the doubled
/// packed arcs plus the radix double buffer (peak at step 3).
pub fn full_path_peak_bytes(g: &EdgeArray) -> u64 {
    let arcs = g.num_arcs() as u64;
    2 * arcs * 8
}

/// Peak for the fallback path: only the oriented half is ever resident.
pub fn fallback_path_peak_bytes(g: &EdgeArray) -> u64 {
    let m = g.num_edges() as u64;
    2 * m * 8
}

/// Extra device bytes the reorder pass needs: the degree array, the rank
/// keys, the keys' radix double buffer, the rank scatter target, and the
/// inverse permutation that survives preprocessing.
pub fn reorder_extra_bytes(g: &EdgeArray) -> u64 {
    let n = g.num_nodes() as u64;
    n * 4 + n * 8 + n * 8 + n * 4 + n * 4
}

/// Run preprocessing, choosing the path by capacity like the paper: full
/// GPU when it fits, CPU fallback when only that fits, error otherwise.
/// `reserve_bytes` is capacity the caller needs *afterwards* (the kernel's
/// result array), held out of the plan. `reorder` inserts the
/// degree-descending relabeling pass (see the module docs).
pub fn preprocess_auto(
    dev: &mut Device,
    g: &EdgeArray,
    keep_aos: bool,
    reserve_bytes: u64,
    reorder: bool,
) -> Result<Preprocessed, CoreError> {
    let extra = if reorder { reorder_extra_bytes(g) } else { 0 };
    let full = full_path_peak_bytes(g) + node_bytes(g) + reserve_bytes + extra;
    let fallback = fallback_path_peak_bytes(g) + node_bytes(g) + reserve_bytes + extra;
    if dev.fits(full) {
        Ok(preprocess_full_gpu_opts(dev, g, keep_aos, reorder)?)
    } else if dev.fits(fallback) {
        Ok(preprocess_cpu_fallback_opts(dev, g, keep_aos, reorder)?)
    } else {
        Err(CoreError::GraphTooLargeForDevice {
            required_bytes: fallback,
            capacity_bytes: dev.mem_capacity(),
        })
    }
}

fn node_bytes(g: &EdgeArray) -> u64 {
    (g.num_nodes() as u64 + 1) * 4
}

/// The eight-step full-GPU path with the production defaults (no reorder).
pub fn preprocess_full_gpu(
    dev: &mut Device,
    g: &EdgeArray,
    keep_aos: bool,
) -> Result<Preprocessed, SimtError> {
    preprocess_full_gpu_opts(dev, g, keep_aos, false)
}

/// The eight-step full-GPU path. Each step runs inside a named profiler
/// phase (`push_phase`/`pop_phase`) so `--profile` reports and nested
/// traces show the §III-B breakdown. With `reorder`, step 2b relabels the
/// arcs by degree-descending rank before the sort.
pub fn preprocess_full_gpu_opts(
    dev: &mut Device,
    g: &EdgeArray,
    keep_aos: bool,
    reorder: bool,
) -> Result<Preprocessed, SimtError> {
    // Step 1: copy. Arcs packed (u << 32) | v so u64 order = (u, v) lex.
    let packed: Vec<u64> = g.arcs().iter().map(|e| e.as_u64_first_major()).collect();
    let arcs = dev.with_phase("1-copy-edges", |d| d.htod_copy(&packed))?;
    let total = packed.len();
    drop(packed);

    // Step 2: number of vertices.
    let n = if total == 0 {
        0
    } else {
        dev.with_phase("2-count-vertices", |d| {
            reduce_map_max_u64(d, &arcs, |e| (e >> 32).max(e & 0xFFFF_FFFF))
        }) as usize
            + 1
    };

    // Step 2b (reorder variant): degree-descending relabeling of the
    // packed arcs, ranks derived on device from the same radix sort.
    let relabel = if reorder && n > 0 {
        let degrees = g.degrees();
        Some(dev.with_phase("2b-reorder", |d| reorder_pass(d, &degrees, &arcs, total))?)
    } else {
        None
    };

    // Step 3: sort (allocates the radix double buffer — the peak).
    dev.with_phase("3-sort-edges", |d| sort_u64(d, &arcs, total))?;

    // Step 4: node array over the *doubled* arcs.
    let node_full = dev.with_phase("4-node-array", |d| {
        group_boundaries(d, &arcs, total, n, |e| (e >> 32) as u32)
    })?;

    // Step 5: mark backward arcs. Degrees come from the node array.
    let node_host = dev.peek(&node_full);
    let degree = move |v: u32| node_host[v as usize + 1] - node_host[v as usize];
    let marks = dev.with_phase("5-mark-backward", |d| {
        mark_if_u64(d, &arcs, total, |e| {
            let u = (e >> 32) as u32;
            let v = e as u32;
            let (du, dv) = (degree(u), degree(v));
            // Backward: from the ≻ endpoint to the ≺ endpoint.
            (dv, v) < (du, u)
        })
    });

    // Step 6: compact the forward arcs.
    let m = dev.with_phase("6-remove-backward", |d| {
        compact_marked_u64(d, &arcs, total, &marks)
    });
    dev.free(node_full)?;
    debug_assert_eq!(m, g.num_edges());

    finish(dev, arcs, m, n, keep_aos, false, 0.0, relabel)
}

/// Rank vertices by (descending degree, ascending id): the host mirror of
/// the device rank sort. Returns (`rank[old] = new`, `old_of_new[new] =
/// old`).
fn degree_ranks(degrees: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let n = degrees.len();
    // Key (u32::MAX - deg) << 32 | v: ascending u64 order is exactly
    // (descending degree, ascending id), ready for the radix machinery.
    let mut keys: Vec<u64> = degrees
        .iter()
        .enumerate()
        .map(|(v, &d)| (((u32::MAX - d) as u64) << 32) | v as u64)
        .collect();
    keys.sort_unstable();
    let mut rank = vec![0u32; n];
    let mut old_of_new = vec![0u32; n];
    for (new, &key) in keys.iter().enumerate() {
        let old = (key & 0xFFFF_FFFF) as u32;
        rank[old as usize] = new as u32;
        old_of_new[new] = old;
    }
    (rank, old_of_new)
}

/// The on-device reorder pass (step 2b): degree histogram, rank-key sort
/// via `sort_u64`, rank scatter, and an in-place gather rewrite of the
/// packed arcs. Every pass is charged through the cycle model; the
/// functional result is mirrored on the host (same split as the other
/// primitives). Returns the inverse permutation buffer, which outlives
/// preprocessing as [`Preprocessed::relabel`].
fn reorder_pass(
    dev: &mut Device,
    degrees: &[u32],
    arcs: &DeviceBuffer<u64>,
    total: usize,
) -> Result<DeviceBuffer<u32>, SimtError> {
    let n = degrees.len();
    let (nb, ab) = (n as u64, total as u64);

    // Degree histogram over the doubled arcs (one atomic add per arc).
    let deg_buf = dev.alloc::<u32>(n)?;
    dev.poke(&deg_buf, degrees);
    charge_transform_pass(dev, "reorder: degree histogram", ab * 8, nb * 4);

    // Rank keys, sorted with the same radix primitive as the arc sort.
    let keys: Vec<u64> = degrees
        .iter()
        .enumerate()
        .map(|(v, &d)| (((u32::MAX - d) as u64) << 32) | v as u64)
        .collect();
    let key_buf = dev.alloc::<u64>(n)?;
    dev.poke(&key_buf, &keys);
    charge_transform_pass(dev, "reorder: rank keys", nb * 4, nb * 8);
    sort_u64(dev, &key_buf, n)?;

    // Scatter ranks (rank[old] = position) and the inverse permutation.
    let (rank, old_of_new) = degree_ranks(degrees);
    let rank_buf = dev.alloc::<u32>(n)?;
    dev.poke(&rank_buf, &rank);
    let relabel = dev.alloc::<u32>(n)?;
    dev.poke(&relabel, &old_of_new);
    charge_transform_pass(dev, "reorder: rank scatter", nb * 8, nb * 8);

    // Rewrite the packed arcs in place: two gathered 4-byte rank lookups
    // per arc (modeled as one extra arc-sized read stream) plus the
    // streaming read and write of the arc array itself.
    let relabeled: Vec<u64> = dev
        .peek(arcs)
        .iter()
        .map(|&e| {
            let (u, v) = ((e >> 32) as usize, (e & 0xFFFF_FFFF) as usize);
            ((rank[u] as u64) << 32) | rank[v] as u64
        })
        .collect();
    dev.poke(arcs, &relabeled);
    charge_transform_pass(dev, "reorder: relabel arcs", ab * 8 + ab * 8, ab * 8);

    dev.free(deg_buf)?;
    dev.free(key_buf)?;
    dev.free(rank_buf)?;
    Ok(relabel)
}

/// Modeled cost of the host's share of the §III-D6 fallback: the degree
/// histogram plus the backward-arc filter are two single-threaded streaming
/// passes over the arc array; ~3 ns per arc per pass matches a mid-2010s
/// Xeon and keeps the † rows' penalty in the paper's proportions.
pub const HOST_PREPROCESS_NS_PER_ARC: f64 = 6.0;

/// §III-D6 with the production defaults (no reorder).
pub fn preprocess_cpu_fallback(
    dev: &mut Device,
    g: &EdgeArray,
    keep_aos: bool,
) -> Result<Preprocessed, SimtError> {
    preprocess_cpu_fallback_opts(dev, g, keep_aos, false)
}

/// §III-D6: degrees and orientation on the host, the rest on the device.
/// With `reorder`, the relabeling also runs on the host (one extra
/// streaming pass in the charge model) and only the inverse permutation is
/// uploaded; the orientation predicate compares relabeled ids so the
/// output matches the full-GPU reorder path exactly.
pub fn preprocess_cpu_fallback_opts(
    dev: &mut Device,
    g: &EdgeArray,
    keep_aos: bool,
    reorder: bool,
) -> Result<Preprocessed, SimtError> {
    let degrees = g.degrees();
    let n = g.num_nodes();
    let ranks = if reorder && n > 0 {
        Some(degree_ranks(&degrees))
    } else {
        None
    };
    let oriented: Vec<u64> = g
        .arcs()
        .iter()
        .filter_map(|e| {
            let (du, dv) = (degrees[e.u as usize], degrees[e.v as usize]);
            // Degrees are invariant under the relabeling, so only the
            // tie-breaking ids change — same arcs survive either way.
            let (lu, lv) = match &ranks {
                Some((rank, _)) => (rank[e.u as usize], rank[e.v as usize]),
                None => (e.u, e.v),
            };
            ((du, lu) < (dv, lv)).then_some(((lu as u64) << 32) | lv as u64)
        })
        .collect();
    let m = oriented.len();
    let host_passes = if reorder { 3.0 } else { 2.0 };
    let host_seconds =
        g.num_arcs() as f64 * (HOST_PREPROCESS_NS_PER_ARC / 2.0) * host_passes * 1e-9;

    let relabel = match &ranks {
        Some((_, old_of_new)) => Some(dev.with_phase("2b-reorder", |d| d.htod_copy(old_of_new))?),
        None => None,
    };
    let arcs = dev.with_phase("1-copy-edges", |d| d.htod_copy(&oriented))?;
    drop(oriented);
    dev.with_phase("3-sort-edges", |d| sort_u64(d, &arcs, m))?;
    finish(dev, arcs, m, n, keep_aos, true, host_seconds, relabel)
}

/// Steps 7–8, shared by both paths: unzip and rebuild the node array.
#[allow(clippy::too_many_arguments)]
fn finish(
    dev: &mut Device,
    arcs: DeviceBuffer<u64>,
    m: usize,
    n: usize,
    keep_aos: bool,
    used_cpu_fallback: bool,
    host_seconds: f64,
    relabel: Option<DeviceBuffer<u32>>,
) -> Result<Preprocessed, SimtError> {
    let (nbr, owner) = dev.with_phase("7-unzip", |d| unzip_u64(d, &arcs, m))?;
    let node = dev.with_phase("8-node-array", |d| {
        group_boundaries(d, &arcs, m, n, |e| (e >> 32) as u32)
    })?;
    let arcs_aos = if keep_aos {
        Some(arcs.slice(0, m))
    } else {
        dev.free(arcs)?;
        None
    };
    Ok(Preprocessed {
        nbr,
        owner,
        node,
        arcs_aos,
        m,
        n,
        used_cpu_fallback,
        host_seconds,
        relabel,
    })
}

/// Free every buffer of a [`Preprocessed`] (the paper's measurement window
/// ends "right after … the GPU memory was freed").
pub fn free_preprocessed(dev: &mut Device, p: &Preprocessed) -> Result<(), SimtError> {
    dev.free(p.nbr)?;
    dev.free(p.owner)?;
    dev.free(p.node)?;
    // `arcs_aos` is a slice of the original allocation; freeing by base
    // address works because slices at offset 0 share it.
    if let Some(aos) = p.arcs_aos {
        dev.free(aos)?;
    }
    if let Some(relabel) = p.relabel {
        dev.free(relabel)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::Orientation;
    use tc_simt::DeviceConfig;

    fn device() -> Device {
        let mut d = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        d.preinit_context();
        d.reset_clock();
        d
    }

    fn diamond() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    /// The device pipeline must produce exactly the CPU reference
    /// orientation: same node array, same concatenated lists.
    fn assert_matches_reference(dev: &Device, p: &Preprocessed, g: &EdgeArray) {
        let reference = Orientation::forward(g).unwrap();
        assert_eq!(p.m, g.num_edges());
        assert_eq!(p.n, g.num_nodes());
        let node = dev.peek(&p.node);
        let nbr = dev.peek(&p.nbr);
        let owner = dev.peek(&p.owner);
        let ref_offsets: Vec<u32> = reference.csr.offsets().to_vec();
        assert_eq!(node, ref_offsets, "node array mismatch");
        assert_eq!(nbr, reference.csr.targets(), "neighbour array mismatch");
        // owner[i] must be the list owner for every i.
        for v in 0..p.n as u32 {
            for i in node[v as usize]..node[v as usize + 1] {
                assert_eq!(owner[i as usize], v);
            }
        }
    }

    #[test]
    fn full_gpu_path_matches_cpu_reference() {
        let g = diamond();
        let mut dev = device();
        let p = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        assert!(!p.used_cpu_fallback);
        assert_matches_reference(&dev, &p, &g);
    }

    #[test]
    fn fallback_path_matches_cpu_reference() {
        let g = diamond();
        let mut dev = device();
        let p = preprocess_cpu_fallback(&mut dev, &g, false).unwrap();
        assert!(p.used_cpu_fallback);
        assert_matches_reference(&dev, &p, &g);
    }

    #[test]
    fn paths_agree_on_a_random_graph() {
        let mut pairs = Vec::new();
        // Deterministic pseudo-random pair soup.
        let mut x = 12345u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % 97;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (x >> 33) % 97;
            pairs.push((a as u32, b as u32));
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let mut d1 = device();
        let mut d2 = device();
        let p1 = preprocess_full_gpu(&mut d1, &g, false).unwrap();
        let p2 = preprocess_cpu_fallback(&mut d2, &g, false).unwrap();
        assert_eq!(d1.peek(&p1.node), d2.peek(&p2.node));
        assert_eq!(d1.peek(&p1.nbr), d2.peek(&p2.nbr));
        assert_matches_reference(&d1, &p1, &g);
    }

    #[test]
    fn auto_uses_full_path_when_roomy() {
        let g = diamond();
        let mut dev = device();
        let p = preprocess_auto(&mut dev, &g, false, 0, false).unwrap();
        assert!(!p.used_cpu_fallback);
    }

    #[test]
    fn auto_falls_back_when_tight() {
        let g = diamond();
        // Capacity: fits the fallback (2m·8 + node) but not the full path
        // (2·arcs·8 + node). m = 5 arcs -> fallback ≈ 80 + 20, full ≈ 160+.
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(140);
        let mut dev = Device::new(cfg);
        dev.preinit_context();
        let p = preprocess_auto(&mut dev, &g, false, 0, false).unwrap();
        assert!(p.used_cpu_fallback);
        assert!(p.host_seconds >= 0.0);
        assert_matches_reference(&dev, &p, &g);
    }

    #[test]
    fn auto_errors_when_nothing_fits() {
        let g = diamond();
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(40);
        let mut dev = Device::new(cfg);
        dev.preinit_context();
        match preprocess_auto(&mut dev, &g, false, 0, false) {
            Err(CoreError::GraphTooLargeForDevice { .. }) => {}
            other => panic!("expected too-large error, got {other:?}"),
        }
    }

    #[test]
    fn keep_aos_retains_packed_arcs() {
        let g = diamond();
        let mut dev = device();
        let p = preprocess_full_gpu(&mut dev, &g, true).unwrap();
        let aos = p.arcs_aos.expect("requested AoS retention");
        let packed = dev.peek(&aos);
        let nbr = dev.peek(&p.nbr);
        let owner = dev.peek(&p.owner);
        for i in 0..p.m {
            assert_eq!(packed[i], ((owner[i] as u64) << 32) | nbr[i] as u64);
        }
    }

    #[test]
    fn free_returns_all_memory() {
        let g = diamond();
        let mut dev = device();
        let before = dev.mem_used();
        let p = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        assert!(dev.mem_used() > before);
        free_preprocessed(&mut dev, &p).unwrap();
        assert_eq!(dev.mem_used(), before);
    }

    #[test]
    fn empty_graph_preprocesses_cleanly() {
        let g = EdgeArray::default();
        let mut dev = device();
        let p = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        assert_eq!(p.m, 0);
        assert_eq!(p.n, 0);
        assert_eq!(dev.peek(&p.node), vec![0]);
    }

    fn random_graph(nodes: u64, pairs: usize, seed: u64) -> EdgeArray {
        let mut soup = Vec::new();
        let mut x = seed;
        for _ in 0..pairs {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % nodes;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (x >> 33) % nodes;
            soup.push((a as u32, b as u32));
        }
        EdgeArray::from_undirected_pairs(soup)
    }

    #[test]
    fn reorder_ranks_vertices_by_descending_degree() {
        let g = random_graph(61, 300, 99);
        let degrees = g.degrees();
        let mut dev = device();
        let p = preprocess_full_gpu_opts(&mut dev, &g, false, true).unwrap();
        let relabel = dev.peek(&p.relabel.expect("reorder keeps the inverse permutation"));
        assert_eq!(relabel.len(), g.num_nodes());
        // relabel[new] walks vertices in (descending degree, ascending id)
        // order and visits each exactly once.
        for w in relabel.windows(2) {
            let (da, db) = (degrees[w[0] as usize], degrees[w[1] as usize]);
            assert!((da > db) || (da == db && w[0] < w[1]));
        }
        let mut seen = vec![false; relabel.len()];
        for &old in &relabel {
            assert!(!std::mem::replace(&mut seen[old as usize], true));
        }
    }

    /// Reordering must be a pure relabeling: mapping the reordered
    /// adjacency structure back through the inverse permutation recovers
    /// exactly the unreordered oriented graph, arc for arc.
    #[test]
    fn reorder_is_a_pure_relabeling() {
        let g = random_graph(97, 400, 12345);
        let mut plain_dev = device();
        let plain = preprocess_full_gpu(&mut plain_dev, &g, false).unwrap();
        let mut dev = device();
        let p = preprocess_full_gpu_opts(&mut dev, &g, false, true).unwrap();
        assert_eq!(p.m, plain.m);
        assert_eq!(p.n, plain.n);
        let relabel = dev.peek(&p.relabel.unwrap());
        let node = dev.peek(&p.node);
        let nbr = dev.peek(&p.nbr);
        let owner = dev.peek(&p.owner);
        let mut mapped: Vec<(u32, u32)> = Vec::with_capacity(p.m);
        for i in 0..p.m {
            assert!(
                node[owner[i] as usize] <= i as u32 && (i as u32) < node[owner[i] as usize + 1]
            );
            mapped.push((relabel[owner[i] as usize], relabel[nbr[i] as usize]));
        }
        mapped.sort_unstable();
        let plain_nbr = plain_dev.peek(&plain.nbr);
        let plain_owner = plain_dev.peek(&plain.owner);
        let mut reference: Vec<(u32, u32)> = plain_owner
            .iter()
            .zip(&plain_nbr)
            .map(|(&u, &v)| (u, v))
            .collect();
        reference.sort_unstable();
        assert_eq!(mapped, reference);
    }

    #[test]
    fn reorder_paths_agree() {
        let g = random_graph(97, 400, 777);
        let mut d1 = device();
        let mut d2 = device();
        let p1 = preprocess_full_gpu_opts(&mut d1, &g, false, true).unwrap();
        let p2 = preprocess_cpu_fallback_opts(&mut d2, &g, false, true).unwrap();
        assert_eq!(d1.peek(&p1.node), d2.peek(&p2.node));
        assert_eq!(d1.peek(&p1.nbr), d2.peek(&p2.nbr));
        assert_eq!(d1.peek(&p1.relabel.unwrap()), d2.peek(&p2.relabel.unwrap()));
    }

    #[test]
    fn reorder_frees_all_memory_and_handles_empty_graphs() {
        let g = diamond();
        let mut dev = device();
        let before = dev.mem_used();
        let p = preprocess_full_gpu_opts(&mut dev, &g, false, true).unwrap();
        assert!(p.relabel.is_some());
        free_preprocessed(&mut dev, &p).unwrap();
        assert_eq!(dev.mem_used(), before);

        let empty = EdgeArray::default();
        let p = preprocess_full_gpu_opts(&mut dev, &empty, false, true).unwrap();
        assert!(p.relabel.is_none());
        assert_eq!(p.m, 0);
    }
}
