//! The preprocessing phase (§III-B) and its CPU fallback (§III-D6).
//!
//! Eight steps on the device:
//!
//! 1. copy the edge array to device memory (arcs packed `(u << 32) | v`;
//!    the paper packs pairs into 64-bit values too, §III-D2);
//! 2. vertex count = max identifier + 1, via `thrust::reduce(max)`;
//! 3. radix-sort the packed arcs — the peak-memory step;
//! 4. build the node array by boundary detection;
//! 5. mark arcs going from higher- to lower-degree endpoints (ties on id);
//! 6. `thrust::remove_if` compacts the forward arcs (exactly m̂ survive);
//! 7. unzip into structure-of-arrays;
//! 8. rebuild the node array over the compacted arcs.
//!
//! When the device cannot hold the doubled edge array *plus* the sort's
//! double buffer, [`preprocess_auto`] falls back to §III-D6: the host
//! computes degrees and drops backward arcs (halving what the device must
//! hold) and only sorting/unzipping/node-building run on the device. The
//! host part is charged with a deterministic cost model (a single-threaded
//! streaming pass at [`HOST_PREPROCESS_NS_PER_ARC`]) rather than a live
//! stopwatch, so † rows — like all simulated times — are bit-reproducible
//! across runs and hosts; the paper's observation survives either way (the
//! fallback "runs slower than on the GPU but halves the input size").

use tc_graph::EdgeArray;
use tc_simt::primitives::{
    compact_marked_u64, group_boundaries, mark_if_u64, reduce_map_max_u64, sort_u64, unzip_u64,
};
use tc_simt::{Device, DeviceBuffer, SimtError};

use crate::error::CoreError;

/// Output of preprocessing: everything the counting kernel needs.
#[derive(Clone, Copy, Debug)]
pub struct Preprocessed {
    /// Concatenated oriented adjacency lists (second endpoints), length `m`.
    pub nbr: DeviceBuffer<u32>,
    /// First endpoints, length `m` (the kernel reads `owner[i]` as `u`).
    pub owner: DeviceBuffer<u32>,
    /// Node array, length `n + 1`.
    pub node: DeviceBuffer<u32>,
    /// The packed arcs, retained only when the AoS kernel layout is wanted
    /// (§III-D1 ablation); `None` in the production SoA configuration.
    pub arcs_aos: Option<DeviceBuffer<u64>>,
    /// Oriented arc count (= number of undirected edges).
    pub m: usize,
    /// Vertex count.
    pub n: usize,
    /// Which path ran.
    pub used_cpu_fallback: bool,
    /// Host seconds spent when the fallback ran (0 otherwise).
    pub host_seconds: f64,
}

/// Conservative device-byte estimate for the full-GPU path: the doubled
/// packed arcs plus the radix double buffer (peak at step 3).
pub fn full_path_peak_bytes(g: &EdgeArray) -> u64 {
    let arcs = g.num_arcs() as u64;
    2 * arcs * 8
}

/// Peak for the fallback path: only the oriented half is ever resident.
pub fn fallback_path_peak_bytes(g: &EdgeArray) -> u64 {
    let m = g.num_edges() as u64;
    2 * m * 8
}

/// Run preprocessing, choosing the path by capacity like the paper: full
/// GPU when it fits, CPU fallback when only that fits, error otherwise.
/// `reserve_bytes` is capacity the caller needs *afterwards* (the kernel's
/// result array), held out of the plan.
pub fn preprocess_auto(
    dev: &mut Device,
    g: &EdgeArray,
    keep_aos: bool,
    reserve_bytes: u64,
) -> Result<Preprocessed, CoreError> {
    let full = full_path_peak_bytes(g) + node_bytes(g) + reserve_bytes;
    let fallback = fallback_path_peak_bytes(g) + node_bytes(g) + reserve_bytes;
    if dev.fits(full) {
        Ok(preprocess_full_gpu(dev, g, keep_aos)?)
    } else if dev.fits(fallback) {
        Ok(preprocess_cpu_fallback(dev, g, keep_aos)?)
    } else {
        Err(CoreError::GraphTooLargeForDevice {
            required_bytes: fallback,
            capacity_bytes: dev.mem_capacity(),
        })
    }
}

fn node_bytes(g: &EdgeArray) -> u64 {
    (g.num_nodes() as u64 + 1) * 4
}

/// The eight-step full-GPU path. Each step runs inside a named profiler
/// phase (`push_phase`/`pop_phase`) so `--profile` reports and nested
/// traces show the §III-B breakdown.
pub fn preprocess_full_gpu(
    dev: &mut Device,
    g: &EdgeArray,
    keep_aos: bool,
) -> Result<Preprocessed, SimtError> {
    // Step 1: copy. Arcs packed (u << 32) | v so u64 order = (u, v) lex.
    let packed: Vec<u64> = g.arcs().iter().map(|e| e.as_u64_first_major()).collect();
    let arcs = dev.with_phase("1-copy-edges", |d| d.htod_copy(&packed))?;
    let total = packed.len();
    drop(packed);

    // Step 2: number of vertices.
    let n = if total == 0 {
        0
    } else {
        dev.with_phase("2-count-vertices", |d| {
            reduce_map_max_u64(d, &arcs, |e| (e >> 32).max(e & 0xFFFF_FFFF))
        }) as usize
            + 1
    };

    // Step 3: sort (allocates the radix double buffer — the peak).
    dev.with_phase("3-sort-edges", |d| sort_u64(d, &arcs, total))?;

    // Step 4: node array over the *doubled* arcs.
    let node_full = dev.with_phase("4-node-array", |d| {
        group_boundaries(d, &arcs, total, n, |e| (e >> 32) as u32)
    })?;

    // Step 5: mark backward arcs. Degrees come from the node array.
    let node_host = dev.peek(&node_full);
    let degree = move |v: u32| node_host[v as usize + 1] - node_host[v as usize];
    let marks = dev.with_phase("5-mark-backward", |d| {
        mark_if_u64(d, &arcs, total, |e| {
            let u = (e >> 32) as u32;
            let v = e as u32;
            let (du, dv) = (degree(u), degree(v));
            // Backward: from the ≻ endpoint to the ≺ endpoint.
            (dv, v) < (du, u)
        })
    });

    // Step 6: compact the forward arcs.
    let m = dev.with_phase("6-remove-backward", |d| {
        compact_marked_u64(d, &arcs, total, &marks)
    });
    dev.free(node_full)?;
    debug_assert_eq!(m, g.num_edges());

    finish(dev, arcs, m, n, keep_aos, false, 0.0)
}

/// Modeled cost of the host's share of the §III-D6 fallback: the degree
/// histogram plus the backward-arc filter are two single-threaded streaming
/// passes over the arc array; ~3 ns per arc per pass matches a mid-2010s
/// Xeon and keeps the † rows' penalty in the paper's proportions.
pub const HOST_PREPROCESS_NS_PER_ARC: f64 = 6.0;

/// §III-D6: degrees and orientation on the host, the rest on the device.
pub fn preprocess_cpu_fallback(
    dev: &mut Device,
    g: &EdgeArray,
    keep_aos: bool,
) -> Result<Preprocessed, SimtError> {
    let degrees = g.degrees();
    let n = g.num_nodes();
    let oriented: Vec<u64> = g
        .arcs()
        .iter()
        .filter(|e| {
            let (du, dv) = (degrees[e.u as usize], degrees[e.v as usize]);
            (du, e.u) < (dv, e.v)
        })
        .map(|e| e.as_u64_first_major())
        .collect();
    let m = oriented.len();
    let host_seconds = g.num_arcs() as f64 * HOST_PREPROCESS_NS_PER_ARC * 1e-9;

    let arcs = dev.with_phase("1-copy-edges", |d| d.htod_copy(&oriented))?;
    drop(oriented);
    dev.with_phase("3-sort-edges", |d| sort_u64(d, &arcs, m))?;
    finish(dev, arcs, m, n, keep_aos, true, host_seconds)
}

/// Steps 7–8, shared by both paths: unzip and rebuild the node array.
fn finish(
    dev: &mut Device,
    arcs: DeviceBuffer<u64>,
    m: usize,
    n: usize,
    keep_aos: bool,
    used_cpu_fallback: bool,
    host_seconds: f64,
) -> Result<Preprocessed, SimtError> {
    let (nbr, owner) = dev.with_phase("7-unzip", |d| unzip_u64(d, &arcs, m))?;
    let node = dev.with_phase("8-node-array", |d| {
        group_boundaries(d, &arcs, m, n, |e| (e >> 32) as u32)
    })?;
    let arcs_aos = if keep_aos {
        Some(arcs.slice(0, m))
    } else {
        dev.free(arcs)?;
        None
    };
    Ok(Preprocessed {
        nbr,
        owner,
        node,
        arcs_aos,
        m,
        n,
        used_cpu_fallback,
        host_seconds,
    })
}

/// Free every buffer of a [`Preprocessed`] (the paper's measurement window
/// ends "right after … the GPU memory was freed").
pub fn free_preprocessed(dev: &mut Device, p: &Preprocessed) -> Result<(), SimtError> {
    dev.free(p.nbr)?;
    dev.free(p.owner)?;
    dev.free(p.node)?;
    // `arcs_aos` is a slice of the original allocation; freeing by base
    // address works because slices at offset 0 share it.
    if let Some(aos) = p.arcs_aos {
        dev.free(aos)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::Orientation;
    use tc_simt::DeviceConfig;

    fn device() -> Device {
        let mut d = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        d.preinit_context();
        d.reset_clock();
        d
    }

    fn diamond() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    /// The device pipeline must produce exactly the CPU reference
    /// orientation: same node array, same concatenated lists.
    fn assert_matches_reference(dev: &Device, p: &Preprocessed, g: &EdgeArray) {
        let reference = Orientation::forward(g).unwrap();
        assert_eq!(p.m, g.num_edges());
        assert_eq!(p.n, g.num_nodes());
        let node = dev.peek(&p.node);
        let nbr = dev.peek(&p.nbr);
        let owner = dev.peek(&p.owner);
        let ref_offsets: Vec<u32> = reference.csr.offsets().to_vec();
        assert_eq!(node, ref_offsets, "node array mismatch");
        assert_eq!(nbr, reference.csr.targets(), "neighbour array mismatch");
        // owner[i] must be the list owner for every i.
        for v in 0..p.n as u32 {
            for i in node[v as usize]..node[v as usize + 1] {
                assert_eq!(owner[i as usize], v);
            }
        }
    }

    #[test]
    fn full_gpu_path_matches_cpu_reference() {
        let g = diamond();
        let mut dev = device();
        let p = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        assert!(!p.used_cpu_fallback);
        assert_matches_reference(&dev, &p, &g);
    }

    #[test]
    fn fallback_path_matches_cpu_reference() {
        let g = diamond();
        let mut dev = device();
        let p = preprocess_cpu_fallback(&mut dev, &g, false).unwrap();
        assert!(p.used_cpu_fallback);
        assert_matches_reference(&dev, &p, &g);
    }

    #[test]
    fn paths_agree_on_a_random_graph() {
        let mut pairs = Vec::new();
        // Deterministic pseudo-random pair soup.
        let mut x = 12345u64;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 33) % 97;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (x >> 33) % 97;
            pairs.push((a as u32, b as u32));
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let mut d1 = device();
        let mut d2 = device();
        let p1 = preprocess_full_gpu(&mut d1, &g, false).unwrap();
        let p2 = preprocess_cpu_fallback(&mut d2, &g, false).unwrap();
        assert_eq!(d1.peek(&p1.node), d2.peek(&p2.node));
        assert_eq!(d1.peek(&p1.nbr), d2.peek(&p2.nbr));
        assert_matches_reference(&d1, &p1, &g);
    }

    #[test]
    fn auto_uses_full_path_when_roomy() {
        let g = diamond();
        let mut dev = device();
        let p = preprocess_auto(&mut dev, &g, false, 0).unwrap();
        assert!(!p.used_cpu_fallback);
    }

    #[test]
    fn auto_falls_back_when_tight() {
        let g = diamond();
        // Capacity: fits the fallback (2m·8 + node) but not the full path
        // (2·arcs·8 + node). m = 5 arcs -> fallback ≈ 80 + 20, full ≈ 160+.
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(140);
        let mut dev = Device::new(cfg);
        dev.preinit_context();
        let p = preprocess_auto(&mut dev, &g, false, 0).unwrap();
        assert!(p.used_cpu_fallback);
        assert!(p.host_seconds >= 0.0);
        assert_matches_reference(&dev, &p, &g);
    }

    #[test]
    fn auto_errors_when_nothing_fits() {
        let g = diamond();
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(40);
        let mut dev = Device::new(cfg);
        dev.preinit_context();
        match preprocess_auto(&mut dev, &g, false, 0) {
            Err(CoreError::GraphTooLargeForDevice { .. }) => {}
            other => panic!("expected too-large error, got {other:?}"),
        }
    }

    #[test]
    fn keep_aos_retains_packed_arcs() {
        let g = diamond();
        let mut dev = device();
        let p = preprocess_full_gpu(&mut dev, &g, true).unwrap();
        let aos = p.arcs_aos.expect("requested AoS retention");
        let packed = dev.peek(&aos);
        let nbr = dev.peek(&p.nbr);
        let owner = dev.peek(&p.owner);
        for i in 0..p.m {
            assert_eq!(packed[i], ((owner[i] as u64) << 32) | nbr[i] as u64);
        }
    }

    #[test]
    fn free_returns_all_memory() {
        let g = diamond();
        let mut dev = device();
        let before = dev.mem_used();
        let p = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        assert!(dev.mem_used() > before);
        free_preprocessed(&mut dev, &p).unwrap();
        assert_eq!(dev.mem_used(), before);
    }

    #[test]
    fn empty_graph_preprocesses_cleanly() {
        let g = EdgeArray::default();
        let mut dev = device();
        let p = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        assert_eq!(p.m, 0);
        assert_eq!(p.n, 0);
        assert_eq!(dev.peek(&p.node), vec![0]);
    }
}
