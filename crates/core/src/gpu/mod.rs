//! The CUDA implementation of the paper, on the simulated device.
//!
//! * [`preprocess`] — the eight-step preprocessing phase (§III-B) and the
//!   CPU fallback for over-capacity graphs (§III-D6);
//! * [`count_kernel`] — the `CountTriangles` kernel (§III-C) as a SIMT lane
//!   program, with the §III-D optimization toggles;
//! * [`pipeline`] — the end-to-end measured run, following the paper's
//!   protocol (§IV): clock from the host-to-device copy to the final
//!   device-to-host copy and free;
//! * [`multi`] — the multi-GPU extension (§III-E).

pub mod cluster;
pub mod count_kernel;
pub mod multi;
pub mod pipeline;
pub mod prepared;
pub mod preprocess;
pub mod schedule;
pub mod split;
pub mod warp_centric;

pub use schedule::KernelSchedule;

/// Which merge loop the kernel runs (§III-D3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum LoopVariant {
    /// The published kernel: heads kept in registers, one load per
    /// non-matching iteration.
    #[default]
    FinalReadAvoiding,
    /// The first attempt: reload both heads every iteration (36–48 % slower
    /// in the paper).
    Preliminary,
}

/// Edge-array layout the kernel reads (§III-D1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum EdgeLayout {
    /// Structure of arrays after the unzip step — the published layout.
    #[default]
    SoA,
    /// Array of `(u32, u32)` structs (no unzip) — 13–32 % slower.
    AoS,
}
