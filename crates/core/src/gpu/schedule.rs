//! Workload-balanced kernel scheduling: degree-binned dispatch with a
//! deterministic auto-tuner.
//!
//! Polak's §III-C kernel assigns one thread per edge, so on skewed graphs
//! a few heavy edges (huge adjacency intersections) dominate the slowest
//! warp while most lanes idle. The fix, following the workload-balancing
//! line of Wang et al. (2018) and TRUST (2021), is to *bin* edges by an
//! estimated intersection work and dispatch each bin to the kernel that
//! wins there:
//!
//! * the per-edge work estimate is `min(outdeg(u), outdeg(v))` over the
//!   oriented CSR — an upper bound on the merge's match count and a good
//!   proxy for its length, available from the `node` array already
//!   resident after preprocessing;
//! * a charged on-device pass builds `(work << 32) | edge` keys, radix
//!   sorts them with the same [`tc_simt::primitives::sort_u64`] the
//!   preprocessing phase uses, and gathers the bin-ordered endpoint
//!   arrays `eu`/`ev` (the adjacency array itself is *not* reordered —
//!   `node` keeps pointing into it);
//! * light bins run the merge [`CountKernel`](super::count_kernel::CountKernel)
//!   over the gathered arrays (sorted order alone balances per-lane totals
//!   and keeps warp-mates on similar-length merges), heavy bins run the
//!   [`WarpCentricKernel`](super::warp_centric::WarpCentricKernel) with a
//!   per-bin virtual-warp width so one hub edge is shared by `W` lanes.
//!
//! The auto-tuner is **static and deterministic**: it reads only the work
//! histogram (no measurement feedback), so a given graph + schedule always
//! produces the same plan, the same device operations, and byte-identical
//! counts — the property the engine cache and the golden perf tests rely
//! on. Uniform low-degree graphs (mean work below the gate) tune to *no
//! plan* at all: the scheduler charges nothing and the default
//! thread-per-edge kernel runs unchanged. Calibration against the
//! simulated GTX 980 showed the chunk-scan kernel dominating the merge
//! kernel at every work level above the gate, so the *auto* plan uses
//! chunk-scan bins only; the merge-light-bin shape stays reachable
//! through [`KernelSchedule::BalancedFixed`].

use std::fmt;

use tc_simt::primitives::{charge_transform_pass, sort_u64};
use tc_simt::{Device, DeviceBuffer};

use crate::error::CoreError;
use crate::gpu::preprocess::Preprocessed;

/// How counting work is mapped onto the grid — the scheduling knob on
/// [`crate::GpuOptions`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum KernelSchedule {
    /// The paper's §III-C mapping: thread `tid` takes edges `tid`,
    /// `tid + grid`, … in input order. No binning pass, no extra memory.
    #[default]
    ThreadPerEdge,
    /// Degree-binned dispatch with auto-tuned bin thresholds and widths
    /// (token `balanced`). Falls back to no plan at all when the tuner
    /// finds the graph uniform and low-degree.
    Balanced,
    /// Degree-binned dispatch with an explicit light/heavy threshold and
    /// heavy-bin virtual-warp width (token `balanced:<t>x<w>`): edges with
    /// work `< t` go to the merge kernel, the rest to the warp-centric
    /// kernel with width `w`. `t = 0` sends everything heavy;
    /// `t = u32::MAX` keeps everything in the sorted light bin.
    BalancedFixed { threshold: u32, width: u32 },
    /// Like [`KernelSchedule::Balanced`], but the heavy tail runs the
    /// TRUST-style shared-memory hash kernel instead of the wide chunk
    /// scan (token `balanced+hash`). Falls back to the plain balanced
    /// plan when the tail is too thin for the hash bin to pay off.
    BalancedHash,
}

impl KernelSchedule {
    /// Virtual-warp widths the heavy bins may use (must divide the warp
    /// size of every device preset).
    pub const WIDTHS: [u32; 5] = [2, 4, 8, 16, 32];

    /// Is this the default schedule (no binning pass, no token suffix)?
    #[inline]
    pub fn is_default(&self) -> bool {
        matches!(self, KernelSchedule::ThreadPerEdge)
    }

    /// The token suffix appended to a backend device token (`""` for the
    /// default schedule).
    ///
    /// ```
    /// use tc_core::KernelSchedule;
    ///
    /// assert_eq!(KernelSchedule::ThreadPerEdge.token_suffix(), "");
    /// assert_eq!(KernelSchedule::Balanced.token_suffix(), "/balanced");
    /// assert_eq!(KernelSchedule::BalancedHash.token_suffix(), "/balanced+hash");
    /// assert_eq!(
    ///     KernelSchedule::BalancedFixed { threshold: 16, width: 8 }.token_suffix(),
    ///     "/balanced:16x8",
    /// );
    /// ```
    pub fn token_suffix(&self) -> String {
        match self {
            KernelSchedule::ThreadPerEdge => String::new(),
            KernelSchedule::Balanced => "/balanced".into(),
            KernelSchedule::BalancedFixed { threshold, width } => {
                format!("/balanced:{threshold}x{width}")
            }
            KernelSchedule::BalancedHash => "/balanced+hash".into(),
        }
    }

    /// Parse the `balanced[:<t>x<w>]` part of a backend token (the part
    /// after the `/`). `None` when it is not a schedule clause.
    ///
    /// ```
    /// use tc_core::KernelSchedule;
    ///
    /// assert_eq!(
    ///     KernelSchedule::parse_clause("balanced"),
    ///     Some(KernelSchedule::Balanced),
    /// );
    /// assert_eq!(
    ///     KernelSchedule::parse_clause("balanced:16x8"),
    ///     Some(KernelSchedule::BalancedFixed { threshold: 16, width: 8 }),
    /// );
    /// // Widths must be 1 or divide every preset's warp size.
    /// assert_eq!(KernelSchedule::parse_clause("balanced:16x3"), None);
    /// assert_eq!(KernelSchedule::parse_clause("split:2"), None);
    /// ```
    pub fn parse_clause(clause: &str) -> Option<KernelSchedule> {
        if clause == "balanced" {
            return Some(KernelSchedule::Balanced);
        }
        if clause == "balanced+hash" {
            return Some(KernelSchedule::BalancedHash);
        }
        let spec = clause.strip_prefix("balanced:")?;
        let (t, w) = spec.split_once('x')?;
        let threshold = t.parse::<u32>().ok()?;
        let width = w.parse::<u32>().ok()?;
        if width != 1 && !Self::WIDTHS.contains(&width) {
            return None;
        }
        Some(KernelSchedule::BalancedFixed { threshold, width })
    }
}

impl fmt::Display for KernelSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelSchedule::ThreadPerEdge => f.write_str("thread-per-edge"),
            KernelSchedule::Balanced => f.write_str("balanced"),
            KernelSchedule::BalancedFixed { threshold, width } => {
                write!(f, "balanced(t={threshold}, w={width})")
            }
            KernelSchedule::BalancedHash => f.write_str("balanced+hash"),
        }
    }
}

/// One work bin of a [`BinPlan`]: a contiguous range of the bin-ordered
/// edge arrays plus the kernel strategy that serves it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Bin {
    /// First index into the gathered `eu`/`ev` arrays.
    pub start: usize,
    /// Edges in the bin.
    pub len: usize,
    /// Virtual-warp width: 1 = merge
    /// [`CountKernel`](super::count_kernel::CountKernel), >1 =
    /// [`WarpCentricKernel`](super::warp_centric::WarpCentricKernel) with
    /// `width` lanes per edge.
    pub width: u32,
    /// Warp-centric bins only: intersect by shared-memory hash table
    /// ([`IntersectStrategy::Hash`](super::warp_centric::IntersectStrategy))
    /// instead of the chunk scan.
    pub hash: bool,
}

/// A tuned bin boundary: edges with work `< max_work` (and above the
/// previous spec's bound) belong to a bin served at `width`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BinSpec {
    /// Exclusive upper work bound (`u32::MAX` = open-ended last bin).
    pub max_work: u32,
    /// Virtual-warp width of the bin's kernel (1 = merge kernel).
    pub width: u32,
    /// Serve the bin with the hash-intersection kernel (width > 1 only).
    pub hash: bool,
}

/// The device-resident schedule: bin-ordered endpoint arrays plus the bin
/// table. Built once per prepared graph (cost charged to the schedule
/// phase), reused by every count, freed on release.
#[derive(Clone, Debug)]
pub struct BinPlan {
    /// First endpoints, bin order (gathered copy; coalesced kernel reads).
    pub eu: DeviceBuffer<u32>,
    /// Second endpoints, bin order.
    pub ev: DeviceBuffer<u32>,
    /// Disjoint bins covering `[0, m)` in ascending work order.
    pub bins: Vec<Bin>,
}

impl BinPlan {
    /// Bins that actually contain edges.
    pub fn occupied(&self) -> impl Iterator<Item = &Bin> {
        self.bins.iter().filter(|b| b.len > 0)
    }
}

// ---------------------------------------------------------------------------
// The deterministic static auto-tuner.
//
// All constants are structural (calibrated once against the simulator, not
// measured per run): the tuner sees only the work multiset, so the plan is
// a pure function of the graph + schedule.
// ---------------------------------------------------------------------------

/// Mean work below which binning cannot pay for itself: on uniform
/// low-degree graphs (the Watts–Strogatz regime) the thread-per-edge
/// merge is already balanced, its short intersections leave nothing for
/// the chunk loads to amortize, and the binning passes plus the per-bin
/// launch overhead outweigh the win.
const UNIFORM_MEAN_WORK: f64 = 10.0;
/// One 32-byte line holds 8 × u32: a chunk of 8 longer-list elements is
/// exactly one coalesced transaction, the structural optimum for the
/// chunk-scan width (wider chunks over-fetch when the scan ends early,
/// narrower ones waste the line).
const LINE_WIDTH: u32 = 8;
/// Edges at or above this work estimate go to a wider bin: their long
/// scans amortize the bigger chunk's over-fetch.
const TAIL_WORK: u32 = 256;
/// Minimum fraction of edges the tail bin must hold to justify its extra
/// kernel launch.
const TAIL_MIN_FRACTION: f64 = 0.01;
/// Work level from which the hash kernel beats the wide chunk scan. The
/// static rule comes from the two kernels' per-edge costs at width 32
/// (`s` = shorter list, `l` = longer): the chunk scan issues `~s/4`
/// lockstep broadcast rounds plus `l/32` chunk loads, the hash kernel
/// `3⌈s/32⌉ + 2⌈l/32⌉` rounds — so the hash side wins once the shorter
/// list spans several warp-wide rounds and its one-transaction-per-round
/// saving outweighs the table build and the shared-memory walk latency.
/// Below this level the broadcast scan already covers the list in a
/// couple of rounds and the build cannot amortize.
const HASH_MIN_WORK: u32 = 64;

/// Per-edge work estimate over the oriented CSR: `min` of the endpoint
/// out-degrees (an upper bound on the intersection size and a proxy for
/// the merge length).
///
/// ```
/// use tc_core::gpu::schedule::edge_work;
///
/// // Oriented CSR: v0 -> [1, 2], v1 -> [2], v2 -> [].
/// let node = [0u32, 2, 3, 3];
/// let owner = [0u32, 0, 1];
/// let nbr = [1u32, 2, 2];
/// // Arc (0,1): min(deg 2, deg 1) = 1; arcs into the sink v2 cost 0.
/// assert_eq!(edge_work(&owner, &nbr, &node), vec![1, 0, 0]);
/// ```
pub fn edge_work(owner: &[u32], nbr: &[u32], node: &[u32]) -> Vec<u32> {
    owner
        .iter()
        .zip(nbr)
        .map(|(&u, &v)| {
            let du = node[u as usize + 1] - node[u as usize];
            let dv = node[v as usize + 1] - node[v as usize];
            du.min(dv)
        })
        .collect()
}

/// The static auto-tuner: pick bin specs from the work multiset, or `None`
/// when binning cannot pay for itself. Deterministic — a pure function of
/// its input.
///
/// ```
/// use tc_core::gpu::schedule::auto_bin_specs;
///
/// // Uniform low-degree work tunes to no plan at all.
/// let uniform: Vec<u32> = vec![3; 1000];
/// assert!(auto_bin_specs(&uniform).is_none());
///
/// // A skewed multiset with a real heavy tail earns a two-bin plan:
/// // line-width chunks for the bulk, width-32 for the tail.
/// let mut skewed: Vec<u32> = vec![20; 5000];
/// skewed.extend([2000u32; 100]);
/// let specs = auto_bin_specs(&skewed).unwrap();
/// assert_eq!(specs.len(), 2);
/// assert_eq!(specs[1].width, 32);
/// ```
pub fn auto_bin_specs(work: &[u32]) -> Option<Vec<BinSpec>> {
    let m = work.len();
    if m == 0 {
        return None;
    }
    let mean = work.iter().map(|&w| w as u64).sum::<u64>() as f64 / m as f64;
    if mean < UNIFORM_MEAN_WORK {
        // Uniform low-degree: the thread-per-edge kernel is already
        // balanced and the binning passes cannot pay for themselves.
        return None;
    }
    // Calibration against the simulated GTX 980: the chunk-scan kernel
    // beats the merge kernel at *every* work level once the mean clears
    // the gate — a light merge bin never recovered its extra launch — so
    // the plan is chunk-scan bins only, line-width chunks, with a wider
    // bin for the heavy tail when it holds enough edges to amortize its
    // launch.
    let tail = work.iter().filter(|&&w| w >= TAIL_WORK).count();
    if (tail as f64) >= TAIL_MIN_FRACTION * m as f64 {
        return Some(vec![
            BinSpec {
                max_work: TAIL_WORK,
                width: LINE_WIDTH,
                hash: false,
            },
            BinSpec {
                max_work: u32::MAX,
                width: 32,
                hash: false,
            },
        ]);
    }
    Some(vec![BinSpec {
        max_work: u32::MAX,
        width: LINE_WIDTH,
        hash: false,
    }])
}

/// The hash variant of the static tuner: identical gates, but edges whose
/// work clears `HASH_MIN_WORK` form a width-32 hash bin (when they are
/// numerous enough to amortize its launch — otherwise the plan degrades
/// to the plain balanced one). Deterministic, like [`auto_bin_specs`].
///
/// ```
/// use tc_core::gpu::schedule::{auto_bin_specs, auto_bin_specs_hash};
///
/// let mut skewed: Vec<u32> = vec![20; 5000];
/// skewed.extend([2000u32; 100]);
/// let specs = auto_bin_specs_hash(&skewed).unwrap();
/// assert!(specs.last().unwrap().hash, "the heavy tail probes by hash");
///
/// // With no tail past the hash gate the plan degrades to the plain
/// // balanced one — never worse than `balanced`.
/// let mild: Vec<u32> = vec![25; 10_000];
/// assert_eq!(auto_bin_specs_hash(&mild), auto_bin_specs(&mild));
/// ```
pub fn auto_bin_specs_hash(work: &[u32]) -> Option<Vec<BinSpec>> {
    let m = work.len();
    if m == 0 {
        return None;
    }
    let mean = work.iter().map(|&w| w as u64).sum::<u64>() as f64 / m as f64;
    if mean < UNIFORM_MEAN_WORK {
        return None;
    }
    let heavy = work.iter().filter(|&&w| w >= HASH_MIN_WORK).count();
    if (heavy as f64) < TAIL_MIN_FRACTION * m as f64 {
        return auto_bin_specs(work);
    }
    Some(vec![
        BinSpec {
            max_work: HASH_MIN_WORK,
            width: LINE_WIDTH,
            hash: false,
        },
        BinSpec {
            max_work: u32::MAX,
            width: 32,
            hash: true,
        },
    ])
}

/// Bin specs for a schedule, or `None` when no plan should be built.
pub(crate) fn bin_specs(schedule: KernelSchedule, work: &[u32]) -> Option<Vec<BinSpec>> {
    match schedule {
        KernelSchedule::ThreadPerEdge => None,
        KernelSchedule::Balanced => auto_bin_specs(work),
        KernelSchedule::BalancedHash => auto_bin_specs_hash(work),
        KernelSchedule::BalancedFixed { threshold, width } => {
            if work.is_empty() {
                return None;
            }
            Some(vec![
                BinSpec {
                    max_work: threshold,
                    width: 1,
                    hash: false,
                },
                BinSpec {
                    max_work: u32::MAX,
                    width: width.max(1),
                    hash: false,
                },
            ])
        }
    }
}

/// Build the device-resident [`BinPlan`] for a preprocessed graph, or
/// `None` when the schedule needs none. Every data movement is charged:
///
/// 1. a work-estimate pass reads the edge endpoints and their four node
///    cells and writes packed `(work << 32) | edge` keys;
/// 2. [`sort_u64`] bins the keys (radix passes + the double-buffer peak,
///    exactly like preprocessing's edge sort);
/// 3. a gather pass reads the sorted keys and the endpoint arrays and
///    writes the bin-ordered `eu`/`ev` copies.
///
/// Bin boundaries are partition points of the sorted work values — the
/// tuner already knows the work multiset, so no extra device pass is
/// needed to find them.
pub(crate) fn build_plan(
    dev: &mut Device,
    pre: &Preprocessed,
    schedule: KernelSchedule,
) -> Result<Option<BinPlan>, CoreError> {
    let m = pre.m;
    // Host mirror of the oriented CSR: free *planning* reads (the tuner is
    // host code, like every launch-geometry decision); the charged passes
    // below do the actual device data movement.
    let owner = dev.peek(&pre.owner);
    let nbr = dev.peek(&pre.nbr);
    let node = dev.peek(&pre.node);
    let work = edge_work(&owner, &nbr, &node);
    let Some(specs) = bin_specs(schedule, &work) else {
        return Ok(None);
    };
    for spec in &specs {
        assert!(
            spec.width == 1 || dev.config().warp_size.is_multiple_of(spec.width),
            "virtual-warp width {} must divide the warp size {}",
            spec.width,
            dev.config().warp_size
        );
    }

    let mb = m as u64;
    // Pass 1: work-estimate keys. Reads eu/ev (8 B) + four node cells
    // (16 B) per edge, writes one u64 key per edge.
    let keys = dev.alloc::<u64>(m)?;
    let mut host_keys: Vec<u64> = work
        .iter()
        .enumerate()
        .map(|(i, &w)| ((w as u64) << 32) | i as u64)
        .collect();
    dev.poke(&keys, &host_keys);
    // The binning passes bill to named sub-phases of the caller's
    // `schedule` phase: `repro profile` must attribute this overhead to
    // scheduling, not fold it into whichever span is otherwise open.
    dev.with_phase("bin-sort", |d| {
        charge_transform_pass(d, "schedule: work-estimate keys", mb * 24, mb * 8)
    });

    // Pass 2: radix sort by (work, edge index) — the stable tiebreak keeps
    // the plan independent of anything but the graph.
    dev.with_phase("bin-sort", |d| sort_u64(d, &keys, m))?;
    host_keys.sort_unstable();

    // Pass 3: gather the bin-ordered endpoint arrays. Reads the sorted
    // keys (8 B) plus two scattered endpoint loads (8 B), writes 8 B.
    let eu = dev.alloc::<u32>(m)?;
    let ev = dev.alloc::<u32>(m)?;
    let gathered_u: Vec<u32> = host_keys
        .iter()
        .map(|&k| owner[(k & 0xffff_ffff) as usize])
        .collect();
    let gathered_v: Vec<u32> = host_keys
        .iter()
        .map(|&k| nbr[(k & 0xffff_ffff) as usize])
        .collect();
    dev.poke(&eu, &gathered_u);
    dev.poke(&ev, &gathered_v);
    dev.with_phase("bin-gather", |d| {
        charge_transform_pass(d, "schedule: bin gather", mb * 16, mb * 8)
    });
    dev.free(keys)?;

    // Bin boundaries: partition points of the sorted work sequence.
    let sorted_work: Vec<u32> = host_keys.iter().map(|&k| (k >> 32) as u32).collect();
    let mut bins = Vec::with_capacity(specs.len());
    let mut start = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        let end = if i + 1 == specs.len() {
            m
        } else {
            sorted_work.partition_point(|&w| w < spec.max_work)
        };
        bins.push(Bin {
            start,
            len: end - start,
            width: spec.width,
            hash: spec.hash,
        });
        start = end;
    }
    debug_assert_eq!(start, m, "bins must cover every edge");
    Ok(Some(BinPlan { eu, ev, bins }))
}

/// Free the plan's device buffers.
pub(crate) fn free_plan(dev: &mut Device, plan: &BinPlan) -> Result<(), CoreError> {
    dev.free(plan.eu)?;
    dev.free(plan.ev)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_per_edge_never_plans() {
        assert!(bin_specs(KernelSchedule::ThreadPerEdge, &[1, 2, 900]).is_none());
    }

    #[test]
    fn low_mean_work_tunes_to_no_plan() {
        // Regular low degrees (Watts–Strogatz regime): mean below the gate.
        let work: Vec<u32> = (0..1000).map(|i| 7 + (i % 3)).collect();
        assert!(auto_bin_specs(&work).is_none());
        assert!(auto_bin_specs(&[]).is_none());
        // Tiny degrees never profit, whatever the skew.
        assert!(auto_bin_specs(&[1, 1, 1, 32]).is_none());
    }

    #[test]
    fn heavy_tail_tunes_to_line_plus_wide_bin() {
        // A heavy tail (> 1% of edges at work ≥ TAIL_WORK) gets its own
        // wider chunk-scan bin.
        let mut work: Vec<u32> = vec![20; 5_000];
        work.extend([2000u32; 100]);
        let specs = auto_bin_specs(&work).expect("skewed graph must plan");
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].width, LINE_WIDTH);
        assert_eq!(specs[0].max_work, TAIL_WORK);
        assert_eq!(specs[1].width, 32);
        assert_eq!(specs[1].max_work, u32::MAX);
    }

    #[test]
    fn mid_work_without_tail_tunes_to_single_line_width_bin() {
        // Mean above the gate but no meaningful tail: one chunk-scan bin
        // at the line width serves everything.
        let mut work: Vec<u32> = vec![25; 10_000];
        work.extend([300u32; 10]); // tail < TAIL_MIN_FRACTION
        let specs = auto_bin_specs(&work).expect("mean above the gate");
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].width, LINE_WIDTH);
        assert_eq!(specs[0].max_work, u32::MAX);
    }

    #[test]
    fn tuner_is_deterministic() {
        let mut work: Vec<u32> = (0..5000).map(|i| (i * 2654435761u64 % 97) as u32).collect();
        work.extend([900u32; 20]);
        assert_eq!(auto_bin_specs(&work), auto_bin_specs(&work));
        assert_eq!(auto_bin_specs_hash(&work), auto_bin_specs_hash(&work));
    }

    #[test]
    fn hash_tuner_gives_the_heavy_tail_a_hash_bin() {
        let mut work: Vec<u32> = vec![20; 5_000];
        work.extend([2000u32; 100]);
        let specs = auto_bin_specs_hash(&work).expect("skewed graph must plan");
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].max_work, HASH_MIN_WORK);
        assert_eq!(specs[0].width, LINE_WIDTH);
        assert!(!specs[0].hash);
        assert_eq!(specs[1].max_work, u32::MAX);
        assert_eq!(specs[1].width, 32);
        assert!(specs[1].hash);
    }

    #[test]
    fn hash_tuner_degrades_gracefully() {
        // Mean above the gate but nothing at HASH_MIN_WORK: the plan is
        // exactly the plain balanced one (never worse than `balanced`).
        let work: Vec<u32> = vec![25; 10_000];
        assert_eq!(auto_bin_specs_hash(&work), auto_bin_specs(&work));
        assert!(auto_bin_specs_hash(&work).iter().flatten().all(|s| !s.hash));
        // Uniform low-degree still tunes to no plan at all.
        let low: Vec<u32> = (0..1000).map(|i| 7 + (i % 3)).collect();
        assert!(auto_bin_specs_hash(&low).is_none());
        assert!(auto_bin_specs_hash(&[]).is_none());
    }

    #[test]
    fn schedule_tokens_round_trip() {
        for s in [
            KernelSchedule::Balanced,
            KernelSchedule::BalancedHash,
            KernelSchedule::BalancedFixed {
                threshold: 16,
                width: 8,
            },
            KernelSchedule::BalancedFixed {
                threshold: 0,
                width: 32,
            },
        ] {
            let suffix = s.token_suffix();
            let clause = suffix.strip_prefix('/').unwrap();
            assert_eq!(KernelSchedule::parse_clause(clause), Some(s), "{suffix}");
        }
        assert_eq!(KernelSchedule::ThreadPerEdge.token_suffix(), "");
        for bad in [
            "balanced:",
            "balanced:8",
            "balanced:8x3",
            "balanced:x8",
            "balanced+",
            "balanced+hash:8",
            "hash",
            "split:2",
        ] {
            assert_eq!(KernelSchedule::parse_clause(bad), None, "{bad:?}");
        }
        // Width 1 is legal in the fixed form: an all-light (sorted) plan.
        assert_eq!(
            KernelSchedule::parse_clause("balanced:9x1"),
            Some(KernelSchedule::BalancedFixed {
                threshold: 9,
                width: 1
            })
        );
    }

    #[test]
    fn edge_work_takes_the_min_out_degree() {
        // CSR: v0 -> [1,2,3], v1 -> [2], v2 -> [], v3 -> []
        let node = vec![0u32, 3, 4, 4, 4];
        let owner = vec![0u32, 0, 0, 1];
        let nbr = vec![1u32, 2, 3, 2];
        assert_eq!(edge_work(&owner, &nbr, &node), vec![1, 0, 0, 0]);
    }
}
