//! Sharded cluster counting: DistTC-style partition-aware ownership.
//!
//! The paper's multi-GPU scheme (§III-E, [`super::multi`]) broadcasts the
//! whole oriented CSR to every device, so the largest countable graph is
//! capped by *single-device* memory no matter how many cards participate.
//! Distributed triangle counters (DistTC, TRUST) scale past that by
//! *partitioning* edge ownership: each device holds only the arcs it owns
//! plus the boundary adjacency those arcs' intersections read.
//!
//! This module is that scheme on the simulated cluster of
//! [`tc_simt::cluster`]:
//!
//! 1. the host orients the graph globally (the same degree order the GPU
//!    preprocessing produces, so per-arc counts are independent of the
//!    partition);
//! 2. the oriented arcs are split into one shard per device — 1D
//!    contiguous owner ranges or a 2D (owner, target) grid, both balanced
//!    by the scheduler's per-edge work estimate
//!    ([`crate::gpu::schedule::edge_work`]);
//! 3. each shard becomes a compact sub-CSR — local endpoint indices over
//!    the shard's referenced-vertex set, adjacency values kept *global* so
//!    intersections compare true vertex ids — and is uploaded to its
//!    device, crossing the modeled interconnect for nodes past the first;
//! 4. every device runs the existing merge / chunk-scan / hash kernels
//!    over its shard (per-shard bin plans reuse the same static tuner);
//! 5. the per-shard counts merge in flat device-index order, each remote
//!    shard charging one interconnect message — a fixed summation order,
//!    so the total is byte-identical across runs and worker counts.
//!
//! **Exactness.** Orientation happens once, globally, before partitioning;
//! the shards partition the oriented arc multiset. The forward algorithm's
//! per-arc count `|N⁺(u) ∩ N⁺(v)|` depends only on the two full adjacency
//! rows, which every owning shard replicates in full. Summing disjoint
//! per-arc counts therefore reproduces the single-device total exactly —
//! not approximately — whatever the topology.

use std::fmt;

use tc_graph::{Csr, EdgeArray, Orientation};
use tc_simt::primitives::{charge_transform_pass, reduce_sum_u64, sort_u64};
use tc_simt::profiler::{relative_spans, ProfileReport, RelSpan};
use tc_simt::{
    Cluster, ClusterTopology, DeviceBuffer, Interconnect, KernelStats, LaunchConfig,
    SanitizerReport, VerifierReport,
};

use crate::count::GpuOptions;
use crate::error::{CoreError, ErrorContext};
use crate::gpu::count_kernel::{CountKernel, KernelArrays};
use crate::gpu::pipeline::RunTrace;
use crate::gpu::schedule::{bin_specs, Bin, BinPlan};
use crate::gpu::warp_centric::{
    hash_scratch_len, hash_shared_slots, IntersectStrategy, WarpCentricKernel,
};
use crate::gpu::EdgeLayout;

/// How the oriented arcs are split across the cluster's devices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterPartition {
    /// 1D: contiguous owner-vertex ranges, one per device, balanced by the
    /// per-edge work estimate. Low replication (each shard's owner rows
    /// appear exactly once cluster-wide) but boundary targets are
    /// replicated wherever they are referenced.
    #[default]
    OneD,
    /// 2D: an N×M grid — owner-vertex row blocks (one per node) × target-
    /// vertex column blocks (one per device within the node). Bounds the
    /// per-shard referenced-vertex set by a row block plus a column block,
    /// the classic 2D decomposition of DistTC-style counters.
    TwoD,
}

impl ClusterPartition {
    /// The backend-token suffix selecting this partition (`""` for the
    /// default 1D, `":2d"` for 2D).
    pub fn token_suffix(&self) -> &'static str {
        match self {
            ClusterPartition::OneD => "",
            ClusterPartition::TwoD => ":2d",
        }
    }

    /// Short lowercase label (`"1d"` / `"2d"`) for reports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            ClusterPartition::OneD => "1d",
            ClusterPartition::TwoD => "2d",
        }
    }
}

impl fmt::Display for ClusterPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One shard's host-side arrays, ready for upload.
struct HostShard {
    /// Local owner indices into the shard's referenced-vertex set.
    eu: Vec<u32>,
    /// Local target indices.
    ev: Vec<u32>,
    /// Local CSR offsets over the referenced vertices' full rows.
    node: Vec<u32>,
    /// Concatenated adjacency rows — values stay *global* vertex ids, so
    /// intersection-by-value is exact across shards.
    nbr: Vec<u32>,
    /// Per-arc work estimate (min endpoint out-degree), for the bin plan.
    work: Vec<u32>,
}

impl HostShard {
    fn arcs(&self) -> usize {
        self.eu.len()
    }

    fn total_work(&self) -> u64 {
        self.work.iter().map(|&w| w as u64).sum()
    }
}

/// Split `[0, n)` into `parts` contiguous blocks balanced by the prefix
/// weight array (`prefix[i]` = total weight of vertices `< i`). Returns
/// the `parts + 1` block starts. Deterministic: targets are exact integer
/// fractions of the total, boundaries their partition points.
fn balanced_blocks(prefix: &[u64], parts: usize) -> Vec<usize> {
    let n = prefix.len() - 1;
    let total = prefix[n];
    let mut starts = Vec::with_capacity(parts + 1);
    starts.push(0);
    for s in 1..parts {
        let target = total * s as u64 / parts as u64;
        starts.push(prefix.partition_point(|&x| x < target).min(n));
    }
    starts.push(n);
    starts
}

/// The block a vertex falls in, given the block starts.
#[inline]
fn block_of(starts: &[usize], v: u32) -> usize {
    starts.partition_point(|&b| b <= v as usize) - 1
}

/// Partition the oriented CSR into one [`HostShard`] per device.
fn build_shards(
    csr: &Csr,
    topology: ClusterTopology,
    partition: ClusterPartition,
) -> Vec<HostShard> {
    let n = csr.num_nodes();
    let shards_total = topology.num_devices();
    let deg = |v: u32| csr.degree(v);

    // Per-vertex work: the sum of this row's per-arc estimates — exactly
    // what the balanced scheduler bins by, reused at the partition level.
    let mut work_prefix = Vec::with_capacity(n + 1);
    work_prefix.push(0u64);
    let mut acc = 0u64;
    for u in 0..n as u32 {
        for &v in csr.neighbors(u) {
            acc += deg(u).min(deg(v)) as u64;
        }
        work_prefix.push(acc);
    }

    // The shard index of each arc.
    let shard_of: Box<dyn Fn(u32, u32) -> usize> = match partition {
        ClusterPartition::OneD => {
            let starts = balanced_blocks(&work_prefix, shards_total);
            Box::new(move |u, _v| block_of(&starts, u))
        }
        ClusterPartition::TwoD => {
            // Rows: owner blocks balanced by work, one per node. Columns:
            // target blocks balanced by oriented in-degree (arcs landing in
            // the block), one per device within a node.
            let row_starts = balanced_blocks(&work_prefix, topology.nodes);
            let mut indeg = vec![0u64; n];
            for &v in csr.targets() {
                indeg[v as usize] += 1;
            }
            let mut indeg_prefix = Vec::with_capacity(n + 1);
            indeg_prefix.push(0u64);
            let mut acc = 0u64;
            for d in indeg {
                acc += d;
                indeg_prefix.push(acc);
            }
            let col_starts = balanced_blocks(&indeg_prefix, topology.devices_per_node);
            let cols = topology.devices_per_node;
            Box::new(move |u, v| block_of(&row_starts, u) * cols + block_of(&col_starts, v))
        }
    };

    // Assign arcs in global CSR order (owner ascending, target ascending
    // within a row) — the shard arc order is a pure function of the graph.
    let mut arcs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards_total];
    for u in 0..n as u32 {
        for &v in csr.neighbors(u) {
            arcs[shard_of(u, v)].push((u, v));
        }
    }

    arcs.into_iter()
        .map(|list| {
            // Referenced vertices: every endpoint, sorted ascending by
            // global id — the shard's local id space.
            let mut verts: Vec<u32> = list.iter().flat_map(|&(u, v)| [u, v]).collect();
            verts.sort_unstable();
            verts.dedup();
            let local = |x: u32| verts.binary_search(&x).expect("endpoint in vertex set") as u32;
            let mut node = Vec::with_capacity(verts.len() + 1);
            node.push(0u32);
            let mut nbr = Vec::new();
            for &v in &verts {
                nbr.extend_from_slice(csr.neighbors(v));
                node.push(nbr.len() as u32);
            }
            let eu: Vec<u32> = list.iter().map(|&(u, _)| local(u)).collect();
            let ev: Vec<u32> = list.iter().map(|&(_, v)| local(v)).collect();
            let work: Vec<u32> = list.iter().map(|&(u, v)| deg(u).min(deg(v))).collect();
            HostShard {
                eu,
                ev,
                node,
                nbr,
                work,
            }
        })
        .collect()
}

/// One shard resident on its device.
#[derive(Debug)]
struct ShardOnDevice {
    m: usize,
    eu: DeviceBuffer<u32>,
    ev: DeviceBuffer<u32>,
    node: DeviceBuffer<u32>,
    nbr: DeviceBuffer<u32>,
    result: DeviceBuffer<u64>,
    plan: Option<BinPlan>,
    hash_scratch: Option<DeviceBuffer<u32>>,
}

/// A graph sharded across a simulated cluster, ready to serve counts —
/// the cluster analog of [`super::prepared::PreparedGraph`].
#[derive(Debug)]
pub struct PreparedCluster {
    cluster: Cluster,
    opts: GpuOptions,
    partition: ClusterPartition,
    lc: LaunchConfig,
    total_threads: usize,
    shards: Vec<ShardOnDevice>,
    per_shard_arcs: Vec<usize>,
    imbalance: f64,
    digest: u64,
    prepare_s: f64,
    prepare_trace: Vec<RelSpan>,
    counts_served: u64,
}

/// One count served from a [`PreparedCluster`]: the per-shard kernel
/// phases plus the internode merge.
#[derive(Clone, Debug)]
pub struct ClusterCount {
    pub triangles: u64,
    /// Modeled seconds of this count: the slowest shard's kernel + reduce
    /// + merge-message window (shards run in parallel).
    pub count_s: f64,
    /// Per-shard modeled seconds, flat device order.
    pub per_shard_s: Vec<f64>,
    /// The slowest kernel launch across every shard and bin.
    pub kernel: KernelStats,
    /// Merged per-shard profile of exactly this count's ops.
    pub profile: ProfileReport,
    /// Per-shard spans on a clock-base-free relative timeline, flat device
    /// order (paths `shard-count/...`, `internode-merge`).
    pub trace: Vec<RelSpan>,
}

impl PreparedCluster {
    /// Shard `g` across a fresh `topology.num_devices()`-device cluster:
    /// orient globally on the host, partition the oriented arcs, upload
    /// each shard (crossing the modeled interconnect for nodes past the
    /// first), and build per-shard bin plans.
    pub fn prepare(
        g: &EdgeArray,
        opts: &GpuOptions,
        topology: ClusterTopology,
        partition: ClusterPartition,
    ) -> Result<PreparedCluster, CoreError> {
        assert!(
            opts.layout == EdgeLayout::SoA,
            "the cluster path dispatches gathered endpoint arrays (SoA only)"
        );
        // The per-run sanitizer request folds into the device preset so
        // every shard device installs its shadow map at construction.
        let mut cfg = opts.device.clone();
        cfg.sanitizer = cfg.sanitizer.max(opts.sanitizer);
        cfg.verifier = cfg.verifier || opts.verify;
        let mut cluster = Cluster::homogeneous(topology, Interconnect::default(), &cfg);
        if opts.preinit_context {
            cluster.preinit_all();
        }
        cluster.reset_clocks();

        let lc = opts
            .launch
            .unwrap_or_else(|| cluster.device(0).config().paper_launch());
        let lc = LaunchConfig {
            blocks: lc.blocks * opts.warp_split,
            threads_per_block: lc.threads_per_block,
            warp_split: opts.warp_split,
        };
        let total_threads = lc.active_threads(cluster.device(0).config().warp_size);

        // ---- global orientation on the host ----
        // The cluster front-end plays DistTC's distributed loader: the
        // orientation (and the optional degree-descending relabel) happens
        // once, host-side, before any shard exists — so every shard
        // partitions the *same* oriented arc multiset and per-arc counts
        // cannot depend on the topology. The modeled device window starts
        // at the shard uploads.
        let orient = if opts.reorder {
            let ranks = reorder_ranks(g);
            Orientation::forward_with_ranks(g, &ranks)?
        } else {
            Orientation::forward(g)?
        };
        let host_shards = build_shards(&orient.csr, topology, partition);
        let per_shard_arcs: Vec<usize> = host_shards.iter().map(HostShard::arcs).collect();
        let shard_works: Vec<u64> = host_shards.iter().map(HostShard::total_work).collect();
        let total_work: u64 = shard_works.iter().sum();
        let imbalance = if total_work == 0 {
            1.0
        } else {
            let mean = total_work as f64 / shard_works.len() as f64;
            shard_works.iter().copied().max().unwrap_or(0) as f64 / mean
        };

        // ---- per-shard upload + schedule ----
        let mut shards = Vec::with_capacity(host_shards.len());
        for (i, hs) in host_shards.iter().enumerate() {
            let built = upload_shard(&mut cluster, i, hs, opts, total_threads);
            let built = built.map_err(|e| {
                e.with_context(ErrorContext {
                    device: Some(format!(
                        "{} (node {}, device {})",
                        cluster.device(i).config().name,
                        topology.node_of(i),
                        i
                    )),
                    phase: Some("shard-partition".into()),
                    ..Default::default()
                })
            })?;
            shards.push(built);
        }

        let prepare_s = cluster.elapsed_max();
        let prepare_trace: Vec<RelSpan> = (0..shards.len())
            .flat_map(|i| {
                let dev = cluster.device(i);
                relative_spans(dev.spans(), dev.time_log(), 0, 0)
            })
            .collect();
        Ok(PreparedCluster {
            cluster,
            opts: opts.clone(),
            partition,
            lc,
            total_threads,
            shards,
            per_shard_arcs,
            imbalance,
            digest: g.digest(),
            prepare_s,
            prepare_trace,
            counts_served: 0,
        })
    }

    /// Run the counting phase: every shard dispatches its kernels (bin
    /// plan or single gathered launch), reduces, and sends its partial to
    /// the merge in flat device-index order.
    pub fn count(&mut self) -> Result<ClusterCount, CoreError> {
        let s = self.shards.len();
        let span_marks: Vec<usize> = (0..s)
            .map(|i| self.cluster.device(i).spans().len())
            .collect();
        let log_marks: Vec<usize> = (0..s)
            .map(|i| self.cluster.device(i).time_log().len())
            .collect();
        let counters0: Vec<_> = (0..s).map(|i| *self.cluster.device(i).counters()).collect();

        let mut triangles = 0u64;
        let mut slowest: Option<KernelStats> = None;
        for i in 0..s {
            self.cluster.device_mut(i).push_phase("shard-count");
            let counted = self.count_shard(i);
            let (t, stats) = match counted {
                Ok(pair) => pair,
                Err(e) => {
                    self.cluster.device_mut(i).pop_phase();
                    return Err(e.with_context(ErrorContext {
                        device: Some(self.cluster.device(i).config().name.to_string()),
                        phase: Some("shard-count".into()),
                        ..Default::default()
                    }));
                }
            };
            self.cluster.device_mut(i).pop_phase();
            // Deterministic merge: partials sum in flat device-index order
            // (u64 addition is associative, but the fixed order keeps the
            // *protocol* — and so every charged message — identical across
            // runs and worker counts).
            triangles += t;
            if let Some(stats) = stats {
                if slowest.as_ref().is_none_or(|sl| stats.time_s > sl.time_s) {
                    slowest = Some(stats);
                }
            }
        }
        // The merge: each shard off node 0 sends its 8-byte partial over
        // the interconnect (one message; latency-dominated).
        for i in 0..s {
            self.cluster.device_mut(i).push_phase("internode-merge");
            self.cluster
                .charge_internode(i, 8, "internode: result send");
            self.cluster.device_mut(i).pop_phase();
        }
        self.counts_served += 1;

        // Per-shard modeled seconds: sum of this count's op durations —
        // clock-base-free, like the single-device path.
        let per_shard_s: Vec<f64> = (0..s)
            .map(|i| {
                self.cluster.device(i).time_log()[log_marks[i]..]
                    .iter()
                    .map(|op| op.seconds)
                    .sum()
            })
            .collect();
        let count_s = per_shard_s.iter().copied().fold(0.0, f64::max);
        let profiles: Vec<ProfileReport> = (0..s)
            .map(|i| {
                let dev = self.cluster.device(i);
                ProfileReport {
                    device: dev.config().name.to_string(),
                    peak_bandwidth_gbs: dev.config().dram_bandwidth_gbs,
                    devices: 1,
                    total_s: per_shard_s[i],
                    totals: dev.counters().delta(&counters0[i]),
                    spans: dev.spans()[span_marks[i]..].to_vec(),
                }
            })
            .collect();
        let trace: Vec<RelSpan> = (0..s)
            .flat_map(|i| {
                let dev = self.cluster.device(i);
                relative_spans(dev.spans(), dev.time_log(), span_marks[i], log_marks[i])
            })
            .collect();
        Ok(ClusterCount {
            triangles,
            count_s,
            per_shard_s,
            kernel: slowest.unwrap_or_default(),
            profile: ProfileReport::merged(&profiles),
            trace,
        })
    }

    /// Dispatch one shard's kernels; returns its partial count and the
    /// slowest launch (if any ran — empty shards launch nothing).
    fn count_shard(&mut self, i: usize) -> Result<(u64, Option<KernelStats>), CoreError> {
        let shard = &self.shards[i];
        let (m, eu, ev, node, nbr, result) = (
            shard.m,
            shard.eu,
            shard.ev,
            shard.node,
            shard.nbr,
            shard.result,
        );
        let (plan, hash_scratch) = (shard.plan.clone(), shard.hash_scratch);
        let lc = self.lc;
        let total_threads = self.total_threads;
        let dev = self.cluster.device_mut(i);
        if m == 0 {
            return Ok((0, None));
        }
        let mut triangles = 0u64;
        let mut slowest: Option<KernelStats> = None;
        let dispatch = |dev: &mut tc_simt::Device,
                        eu: DeviceBuffer<u32>,
                        ev: DeviceBuffer<u32>,
                        bin: Bin|
         -> Result<KernelStats, CoreError> {
            dev.poke(&result, &vec![0u64; total_threads]);
            if bin.width == 1 {
                let kernel = CountKernel {
                    arrays: KernelArrays::Gathered { eu, ev, adj: nbr },
                    node,
                    result,
                    offset: bin.start,
                    count: bin.len,
                    variant: self.opts.kernel,
                    use_texture_cache: self.opts.use_texture_cache,
                };
                Ok(dev.with_phase("count-kernel", |d| {
                    d.launch("CountTriangles(shard)", lc, &kernel)
                })?)
            } else {
                let kernel = WarpCentricKernel {
                    adj: nbr,
                    edge_u: eu,
                    edge_v: ev,
                    node,
                    result,
                    offset: bin.start,
                    count: bin.len,
                    virtual_warp: bin.width,
                    use_texture_cache: self.opts.use_texture_cache,
                    strategy: if bin.hash {
                        IntersectStrategy::Hash
                    } else {
                        IntersectStrategy::ChunkScan
                    },
                    scratch: if bin.hash { hash_scratch } else { None },
                    shared_slots: if bin.hash {
                        hash_shared_slots(dev.config(), lc.threads_per_block, bin.width)
                    } else {
                        0
                    },
                };
                let label = if bin.hash {
                    "CountTrianglesWarpHash(shard)"
                } else {
                    "CountTrianglesWarp(shard)"
                };
                Ok(dev.with_phase("count-kernel", |d| d.launch(label, lc, &kernel))?)
            }
        };
        match plan {
            Some(plan) => {
                for bin in plan.occupied() {
                    let stats = dispatch(dev, plan.eu, plan.ev, *bin)?;
                    triangles += dev.with_phase("reduce", |d| reduce_sum_u64(d, &result));
                    if slowest.as_ref().is_none_or(|s| stats.time_s > s.time_s) {
                        slowest = Some(stats);
                    }
                }
            }
            None => {
                let whole = Bin {
                    start: 0,
                    len: m,
                    width: 1,
                    hash: false,
                };
                let stats = dispatch(dev, eu, ev, whole)?;
                triangles += dev.with_phase("reduce", |d| reduce_sum_u64(d, &result));
                slowest = Some(stats);
            }
        }
        Ok((triangles, slowest))
    }

    /// Free every device buffer on every shard. The cluster's devices are
    /// dropped with the session (unlike the single-device path there is no
    /// pool to hand them back to — a cluster session owns its devices).
    pub fn release(mut self) -> Result<(), CoreError> {
        for i in 0..self.shards.len() {
            let shard = &mut self.shards[i];
            let plan = shard.plan.take();
            let scratch = shard.hash_scratch.take();
            let (eu, ev, node, nbr, result) =
                (shard.eu, shard.ev, shard.node, shard.nbr, shard.result);
            let dev = self.cluster.device_mut(i);
            if let Some(plan) = plan {
                dev.free(plan.eu)?;
                dev.free(plan.ev)?;
            }
            if let Some(scratch) = scratch {
                dev.free(scratch)?;
            }
            dev.free(result)?;
            dev.free(eu)?;
            dev.free(ev)?;
            dev.free(node)?;
            dev.free(nbr)?;
        }
        Ok(())
    }

    /// Content digest of the sharded graph (cache key material).
    #[inline]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Modeled seconds of the shard-partition window (uploads + interconnect
    /// + per-shard bin plans; the slowest device).
    #[inline]
    pub fn prepare_s(&self) -> f64 {
        self.prepare_s
    }

    /// The prepare window's spans (`shard-partition` and children) across
    /// every shard, flat device order, on a clock-base-free timeline.
    #[inline]
    pub fn prepare_trace(&self) -> &[RelSpan] {
        &self.prepare_trace
    }

    /// How many counts this cluster session has served.
    #[inline]
    pub fn counts_served(&self) -> u64 {
        self.counts_served
    }

    /// The cluster's shape.
    #[inline]
    pub fn topology(&self) -> ClusterTopology {
        self.cluster.topology()
    }

    /// The partition scheme in force.
    #[inline]
    pub fn partition(&self) -> ClusterPartition {
        self.partition
    }

    /// The options the shards were prepared under.
    #[inline]
    pub fn options(&self) -> &GpuOptions {
        &self.opts
    }

    /// Oriented arcs per shard, flat device order.
    #[inline]
    pub fn per_shard_arcs(&self) -> &[usize] {
        &self.per_shard_arcs
    }

    /// Max shard work over mean shard work (1.0 = perfectly balanced).
    #[inline]
    pub fn imbalance(&self) -> f64 {
        self.imbalance
    }

    /// The largest per-device peak memory footprint in bytes — the
    /// capacity each card of this topology would need.
    #[inline]
    pub fn max_resident_bytes(&self) -> u64 {
        self.cluster.mem_peak_max()
    }

    /// Per-device peak memory footprints, flat device order.
    pub fn per_shard_peak_bytes(&self) -> Vec<u64> {
        self.cluster.iter().map(|d| d.mem_peak()).collect()
    }

    /// Merged sanitizer findings across every shard device, flat device
    /// order (`None` when the sanitizer is off).
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        let reports: Vec<SanitizerReport> = self
            .cluster
            .iter()
            .filter_map(|d| d.sanitizer_report())
            .collect();
        if reports.is_empty() {
            None
        } else {
            Some(SanitizerReport::merged(&reports))
        }
    }

    /// Merged static launch-verifier reports across every shard device,
    /// flat device order (`None` when the verifier is off).
    pub fn verifier_report(&self) -> Option<VerifierReport> {
        let reports: Vec<VerifierReport> = self
            .cluster
            .iter()
            .filter_map(|d| d.verifier_report())
            .collect();
        if reports.is_empty() {
            None
        } else {
            Some(VerifierReport::merged(&reports))
        }
    }

    /// Per-device traces (for `--trace` / `--profile` on cluster runs).
    pub fn run_traces(&self) -> Vec<RunTrace> {
        (0..self.shards.len())
            .map(|i| {
                let dev = self.cluster.device(i);
                let node = self.cluster.topology().node_of(i);
                RunTrace {
                    device_name: format!("node{node}/gpu{i} ({})", dev.config().name),
                    log: dev.time_log().to_vec(),
                    spans: dev.spans().to_vec(),
                    profile: dev.profile(),
                }
            })
            .collect()
    }
}

/// Degree-descending relabel ranks (the `/reorder` permutation): vertices
/// sorted by (descending degree, ascending id), rank = position. A pure
/// relabeling — triangle counts are invariant under any vertex permutation.
fn reorder_ranks(g: &EdgeArray) -> Vec<u32> {
    let deg = g.degrees();
    let n = g.num_nodes();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (((u32::MAX - deg[v as usize]) as u64) << 32) | v as u64);
    let mut ranks = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        ranks[v as usize] = rank as u32;
    }
    ranks
}

/// Upload one shard and build its device-resident state: endpoint + CSR
/// arrays (interconnect charged for nodes past the first), the per-shard
/// bin plan (same charged passes as the single-device scheduler), the
/// result array, and hash scratch if the plan needs it.
fn upload_shard(
    cluster: &mut Cluster,
    i: usize,
    hs: &HostShard,
    opts: &GpuOptions,
    total_threads: usize,
) -> Result<ShardOnDevice, CoreError> {
    let m = hs.arcs();
    cluster.device_mut(i).push_phase("shard-partition");
    let out = upload_shard_inner(cluster, i, hs, opts, total_threads, m);
    cluster.device_mut(i).pop_phase();
    out
}

fn upload_shard_inner(
    cluster: &mut Cluster,
    i: usize,
    hs: &HostShard,
    opts: &GpuOptions,
    total_threads: usize,
    m: usize,
) -> Result<ShardOnDevice, CoreError> {
    let eu = cluster.htod_scatter(i, &hs.eu)?;
    let ev = cluster.htod_scatter(i, &hs.ev)?;
    let node = cluster.htod_scatter(i, &hs.node)?;
    let nbr = cluster.htod_scatter(i, &hs.nbr)?;

    // Per-shard bin plan: the same static tuner and the same charged
    // binning passes as `schedule::build_plan`, over the shard's arrays.
    let plan = build_shard_plan(cluster.device_mut(i), &hs.eu, &hs.ev, &hs.work, opts)?;

    let dev = cluster.device_mut(i);
    let result = dev.alloc::<u64>(total_threads)?;
    let scratch_len = plan.as_ref().and_then(|p| {
        p.bins
            .iter()
            .filter(|b| b.hash && b.len > 0)
            .map(|b| hash_scratch_len(total_threads, b.width))
            .max()
    });
    let hash_scratch = match scratch_len {
        Some(len) => Some(dev.alloc::<u32>(len)?),
        None => None,
    };
    Ok(ShardOnDevice {
        m,
        eu,
        ev,
        node,
        nbr,
        result,
        plan,
        hash_scratch,
    })
}

/// The shard-local analog of [`crate::gpu::schedule::build_plan`]: same
/// tuner, same charged passes (work-estimate keys, radix sort, gather),
/// over the shard's local endpoint arrays.
fn build_shard_plan(
    dev: &mut tc_simt::Device,
    eu: &[u32],
    ev: &[u32],
    work: &[u32],
    opts: &GpuOptions,
) -> Result<Option<BinPlan>, CoreError> {
    let m = work.len();
    let Some(specs) = bin_specs(opts.schedule, work) else {
        return Ok(None);
    };
    for spec in &specs {
        assert!(
            spec.width == 1 || dev.config().warp_size.is_multiple_of(spec.width),
            "virtual-warp width {} must divide the warp size {}",
            spec.width,
            dev.config().warp_size
        );
    }
    let mb = m as u64;
    let keys = dev.alloc::<u64>(m)?;
    let mut host_keys: Vec<u64> = work
        .iter()
        .enumerate()
        .map(|(i, &w)| ((w as u64) << 32) | i as u64)
        .collect();
    dev.poke(&keys, &host_keys);
    dev.with_phase("bin-sort", |d| {
        charge_transform_pass(d, "schedule: work-estimate keys", mb * 24, mb * 8)
    });
    dev.with_phase("bin-sort", |d| sort_u64(d, &keys, m))?;
    host_keys.sort_unstable();

    let gathered_eu = dev.alloc::<u32>(m)?;
    let gathered_ev = dev.alloc::<u32>(m)?;
    let gathered_u: Vec<u32> = host_keys
        .iter()
        .map(|&k| eu[(k & 0xffff_ffff) as usize])
        .collect();
    let gathered_v: Vec<u32> = host_keys
        .iter()
        .map(|&k| ev[(k & 0xffff_ffff) as usize])
        .collect();
    dev.poke(&gathered_eu, &gathered_u);
    dev.poke(&gathered_ev, &gathered_v);
    dev.with_phase("bin-gather", |d| {
        charge_transform_pass(d, "schedule: bin gather", mb * 16, mb * 8)
    });
    dev.free(keys)?;

    let sorted_work: Vec<u32> = host_keys.iter().map(|&k| (k >> 32) as u32).collect();
    let mut bins = Vec::with_capacity(specs.len());
    let mut start = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        let end = if i + 1 == specs.len() {
            m
        } else {
            sorted_work.partition_point(|&w| w < spec.max_work)
        };
        bins.push(Bin {
            start,
            len: end - start,
            width: spec.width,
            hash: spec.hash,
        });
        start = end;
    }
    debug_assert_eq!(start, m, "bins must cover every shard arc");
    Ok(Some(BinPlan {
        eu: gathered_eu,
        ev: gathered_ev,
        bins,
    }))
}

/// Results of a one-shot cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    pub triangles: u64,
    /// Modeled wall time: shard-partition window + the slowest shard's
    /// count-plus-merge window.
    pub total_s: f64,
    /// The shard-partition window (uploads + interconnect + bin plans).
    pub partition_s: f64,
    /// The slowest shard's count window.
    pub count_s: f64,
    pub nodes: usize,
    pub devices_per_node: usize,
    pub partition: ClusterPartition,
    /// Oriented arcs owned per shard, flat device order.
    pub per_shard_arcs: Vec<usize>,
    /// Per-shard count seconds, flat device order.
    pub per_shard_s: Vec<f64>,
    /// Per-device peak resident bytes, flat device order.
    pub per_shard_peak_bytes: Vec<u64>,
    /// The largest per-device peak — the per-card capacity this topology
    /// needs.
    pub max_resident_bytes: u64,
    /// Max shard work over mean shard work (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// The slowest kernel launch across shards and bins.
    pub kernel: KernelStats,
    /// Merged sanitizer findings (`None` when off).
    pub sanitizer: Option<SanitizerReport>,
    /// Merged static launch-verifier reports (`None` when off).
    pub verifier: Option<VerifierReport>,
}

/// One-shot cluster run: prepare, one count, release.
pub fn run_cluster(
    g: &EdgeArray,
    opts: &GpuOptions,
    topology: ClusterTopology,
    partition: ClusterPartition,
) -> Result<ClusterReport, CoreError> {
    run_cluster_profiled(g, opts, topology, partition).map(|(report, _)| report)
}

/// Like [`run_cluster`] but also returns one [`RunTrace`] per device
/// (trace threads `node0/gpu0`, `node0/gpu1`, …).
pub fn run_cluster_profiled(
    g: &EdgeArray,
    opts: &GpuOptions,
    topology: ClusterTopology,
    partition: ClusterPartition,
) -> Result<(ClusterReport, Vec<RunTrace>), CoreError> {
    let mut prepared = PreparedCluster::prepare(g, opts, topology, partition)?;
    let count = prepared.count()?;
    let traces = prepared.run_traces();
    let report = ClusterReport {
        triangles: count.triangles,
        total_s: prepared.prepare_s() + count.count_s,
        partition_s: prepared.prepare_s(),
        count_s: count.count_s,
        nodes: topology.nodes,
        devices_per_node: topology.devices_per_node,
        partition,
        per_shard_arcs: prepared.per_shard_arcs().to_vec(),
        per_shard_s: count.per_shard_s.clone(),
        per_shard_peak_bytes: prepared.per_shard_peak_bytes(),
        max_resident_bytes: prepared.max_resident_bytes(),
        imbalance: prepared.imbalance(),
        kernel: count.kernel,
        sanitizer: prepared.sanitizer_report(),
        verifier: prepared.verifier_report(),
    };
    prepared.release()?;
    Ok((report, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::count_forward;
    use tc_simt::DeviceConfig;

    fn skewed_graph() -> EdgeArray {
        // A hub-heavy graph: enough skew that the balanced tuner engages.
        let mut pairs = Vec::new();
        for a in 0..64u32 {
            for b in (a + 1)..64 {
                if (a * 5 + b * 3) % 4 != 1 {
                    pairs.push((a, b));
                }
            }
        }
        for t in 64..160u32 {
            pairs.push((0, t));
            pairs.push((1, t));
        }
        EdgeArray::from_undirected_pairs(pairs)
    }

    fn opts() -> GpuOptions {
        GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory())
    }

    #[test]
    fn cluster_counts_match_cpu_across_topologies_and_partitions() {
        let g = skewed_graph();
        let want = count_forward(&g).unwrap();
        for (n, m) in [(1, 1), (1, 4), (2, 2), (4, 2)] {
            for partition in [ClusterPartition::OneD, ClusterPartition::TwoD] {
                let report =
                    run_cluster(&g, &opts(), ClusterTopology::new(n, m), partition).unwrap();
                assert_eq!(report.triangles, want, "{n}x{m} {partition}");
                assert_eq!(report.per_shard_arcs.iter().sum::<usize>(), g.num_edges());
                assert!(report.imbalance >= 1.0);
            }
        }
    }

    #[test]
    fn sharding_shrinks_the_per_device_footprint() {
        let g = skewed_graph();
        let one = run_cluster(
            &g,
            &opts(),
            ClusterTopology::new(1, 1),
            ClusterPartition::OneD,
        )
        .unwrap();
        let four = run_cluster(
            &g,
            &opts(),
            ClusterTopology::new(2, 2),
            ClusterPartition::OneD,
        )
        .unwrap();
        assert!(
            four.max_resident_bytes < one.max_resident_bytes,
            "2x2 peak {} !< 1x1 peak {}",
            four.max_resident_bytes,
            one.max_resident_bytes
        );
    }

    #[test]
    fn remote_nodes_pay_the_interconnect() {
        let g = skewed_graph();
        // Same shard layout, different node placement: 1x2 keeps both
        // devices on node 0, 2x1 puts the second shard across the wire.
        let local = run_cluster(
            &g,
            &opts(),
            ClusterTopology::new(1, 2),
            ClusterPartition::OneD,
        )
        .unwrap();
        let remote = run_cluster(
            &g,
            &opts(),
            ClusterTopology::new(2, 1),
            ClusterPartition::OneD,
        )
        .unwrap();
        assert_eq!(local.triangles, remote.triangles);
        assert!(
            remote.partition_s > local.partition_s,
            "crossing nodes must charge the interconnect: {} !> {}",
            remote.partition_s,
            local.partition_s
        );
    }

    #[test]
    fn prepared_cluster_serves_identical_repeated_counts() {
        let g = skewed_graph();
        let mut prepared = PreparedCluster::prepare(
            &g,
            &opts(),
            ClusterTopology::new(2, 2),
            ClusterPartition::OneD,
        )
        .unwrap();
        let first = prepared.count().unwrap();
        let second = prepared.count().unwrap();
        assert_eq!(first.triangles, second.triangles);
        assert_eq!(first.count_s, second.count_s);
        assert_eq!(first.per_shard_s, second.per_shard_s);
        assert_eq!(first.trace, second.trace);
        assert_eq!(prepared.counts_served(), 2);
        prepared.release().unwrap();
    }

    #[test]
    fn balanced_and_hash_schedules_shard_exactly() {
        let g = skewed_graph();
        let want = count_forward(&g).unwrap();
        let dev = DeviceConfig::gtx_980().with_unlimited_memory();
        for o in [
            GpuOptions::balanced(dev.clone()),
            GpuOptions::balanced_hash(dev),
        ] {
            for partition in [ClusterPartition::OneD, ClusterPartition::TwoD] {
                let report = run_cluster(&g, &o, ClusterTopology::new(2, 2), partition).unwrap();
                assert_eq!(report.triangles, want, "{} {partition}", o.schedule);
            }
        }
    }

    #[test]
    fn reorder_is_count_invariant_on_clusters() {
        let g = skewed_graph();
        let want = count_forward(&g).unwrap();
        let mut o = opts();
        o.reorder = true;
        let report =
            run_cluster(&g, &o, ClusterTopology::new(2, 2), ClusterPartition::TwoD).unwrap();
        assert_eq!(report.triangles, want);
    }

    #[test]
    fn empty_graph_shards_to_zero() {
        let report = run_cluster(
            &EdgeArray::default(),
            &opts(),
            ClusterTopology::new(2, 2),
            ClusterPartition::OneD,
        )
        .unwrap();
        assert_eq!(report.triangles, 0);
        assert_eq!(report.imbalance, 1.0);
    }

    #[test]
    fn balanced_blocks_cover_and_order() {
        let prefix: Vec<u64> = vec![0, 5, 5, 10, 30, 31];
        let starts = balanced_blocks(&prefix, 3);
        assert_eq!(starts.first(), Some(&0));
        assert_eq!(starts.last(), Some(&5));
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        for v in 0..5u32 {
            let b = block_of(&starts, v);
            assert!(b < 3);
            assert!(starts[b] <= v as usize && (v as usize) < starts[b + 1].max(starts[b] + 1));
        }
    }
}
