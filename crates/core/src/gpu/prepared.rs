//! The preprocess-once / count-many split of the paper's pipeline.
//!
//! The paper's measured window is dominated by the host-to-device copy and
//! the eight preprocessing steps (§III-B); the counting kernel itself is
//! often the minority of the wall time (preprocessing fraction 0.08–0.76,
//! §III-E). A serving deployment therefore wants to pay the copy and the
//! preprocessing **once** per graph and run the counting kernel per
//! request. [`PreparedGraph`] is that split: [`PreparedGraph::prepare`]
//! runs context bring-up plus steps 1–8 and keeps the sorted, compacted
//! SoA arrays resident on the device; [`PreparedGraph::count`] runs only
//! the kernel phases (`count-kernel` + `reduce`) and can be called any
//! number of times.
//!
//! The one-shot pipeline ([`crate::gpu::pipeline::run_gpu_pipeline`]) is
//! itself implemented as `prepare` + one `count` + [`PreparedGraph::release`],
//! so the two paths execute literally the same device operations — the
//! equivalence tests hold them to byte-identical counts and kernel-span
//! counters.

use tc_graph::EdgeArray;
use tc_simt::primitives::reduce_sum_u64;
use tc_simt::profiler::{relative_spans, ProfileReport, RelSpan};
use tc_simt::{Device, DeviceBuffer, KernelStats, LaunchConfig};

use crate::count::GpuOptions;
use crate::error::{CoreError, ErrorContext};
use crate::gpu::count_kernel::{CountKernel, KernelArrays};
use crate::gpu::preprocess::{free_preprocessed, preprocess_auto, Preprocessed};
use crate::gpu::schedule::{build_plan, free_plan, BinPlan};
use crate::gpu::warp_centric::{
    hash_scratch_len, hash_shared_slots, IntersectStrategy, WarpCentricKernel,
};
use crate::gpu::EdgeLayout;

/// A graph preprocessed onto a device, ready to serve counts.
#[derive(Debug)]
pub struct PreparedGraph {
    dev: Device,
    pre: Preprocessed,
    opts: GpuOptions,
    lc: LaunchConfig,
    total_threads: usize,
    result: DeviceBuffer<u64>,
    /// Balanced-scheduler bin plan (`None` under the default schedule, or
    /// when the auto-tuner found the graph uniform).
    plan: Option<BinPlan>,
    /// Global scratch backing the hash bins' per-virtual-warp table
    /// windows (`None` unless the plan has a hash bin). Allocated once at
    /// prepare so repeated counts see identical addresses.
    hash_scratch: Option<DeviceBuffer<u32>>,
    digest: u64,
    prepare_s: f64,
    /// The prepare window's phase spans on a clock-base-free nanosecond
    /// timeline (preprocess steps + scheduling), for request tracing.
    prepare_trace: Vec<RelSpan>,
    counts_served: u64,
}

/// One count served from a [`PreparedGraph`]: the kernel phases only.
#[derive(Clone, Debug)]
pub struct PreparedCount {
    pub triangles: u64,
    /// Modeled device seconds of this count (kernel + reduction).
    pub count_s: f64,
    /// Profile of the counting kernel launch.
    pub kernel: KernelStats,
    /// Per-count profile: exactly the spans and counter deltas charged by
    /// this count, for per-job attribution in the engine.
    pub profile: ProfileReport,
    /// The same spans on a clock-base-free nanosecond timeline (relative
    /// to the count's first op), byte-identical no matter how many counts
    /// the session served before — the engine's unified request traces
    /// embed these under the request's `count` stage.
    pub trace: Vec<RelSpan>,
}

impl PreparedGraph {
    /// Run the preprocessing phase on a fresh device (context bring-up
    /// included, like the one-shot pipeline).
    pub fn prepare(g: &EdgeArray, opts: &GpuOptions) -> Result<PreparedGraph, CoreError> {
        PreparedGraph::prepare_on(Device::new(opts.device.clone()), g, opts)
    }

    /// Run the preprocessing phase on `dev` — typically a warm device leased
    /// from a [`tc_simt::DevicePool`], whose already-created context makes
    /// `preinit_context` free. The device clock is reset, so
    /// [`PreparedGraph::prepare_s`] is this graph's cost regardless of what
    /// the device ran before.
    pub fn prepare_on(
        mut dev: Device,
        g: &EdgeArray,
        opts: &GpuOptions,
    ) -> Result<PreparedGraph, CoreError> {
        if opts.preinit_context {
            dev.preinit_context();
        }
        // Recycle rather than just reset: a pooled device whose previous
        // session freed everything rewinds its arena, so this session's
        // addresses — and therefore its modeled cache behavior — match a
        // cold device exactly.
        dev.recycle();
        // The effective sanitizer mode is the stricter of the request's and
        // the device config's. Installing it here (after the recycle, before
        // the first copy) puts the whole measured session — preprocessing,
        // scheduling, counting, release — under the shadow.
        dev.set_sanitizer_mode(opts.sanitizer.max(dev.config().sanitizer));
        // Likewise the static launch verifier: on when either the request
        // or the device config asks for it.
        dev.set_verifier(opts.verify || dev.config().verifier);

        // Launch geometry is fixed up front so preprocessing can reserve
        // room for the result array in its capacity plan.
        let lc = opts.launch.unwrap_or_else(|| dev.config().paper_launch());
        let lc = LaunchConfig {
            // §III-D5: the reduced-warp trick doubles the launched threads
            // so the active lane count stays constant.
            blocks: lc.blocks * opts.warp_split,
            threads_per_block: lc.threads_per_block,
            warp_split: opts.warp_split,
        };
        let total_threads = lc.active_threads(dev.config().warp_size);

        // ---- preprocessing phase (steps 1–8, §III-B) ----
        let keep_aos = opts.layout == EdgeLayout::AoS;
        dev.push_phase("preprocess");
        let pre = preprocess_auto(
            &mut dev,
            g,
            keep_aos,
            total_threads as u64 * 8,
            opts.reorder,
        );
        dev.pop_phase();
        let pre = pre.map_err(|e| {
            e.with_context(ErrorContext {
                device: Some(dev.config().name.to_string()),
                phase: Some("preprocess".into()),
                ..Default::default()
            })
        })?;

        // ---- scheduling phase: the balanced bin plan, charged once ----
        dev.push_phase("schedule");
        let plan = build_plan(&mut dev, &pre, opts.schedule);
        dev.pop_phase();
        let plan = plan.map_err(|e| {
            e.with_context(ErrorContext {
                device: Some(dev.config().name.to_string()),
                phase: Some("schedule".into()),
                ..Default::default()
            })
        })?;

        // The per-thread result array lives as long as the prepared graph;
        // counts re-zero it instead of reallocating, so repeated counts
        // see identical device addresses (and therefore identical cache
        // statistics).
        let result = dev.alloc::<u64>(total_threads).map_err(|e| {
            CoreError::from(e).with_context(ErrorContext {
                device: Some(dev.config().name.to_string()),
                phase: Some("prepare".into()),
                ..Default::default()
            })
        })?;

        // Hash bins need their global table scratch (one HASH_TABLE_SLOTS
        // window per virtual warp); sized for the widest demand across the
        // plan's hash bins.
        let scratch_len = plan.as_ref().and_then(|p| {
            p.bins
                .iter()
                .filter(|b| b.hash && b.len > 0)
                .map(|b| hash_scratch_len(total_threads, b.width))
                .max()
        });
        let hash_scratch = match scratch_len {
            Some(len) => Some(dev.alloc::<u32>(len).map_err(|e| {
                CoreError::from(e).with_context(ErrorContext {
                    device: Some(dev.config().name.to_string()),
                    phase: Some("prepare".into()),
                    ..Default::default()
                })
            })?),
            None => None,
        };

        let prepare_s = dev.elapsed() + pre.host_seconds;
        // The recycle above zeroed the clock, span list, and op log, so the
        // whole prepare window starts at op 0 — marks (0, 0) cover it.
        let prepare_trace = relative_spans(dev.spans(), dev.time_log(), 0, 0);
        Ok(PreparedGraph {
            dev,
            pre,
            opts: opts.clone(),
            lc,
            total_threads,
            result,
            plan,
            hash_scratch,
            digest: g.digest(),
            prepare_s,
            prepare_trace,
            counts_served: 0,
        })
    }

    /// Run the counting phase (§III-C): zero the result array, launch
    /// `CountTriangles`, reduce. Only kernel phases are charged; the
    /// preprocessing cost stays amortized in [`PreparedGraph::prepare_s`].
    ///
    /// Under a balanced schedule with a bin plan, one kernel runs per
    /// occupied bin — the merge kernel over the gathered light edges, the
    /// warp-centric kernel (per-bin virtual-warp width) over the heavy
    /// ones — and the partial reductions sum. [`PreparedCount::kernel`]
    /// then reports the slowest bin's launch (the representative stripe).
    pub fn count(&mut self) -> Result<PreparedCount, CoreError> {
        let span_mark = self.dev.spans().len();
        let log_mark = self.dev.time_log().len();
        let counters0 = *self.dev.counters();

        self.dev.push_phase("count");
        let counted = match self.plan.clone() {
            None => self.count_thread_per_edge(),
            Some(plan) => self.count_balanced(&plan),
        };
        let (triangles, kernel_stats) = match counted {
            Ok(pair) => pair,
            Err(e) => {
                self.dev.pop_phase();
                return Err(e.with_context(ErrorContext {
                    device: Some(self.dev.config().name.to_string()),
                    phase: Some("count".into()),
                    ..Default::default()
                }));
            }
        };
        self.dev.pop_phase();
        self.counts_served += 1;

        // Sum the modeled durations of this count's ops rather than taking
        // an elapsed-clock delta: each duration is schedule-independent,
        // but the clock base is not (the subtraction rounds differently as
        // the session clock grows), and the engine promises bit-identical
        // `count_s` no matter how many counts the session served before.
        let count_s: f64 = self.dev.time_log()[log_mark..]
            .iter()
            .map(|op| op.seconds)
            .sum();
        let profile = ProfileReport {
            device: self.dev.config().name.to_string(),
            peak_bandwidth_gbs: self.dev.config().dram_bandwidth_gbs,
            devices: 1,
            total_s: count_s,
            totals: self.dev.counters().delta(&counters0),
            spans: self.dev.spans()[span_mark..].to_vec(),
        };
        let trace = relative_spans(self.dev.spans(), self.dev.time_log(), span_mark, log_mark);
        Ok(PreparedCount {
            triangles,
            count_s,
            kernel: kernel_stats,
            profile,
            trace,
        })
    }

    /// The paper's single thread-per-edge launch (§III-C).
    fn count_thread_per_edge(&mut self) -> Result<(u64, KernelStats), CoreError> {
        self.dev.poke(&self.result, &vec![0u64; self.total_threads]);
        let arrays = match self.opts.layout {
            EdgeLayout::SoA => KernelArrays::SoA {
                nbr: self.pre.nbr,
                owner: self.pre.owner,
            },
            EdgeLayout::AoS => KernelArrays::AoS {
                arcs: self.pre.arcs_aos.expect("AoS layout retains packed arcs"),
            },
        };
        let kernel = CountKernel {
            arrays,
            node: self.pre.node,
            result: self.result,
            offset: 0,
            count: self.pre.m,
            variant: self.opts.kernel,
            use_texture_cache: self.opts.use_texture_cache,
        };
        let lc = self.lc;
        let stats = self
            .dev
            .with_phase("count-kernel", |d| d.launch("CountTriangles", lc, &kernel))?;
        let result = self.result;
        let triangles = self
            .dev
            .with_phase("reduce", |d| reduce_sum_u64(d, &result));
        Ok((triangles, stats))
    }

    /// The balanced scheduler's dispatch: one launch + reduction per
    /// occupied bin, partials summed. Returns the slowest bin's stats.
    fn count_balanced(&mut self, plan: &BinPlan) -> Result<(u64, KernelStats), CoreError> {
        let lc = self.lc;
        let result = self.result;
        let mut triangles = 0u64;
        let mut slowest: Option<KernelStats> = None;
        for bin in plan.occupied() {
            self.dev.poke(&self.result, &vec![0u64; self.total_threads]);
            let stats = if bin.width == 1 {
                let kernel = CountKernel {
                    arrays: KernelArrays::Gathered {
                        eu: plan.eu,
                        ev: plan.ev,
                        adj: self.pre.nbr,
                    },
                    node: self.pre.node,
                    result,
                    offset: bin.start,
                    count: bin.len,
                    variant: self.opts.kernel,
                    use_texture_cache: self.opts.use_texture_cache,
                };
                self.dev.with_phase("count-kernel", |d| {
                    d.launch("CountTriangles(bin)", lc, &kernel)
                })?
            } else {
                let kernel = WarpCentricKernel {
                    adj: self.pre.nbr,
                    edge_u: plan.eu,
                    edge_v: plan.ev,
                    node: self.pre.node,
                    result,
                    offset: bin.start,
                    count: bin.len,
                    virtual_warp: bin.width,
                    use_texture_cache: self.opts.use_texture_cache,
                    strategy: if bin.hash {
                        IntersectStrategy::Hash
                    } else {
                        IntersectStrategy::ChunkScan
                    },
                    scratch: if bin.hash { self.hash_scratch } else { None },
                    shared_slots: if bin.hash {
                        hash_shared_slots(self.dev.config(), lc.threads_per_block, bin.width)
                    } else {
                        0
                    },
                };
                let label = if bin.hash {
                    "CountTrianglesWarpHash(bin)"
                } else {
                    "CountTrianglesWarp(bin)"
                };
                self.dev
                    .with_phase("count-kernel", |d| d.launch(label, lc, &kernel))?
            };
            triangles += self
                .dev
                .with_phase("reduce", |d| reduce_sum_u64(d, &result));
            if slowest.as_ref().is_none_or(|s| stats.time_s > s.time_s) {
                slowest = Some(stats);
            }
        }
        // An empty plan (m = 0) still answers: zero triangles, zero stats.
        Ok((triangles, slowest.unwrap_or_default()))
    }

    /// Free every device buffer this prepared graph holds and hand the
    /// (still warm) device back — e.g. to return it to a pool. The frees
    /// charge no simulated time, matching the paper's protocol where the
    /// measured window ends at the free.
    pub fn release(mut self) -> Result<Device, CoreError> {
        if let Some(plan) = self.plan.take() {
            free_plan(&mut self.dev, &plan)?;
        }
        if let Some(scratch) = self.hash_scratch.take() {
            self.dev.free(scratch)?;
        }
        self.dev.free(self.result)?;
        free_preprocessed(&mut self.dev, &self.pre)?;
        Ok(self.dev)
    }

    /// Content digest of the prepared graph (cache key material).
    #[inline]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Modeled seconds the preprocessing phase cost (charged once).
    #[inline]
    pub fn prepare_s(&self) -> f64 {
        self.prepare_s
    }

    /// The prepare window's phase spans (preprocess, schedule, and their
    /// children) on a clock-base-free nanosecond timeline. Byte-identical
    /// for the same graph and options no matter which pooled device ran it.
    #[inline]
    pub fn prepare_trace(&self) -> &[RelSpan] {
        &self.prepare_trace
    }

    /// How many counts this prepared graph has served.
    #[inline]
    pub fn counts_served(&self) -> u64 {
        self.counts_served
    }

    /// Whether preprocessing needed the §III-D6 CPU fallback.
    #[inline]
    pub fn used_cpu_fallback(&self) -> bool {
        self.pre.used_cpu_fallback
    }

    /// Oriented arc count (= undirected edges).
    #[inline]
    pub fn m_oriented(&self) -> usize {
        self.pre.m
    }

    /// Vertex count.
    #[inline]
    pub fn n(&self) -> usize {
        self.pre.n
    }

    /// Host seconds folded into `prepare_s` when the CPU fallback ran.
    #[inline]
    pub fn host_seconds(&self) -> f64 {
        self.pre.host_seconds
    }

    /// The options this graph was prepared under.
    #[inline]
    pub fn options(&self) -> &GpuOptions {
        &self.opts
    }

    /// The balanced scheduler's bin plan, if one was built (`None` under
    /// the default schedule or when the auto-tuner found the graph uniform).
    #[inline]
    pub fn bin_plan(&self) -> Option<&BinPlan> {
        self.plan.as_ref()
    }

    /// The underlying device (for reports, traces, and memory stats).
    #[inline]
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Sanitizer findings accumulated across prepare and every count so
    /// far (`None` when the sanitizer is off).
    #[inline]
    pub fn sanitizer_report(&self) -> Option<tc_simt::SanitizerReport> {
        self.dev.sanitizer_report()
    }

    /// Static launch-verifier report accumulated across prepare and every
    /// count so far (`None` when the verifier is off).
    #[inline]
    pub fn verifier_report(&self) -> Option<tc_simt::VerifierReport> {
        self.dev.verifier_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::count_forward;
    use tc_simt::DeviceConfig;

    fn diamond() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    fn opts() -> GpuOptions {
        GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory())
    }

    #[test]
    fn repeated_counts_are_identical_and_cheap() {
        let g = diamond();
        let mut prepared = PreparedGraph::prepare(&g, &opts()).unwrap();
        assert!(prepared.prepare_s() > 0.0);
        let first = prepared.count().unwrap();
        let second = prepared.count().unwrap();
        let third = prepared.count().unwrap();
        assert_eq!(first.triangles, 2);
        assert_eq!(second.triangles, 2);
        assert_eq!(third.triangles, 2);
        // Counts are deterministic replicas: same modeled time, same
        // kernel statistics, same per-count counter totals.
        assert_eq!(first.count_s, second.count_s);
        assert_eq!(second.count_s, third.count_s);
        assert_eq!(first.kernel, second.kernel);
        assert_eq!(first.profile.totals, second.profile.totals);
        assert_eq!(prepared.counts_served(), 3);
        // And each count is cheaper than preparing again.
        assert!(first.count_s < prepared.prepare_s());
    }

    #[test]
    fn per_count_profile_covers_only_kernel_phases() {
        let g = diamond();
        let mut prepared = PreparedGraph::prepare(&g, &opts()).unwrap();
        let c = prepared.count().unwrap();
        let paths: Vec<&str> = c.profile.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"count"));
        assert!(paths.contains(&"count/count-kernel"));
        assert!(paths.contains(&"count/reduce"));
        assert!(
            !paths.iter().any(|p| p.starts_with("preprocess")),
            "prepare spans must not leak into per-count profiles: {paths:?}"
        );
        assert!((c.profile.total_s - c.count_s).abs() < 1e-15);
    }

    #[test]
    fn release_returns_a_clean_warm_device() {
        let g = diamond();
        let mut prepared = PreparedGraph::prepare(&g, &opts()).unwrap();
        let _ = prepared.count().unwrap();
        let used_before_release = prepared.device().mem_used();
        assert!(used_before_release > 0);
        let mut dev = prepared.release().unwrap();
        assert_eq!(dev.mem_used(), 0, "release must free all buffers");
        // The device is reusable for another prepare without re-paying
        // context init.
        dev.reset_clock();
        let _ = dev.alloc::<u32>(8).unwrap();
        assert!(dev.elapsed() < 1e-3);
    }

    #[test]
    fn recycled_device_sessions_are_byte_identical_to_cold_ones() {
        let g = diamond();
        let mut cold = PreparedGraph::prepare(&g, &opts()).unwrap();
        let cold_count = cold.count().unwrap();
        let cold_prepare_s = cold.prepare_s();
        let dev = cold.release().unwrap();
        // Same device, second session: the arena rewind makes addresses —
        // and so every modeled statistic — identical to the cold run.
        let mut warm = PreparedGraph::prepare_on(dev, &g, &opts()).unwrap();
        let warm_count = warm.count().unwrap();
        assert_eq!(warm.prepare_s(), cold_prepare_s);
        assert_eq!(warm_count.count_s, cold_count.count_s);
        assert_eq!(warm_count.kernel, cold_count.kernel);
        assert_eq!(warm_count.profile.totals, cold_count.profile.totals);
        warm.release().unwrap();
    }

    #[test]
    fn prepared_count_matches_cpu() {
        let mut pairs = Vec::new();
        for a in 0..24u32 {
            for b in (a + 1)..24 {
                if (a * 3 + b * 7) % 5 != 0 {
                    pairs.push((a, b));
                }
            }
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let want = count_forward(&g).unwrap();
        for layout in [EdgeLayout::SoA, EdgeLayout::AoS] {
            let mut o = opts();
            o.layout = layout;
            let mut prepared = PreparedGraph::prepare(&g, &o).unwrap();
            assert_eq!(prepared.count().unwrap().triangles, want, "{layout:?}");
        }
    }

    #[test]
    fn prepare_errors_carry_device_and_phase_context() {
        let g = diamond();
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(40);
        let o = GpuOptions::new(cfg);
        let err = PreparedGraph::prepare(&g, &o).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("GTX 980"), "{msg}");
        assert!(msg.contains("preprocess"), "{msg}");
    }
}
