//! Graph splitting for out-of-capacity inputs — the first future-work
//! direction of §VI ("check if methods from \[5\], \[17\] can be applied … this
//! would allow to count triangles in graphs which do not fit into the GPU
//! memory").
//!
//! Implements the Suri–Vassilvitskii partition scheme \[5\]: vertices are
//! split into `p` contiguous id ranges; for every unordered triple of parts
//! `{a, b, c}` the subgraph induced on `Pa ∪ Pb ∪ Pc` is counted
//! independently (here: each subproblem through the ordinary single-GPU
//! pipeline, so each needs only its own — much smaller — slice of device
//! memory). A triangle with `d` distinct corner parts is found in several
//! subproblems:
//!
//! | d | triples containing it | pairs | singles |
//! |---|---|---|---|
//! | 3 | 1 | 0 | 0 |
//! | 2 | p − 2 | 1 | 0 |
//! | 1 | C(p−1, 2) | p − 1 | 1 |
//!
//! so running the pair and single subproblems too lets us solve for the
//! true total:
//! `n1 = t1`, `n2 = t2 − (p−1)·t1`, `n3 = t3 − (p−2)·n2 − C(p−1,2)·n1`.

use tc_graph::{Edge, EdgeArray};
use tc_simt::{SanitizerReport, VerifierReport};

use crate::count::GpuOptions;
use crate::error::CoreError;
use crate::gpu::pipeline::run_gpu_pipeline;

/// Outcome of a split run.
#[derive(Clone, Debug)]
pub struct SplitReport {
    pub triangles: u64,
    /// Sum of the modeled device times of all subproblems (they run
    /// sequentially on one device — the point is capacity, not speed).
    pub total_s: f64,
    /// Number of subproblems executed (`p + C(p,2) + C(p,3)`).
    pub subproblems: usize,
    /// Largest single-subproblem arc count — the quantity that must fit.
    pub max_subproblem_arcs: usize,
    /// Merged compute-sanitizer findings across every executed subproblem,
    /// in execution order (`None` when the sanitizer was off).
    pub sanitizer: Option<SanitizerReport>,
    /// Merged static launch-verifier reports across every executed
    /// subproblem, in execution order (`None` when the verifier was off).
    pub verifier: Option<VerifierReport>,
}

/// Partition id: contiguous ranges keep the induced-subgraph extraction a
/// single pass.
#[inline]
fn part_of(v: u32, n: usize, parts: usize) -> usize {
    debug_assert!((v as usize) < n.max(1));
    (v as usize * parts) / n.max(1)
}

/// Extract the subgraph induced on the union of the given parts.
fn induced(g: &EdgeArray, n: usize, parts: usize, keep: &[usize]) -> EdgeArray {
    let arcs: Vec<Edge> = g
        .arcs()
        .iter()
        .copied()
        .filter(|e| {
            keep.contains(&part_of(e.u, n, parts)) && keep.contains(&part_of(e.v, n, parts))
        })
        .collect();
    EdgeArray::from_arcs_unchecked(arcs)
}

/// Count triangles by splitting into `parts` vertex ranges and solving the
/// inclusion system above. `parts >= 3`; with `parts == 1` this degenerates
/// to the plain pipeline.
pub fn count_split(
    g: &EdgeArray,
    opts: &GpuOptions,
    parts: usize,
) -> Result<SplitReport, CoreError> {
    assert!(parts >= 1);
    let n = g.num_nodes();
    if parts == 1 || n == 0 {
        let r = run_gpu_pipeline(g, opts)?;
        return Ok(SplitReport {
            triangles: r.triangles,
            total_s: r.total_s,
            subproblems: 1,
            max_subproblem_arcs: g.num_arcs(),
            sanitizer: r.sanitizer,
            verifier: r.verifier,
        });
    }

    let mut total_s = 0.0;
    let mut subproblems = 0usize;
    let mut max_arcs = 0usize;
    let mut sub_reports: Vec<SanitizerReport> = Vec::new();
    let mut sub_verifier: Vec<VerifierReport> = Vec::new();
    let mut run = |keep: &[usize]| -> Result<u64, CoreError> {
        let sub = induced(g, n, parts, keep);
        max_arcs = max_arcs.max(sub.num_arcs());
        subproblems += 1;
        if sub.is_empty() {
            return Ok(0);
        }
        let r = run_gpu_pipeline(&sub, opts)?;
        total_s += r.total_s;
        sub_reports.extend(r.sanitizer);
        sub_verifier.extend(r.verifier);
        Ok(r.triangles)
    };

    let p = parts as u64;
    let mut t1 = 0u64;
    for a in 0..parts {
        t1 += run(&[a])?;
    }
    let mut t2 = 0u64;
    for a in 0..parts {
        for b in (a + 1)..parts {
            t2 += run(&[a, b])?;
        }
    }
    let mut t3 = 0u64;
    for a in 0..parts {
        for b in (a + 1)..parts {
            for c in (b + 1)..parts {
                t3 += run(&[a, b, c])?;
            }
        }
    }

    let n1 = t1;
    let n2 = t2 - (p - 1) * n1;
    let n3 = if parts >= 3 {
        t3 - (p - 2) * n2 - (p - 1) * (p - 2) / 2 * n1
    } else {
        0
    };
    let sanitizer = if sub_reports.is_empty() {
        None
    } else {
        Some(SanitizerReport::merged(&sub_reports))
    };
    let verifier = if sub_verifier.is_empty() {
        None
    } else {
        Some(VerifierReport::merged(&sub_verifier))
    };
    Ok(SplitReport {
        triangles: n1 + n2 + n3,
        total_s,
        subproblems,
        max_subproblem_arcs: max_arcs,
        sanitizer,
        verifier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::count_forward;
    use tc_simt::DeviceConfig;

    fn messy_graph() -> EdgeArray {
        // Pseudo-random graph with triangles crossing all part boundaries.
        let mut pairs = Vec::new();
        let mut x = 7u64;
        for _ in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 33) % 120) as u32;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((x >> 33) % 120) as u32;
            pairs.push((a, b));
        }
        EdgeArray::from_undirected_pairs(pairs)
    }

    #[test]
    fn split_counts_match_for_various_part_counts() {
        let g = messy_graph();
        let want = count_forward(&g).unwrap();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        for parts in [1usize, 2, 3, 4, 5] {
            let r = count_split(&g, &opts, parts).unwrap();
            assert_eq!(r.triangles, want, "parts = {parts}");
        }
    }

    #[test]
    fn subproblem_count_is_binomial_sum() {
        let g = messy_graph();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let r = count_split(&g, &opts, 4).unwrap();
        // 4 singles + 6 pairs + 4 triples
        assert_eq!(r.subproblems, 14);
        assert!(r.max_subproblem_arcs < g.num_arcs());
    }

    #[test]
    fn split_fits_where_the_whole_graph_does_not() {
        let g = messy_graph();
        let want = count_forward(&g).unwrap();
        // Capacity below the whole graph's fallback needs but enough for
        // the largest 3-part subproblem.
        let whole_fallback = crate::gpu::preprocess::fallback_path_peak_bytes(&g);
        let launch = tc_simt::LaunchConfig::new(2, 64);
        let reserve = launch.active_threads(32) as u64 * 8;
        let mut opts = GpuOptions::new(
            DeviceConfig::gtx_980().with_memory_capacity(whole_fallback / 2 + reserve),
        );
        opts.launch = Some(launch);
        assert!(
            run_gpu_pipeline(&g, &opts).is_err(),
            "whole graph must not fit for this test to be meaningful"
        );
        let r = count_split(&g, &opts, 6).unwrap();
        assert_eq!(r.triangles, want);
    }

    #[test]
    fn empty_graph_splits_to_zero() {
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let r = count_split(&EdgeArray::default(), &opts, 4).unwrap();
        assert_eq!(r.triangles, 0);
    }

    #[test]
    fn parts_two_uses_pairs_only() {
        let g = messy_graph();
        let want = count_forward(&g).unwrap();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let r = count_split(&g, &opts, 2).unwrap();
        assert_eq!(r.triangles, want);
        assert_eq!(r.subproblems, 3); // 2 singles + 1 pair
    }
}
