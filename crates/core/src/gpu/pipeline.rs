//! The end-to-end single-GPU run, following the paper's measurement
//! protocol (§IV): pre-initialize the CUDA context, start the clock just
//! before the host-to-device copy, stop it right after the result comes
//! back and device memory is freed.

use tc_graph::EdgeArray;
use tc_simt::profiler::{ProfileReport, Span};
use tc_simt::{KernelStats, SanitizerReport, TimedOp, VerifierReport};

use crate::count::GpuOptions;
use crate::error::CoreError;
use crate::gpu::prepared::PreparedGraph;

/// Everything a single-GPU run reports: the count, the paper-style wall
/// time, the phase breakdown the §III-E Amdahl analysis needs, and the
/// kernel profile Table II reports.
#[derive(Clone, Debug)]
pub struct GpuReport {
    pub triangles: u64,
    /// Wall-clock of the measured window, in seconds (simulated device time
    /// plus measured host time for the fallback path).
    pub total_s: f64,
    /// Preprocessing (everything before the counting kernel, including the
    /// input copy — the paper's preprocessing phase starts at the copy).
    pub preprocess_s: f64,
    /// Counting kernel + final reduction.
    pub count_s: f64,
    /// Profile of the counting kernel itself.
    pub kernel: KernelStats,
    /// Whether §III-D6 CPU preprocessing was needed (a † row).
    pub used_cpu_fallback: bool,
    pub m_oriented: usize,
    pub n: usize,
    /// Device allocation high-water mark.
    pub peak_device_bytes: u64,
    /// Fraction of the run spent preprocessing (the §III-E Amdahl input).
    pub preprocess_fraction: f64,
    /// Compute-sanitizer findings for the whole run, including the
    /// teardown frees (`None` when the sanitizer was off).
    pub sanitizer: Option<SanitizerReport>,
    /// Static launch-verifier report for the whole run (`None` when the
    /// verifier was off).
    pub verifier: Option<VerifierReport>,
}

/// Everything the profiler recorded about one device's run: the leaf
/// operation log, the phase spans, and the aggregated [`ProfileReport`].
/// Feed `log`/`spans` to [`tc_simt::trace::write_chrome_trace_spanned`] for
/// a nested Perfetto view, or `profile` to the report renderers.
#[derive(Clone, Debug)]
pub struct RunTrace {
    pub device_name: String,
    pub log: Vec<TimedOp>,
    pub spans: Vec<Span>,
    pub profile: ProfileReport,
}

/// Run the full pipeline on a fresh simulated device.
pub fn run_gpu_pipeline(g: &EdgeArray, opts: &GpuOptions) -> Result<GpuReport, CoreError> {
    run_gpu_pipeline_profiled(g, opts).map(|(report, _)| report)
}

/// Like [`run_gpu_pipeline`] but also returns the device's operation log —
/// feed it to [`tc_simt::trace::write_chrome_trace`] to inspect the run in
/// `chrome://tracing` / Perfetto.
pub fn run_gpu_pipeline_with_log(
    g: &EdgeArray,
    opts: &GpuOptions,
) -> Result<(GpuReport, Vec<tc_simt::TimedOp>), CoreError> {
    run_gpu_pipeline_profiled(g, opts).map(|(report, trace)| (report, trace.log))
}

/// Like [`run_gpu_pipeline`] but also returns the full [`RunTrace`]: leaf
/// ops, nested phase spans, and the per-phase counter report.
///
/// Implemented as one prepare/count/release round trip on a fresh device —
/// the one-shot path and the serving path
/// ([`crate::gpu::prepared::PreparedGraph`]) execute the same device
/// operations by construction.
pub fn run_gpu_pipeline_profiled(
    g: &EdgeArray,
    opts: &GpuOptions,
) -> Result<(GpuReport, RunTrace), CoreError> {
    let mut prepared = PreparedGraph::prepare(g, opts)?;
    let preprocess_s = prepared.prepare_s();
    let counted = prepared.count()?;
    let host_seconds = prepared.host_seconds();
    let used_cpu_fallback = prepared.used_cpu_fallback();
    let m_oriented = prepared.m_oriented();
    let n = prepared.n();
    // Teardown stays inside the measured window, like the paper's protocol
    // (frees charge no simulated time, so the window is unchanged).
    let dev = prepared.release()?;
    // Snapshot the sanitizer after release so the teardown frees (double
    // frees, stale handles) are covered too.
    let sanitizer = dev.sanitizer_report();
    let verifier = dev.verifier_report();

    let total_s = dev.elapsed() + host_seconds;
    let count_s = total_s - preprocess_s;
    let report = GpuReport {
        triangles: counted.triangles,
        total_s,
        preprocess_s,
        count_s,
        kernel: counted.kernel,
        used_cpu_fallback,
        m_oriented,
        n,
        peak_device_bytes: dev.mem_peak(),
        preprocess_fraction: if total_s > 0.0 {
            preprocess_s / total_s
        } else {
            0.0
        },
        sanitizer,
        verifier,
    };
    let trace = RunTrace {
        device_name: dev.config().name.to_string(),
        log: dev.time_log().to_vec(),
        spans: dev.spans().to_vec(),
        profile: dev.profile(),
    };
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::GpuOptions;
    use crate::cpu::count_forward;
    use crate::gpu::EdgeLayout;
    use tc_simt::DeviceConfig;

    fn diamond() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn pipeline_counts_correctly() {
        let g = diamond();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let report = run_gpu_pipeline(&g, &opts).unwrap();
        assert_eq!(report.triangles, 2);
        assert_eq!(report.m_oriented, 5);
        assert!(!report.used_cpu_fallback);
        assert!(report.total_s > 0.0);
        assert!(report.preprocess_s > 0.0);
        assert!(report.count_s > 0.0);
        assert!((0.0..=1.0).contains(&report.preprocess_fraction));
    }

    #[test]
    fn all_option_combinations_agree() {
        // A graph with enough structure to stress every code path.
        let mut pairs = Vec::new();
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                if (a * 7 + b * 13) % 3 != 0 {
                    pairs.push((a, b));
                }
            }
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let want = count_forward(&g).unwrap();
        let base = DeviceConfig::gtx_980().with_unlimited_memory();
        for layout in [EdgeLayout::SoA, EdgeLayout::AoS] {
            for variant in [
                crate::gpu::LoopVariant::FinalReadAvoiding,
                crate::gpu::LoopVariant::Preliminary,
            ] {
                for cached in [true, false] {
                    let mut opts = GpuOptions::new(base.clone());
                    opts.layout = layout;
                    opts.kernel = variant;
                    opts.use_texture_cache = cached;
                    let report = run_gpu_pipeline(&g, &opts).unwrap();
                    assert_eq!(
                        report.triangles, want,
                        "layout={layout:?} variant={variant:?} cached={cached}"
                    );
                }
            }
        }
    }

    #[test]
    fn pipeline_log_covers_every_phase() {
        let g = diamond();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let (report, log) = run_gpu_pipeline_with_log(&g, &opts).unwrap();
        assert_eq!(report.triangles, 2);
        let labels: Vec<&str> = log.iter().map(|op| op.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("htod")));
        assert!(labels.iter().any(|l| l.contains("thrust::sort")));
        assert!(labels.iter().any(|l| l.contains("CountTriangles")));
        let logged: f64 = log.iter().map(|op| op.seconds).sum();
        assert!((logged - report.total_s).abs() < 1e-12);
    }

    #[test]
    fn warp_split_preserves_the_count() {
        let g = diamond();
        let mut opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        opts.warp_split = 2;
        let report = run_gpu_pipeline(&g, &opts).unwrap();
        assert_eq!(report.triangles, 2);
    }

    #[test]
    fn fallback_path_engages_and_counts() {
        // Capacity window chosen between the fallback peak and the full
        // peak, with a small explicit launch so the result array stays
        // negligible. This reproduces a † row of Table I.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                if (a + b) % 4 == 0 {
                    pairs.push((a, b));
                }
            }
        }
        let big = EdgeArray::from_undirected_pairs(pairs);
        let full = crate::gpu::preprocess::full_path_peak_bytes(&big);
        let fallback = crate::gpu::preprocess::fallback_path_peak_bytes(&big);
        let result_bytes = 2u64 * 64 * 8; // 2 blocks × 64 threads × u64
        let capacity = (fallback + full) / 2 + result_bytes + 1024;
        let mut opts = GpuOptions::new(DeviceConfig::gtx_980().with_memory_capacity(capacity));
        opts.launch = Some(tc_simt::LaunchConfig::new(2, 64));
        let report = run_gpu_pipeline(&big, &opts).unwrap();
        assert!(
            report.used_cpu_fallback,
            "capacity window must force the fallback"
        );
        assert_eq!(report.triangles, count_forward(&big).unwrap());
    }

    #[test]
    fn device_memory_is_clean_after_run() {
        // The run frees everything it allocated: a second run succeeds at a
        // tight capacity that a leaked first run would blow.
        let g = diamond();
        let result_bytes = 2u64 * 64 * 8;
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(
            crate::gpu::preprocess::full_path_peak_bytes(&g) + result_bytes + 1024,
        );
        let mut opts = GpuOptions::new(cfg);
        opts.launch = Some(tc_simt::LaunchConfig::new(2, 64));
        let a = run_gpu_pipeline(&g, &opts).unwrap();
        let b = run_gpu_pipeline(&g, &opts).unwrap();
        assert_eq!(a.triangles, b.triangles);
        assert!(a.peak_device_bytes > 0);
    }
}
