//! The end-to-end single-GPU run, following the paper's measurement
//! protocol (§IV): pre-initialize the CUDA context, start the clock just
//! before the host-to-device copy, stop it right after the result comes
//! back and device memory is freed.

use tc_graph::EdgeArray;
use tc_simt::primitives::reduce_sum_u64;
use tc_simt::profiler::{ProfileReport, Span};
use tc_simt::{Device, KernelStats, LaunchConfig, TimedOp};

use crate::count::GpuOptions;
use crate::error::CoreError;
use crate::gpu::count_kernel::{CountKernel, KernelArrays};
use crate::gpu::preprocess::{free_preprocessed, preprocess_auto};
use crate::gpu::EdgeLayout;

/// Everything a single-GPU run reports: the count, the paper-style wall
/// time, the phase breakdown the §III-E Amdahl analysis needs, and the
/// kernel profile Table II reports.
#[derive(Clone, Debug)]
pub struct GpuReport {
    pub triangles: u64,
    /// Wall-clock of the measured window, in seconds (simulated device time
    /// plus measured host time for the fallback path).
    pub total_s: f64,
    /// Preprocessing (everything before the counting kernel, including the
    /// input copy — the paper's preprocessing phase starts at the copy).
    pub preprocess_s: f64,
    /// Counting kernel + final reduction.
    pub count_s: f64,
    /// Profile of the counting kernel itself.
    pub kernel: KernelStats,
    /// Whether §III-D6 CPU preprocessing was needed (a † row).
    pub used_cpu_fallback: bool,
    pub m_oriented: usize,
    pub n: usize,
    /// Device allocation high-water mark.
    pub peak_device_bytes: u64,
    /// Fraction of the run spent preprocessing (the §III-E Amdahl input).
    pub preprocess_fraction: f64,
}

/// Everything the profiler recorded about one device's run: the leaf
/// operation log, the phase spans, and the aggregated [`ProfileReport`].
/// Feed `log`/`spans` to [`tc_simt::trace::write_chrome_trace_spanned`] for
/// a nested Perfetto view, or `profile` to the report renderers.
#[derive(Clone, Debug)]
pub struct RunTrace {
    pub device_name: String,
    pub log: Vec<TimedOp>,
    pub spans: Vec<Span>,
    pub profile: ProfileReport,
}

/// Run the full pipeline on a fresh simulated device.
pub fn run_gpu_pipeline(g: &EdgeArray, opts: &GpuOptions) -> Result<GpuReport, CoreError> {
    run_gpu_pipeline_profiled(g, opts).map(|(report, _)| report)
}

/// Like [`run_gpu_pipeline`] but also returns the device's operation log —
/// feed it to [`tc_simt::trace::write_chrome_trace`] to inspect the run in
/// `chrome://tracing` / Perfetto.
pub fn run_gpu_pipeline_with_log(
    g: &EdgeArray,
    opts: &GpuOptions,
) -> Result<(GpuReport, Vec<tc_simt::TimedOp>), CoreError> {
    run_gpu_pipeline_profiled(g, opts).map(|(report, trace)| (report, trace.log))
}

/// Like [`run_gpu_pipeline`] but also returns the full [`RunTrace`]: leaf
/// ops, nested phase spans, and the per-phase counter report.
pub fn run_gpu_pipeline_profiled(
    g: &EdgeArray,
    opts: &GpuOptions,
) -> Result<(GpuReport, RunTrace), CoreError> {
    let mut dev = Device::new(opts.device.clone());
    if opts.preinit_context {
        dev.preinit_context();
    }
    dev.reset_clock();

    // Launch geometry is fixed up front so preprocessing can reserve room
    // for the result array in its capacity plan.
    let lc = opts.launch.unwrap_or_else(|| dev.config().paper_launch());
    let lc = LaunchConfig {
        // §III-D5: the reduced-warp trick doubles the launched threads so
        // the active lane count stays constant.
        blocks: lc.blocks * opts.warp_split,
        threads_per_block: lc.threads_per_block,
        warp_split: opts.warp_split,
    };
    let total_threads = lc.active_threads(dev.config().warp_size);

    // ---- preprocessing phase (steps 1–8, §III-B) ----
    let keep_aos = opts.layout == EdgeLayout::AoS;
    dev.push_phase("preprocess");
    let pre = preprocess_auto(&mut dev, g, keep_aos, total_threads as u64 * 8);
    dev.pop_phase();
    let pre = pre?;
    let preprocess_s = dev.elapsed() + pre.host_seconds;

    // ---- counting phase (§III-C) ----
    dev.push_phase("count");
    let result = dev.alloc::<u64>(total_threads)?;
    dev.poke(&result, &vec![0u64; total_threads]);

    let arrays = match opts.layout {
        EdgeLayout::SoA => KernelArrays::SoA {
            nbr: pre.nbr,
            owner: pre.owner,
        },
        EdgeLayout::AoS => KernelArrays::AoS {
            arcs: pre.arcs_aos.expect("AoS layout retains packed arcs"),
        },
    };
    let kernel = CountKernel {
        arrays,
        node: pre.node,
        result,
        offset: 0,
        count: pre.m,
        variant: opts.kernel,
        use_texture_cache: opts.use_texture_cache,
    };
    let kernel_stats =
        dev.with_phase("count-kernel", |d| d.launch("CountTriangles", lc, &kernel))?;
    let triangles = dev.with_phase("reduce", |d| reduce_sum_u64(d, &result));

    // ---- teardown inside the measured window, like the paper ----
    dev.free(result)?;
    free_preprocessed(&mut dev, &pre)?;
    dev.pop_phase();

    let total_s = dev.elapsed() + pre.host_seconds;
    let count_s = total_s - preprocess_s;
    let report = GpuReport {
        triangles,
        total_s,
        preprocess_s,
        count_s,
        kernel: kernel_stats,
        used_cpu_fallback: pre.used_cpu_fallback,
        m_oriented: pre.m,
        n: pre.n,
        peak_device_bytes: dev.mem_peak(),
        preprocess_fraction: if total_s > 0.0 {
            preprocess_s / total_s
        } else {
            0.0
        },
    };
    let trace = RunTrace {
        device_name: dev.config().name.to_string(),
        log: dev.time_log().to_vec(),
        spans: dev.spans().to_vec(),
        profile: dev.profile(),
    };
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::GpuOptions;
    use crate::cpu::count_forward;
    use tc_simt::DeviceConfig;

    fn diamond() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn pipeline_counts_correctly() {
        let g = diamond();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let report = run_gpu_pipeline(&g, &opts).unwrap();
        assert_eq!(report.triangles, 2);
        assert_eq!(report.m_oriented, 5);
        assert!(!report.used_cpu_fallback);
        assert!(report.total_s > 0.0);
        assert!(report.preprocess_s > 0.0);
        assert!(report.count_s > 0.0);
        assert!((0.0..=1.0).contains(&report.preprocess_fraction));
    }

    #[test]
    fn all_option_combinations_agree() {
        // A graph with enough structure to stress every code path.
        let mut pairs = Vec::new();
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                if (a * 7 + b * 13) % 3 != 0 {
                    pairs.push((a, b));
                }
            }
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let want = count_forward(&g).unwrap();
        let base = DeviceConfig::gtx_980().with_unlimited_memory();
        for layout in [EdgeLayout::SoA, EdgeLayout::AoS] {
            for variant in [
                crate::gpu::LoopVariant::FinalReadAvoiding,
                crate::gpu::LoopVariant::Preliminary,
            ] {
                for cached in [true, false] {
                    let mut opts = GpuOptions::new(base.clone());
                    opts.layout = layout;
                    opts.kernel = variant;
                    opts.use_texture_cache = cached;
                    let report = run_gpu_pipeline(&g, &opts).unwrap();
                    assert_eq!(
                        report.triangles, want,
                        "layout={layout:?} variant={variant:?} cached={cached}"
                    );
                }
            }
        }
    }

    #[test]
    fn pipeline_log_covers_every_phase() {
        let g = diamond();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let (report, log) = run_gpu_pipeline_with_log(&g, &opts).unwrap();
        assert_eq!(report.triangles, 2);
        let labels: Vec<&str> = log.iter().map(|op| op.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("htod")));
        assert!(labels.iter().any(|l| l.contains("thrust::sort")));
        assert!(labels.iter().any(|l| l.contains("CountTriangles")));
        let logged: f64 = log.iter().map(|op| op.seconds).sum();
        assert!((logged - report.total_s).abs() < 1e-12);
    }

    #[test]
    fn warp_split_preserves_the_count() {
        let g = diamond();
        let mut opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        opts.warp_split = 2;
        let report = run_gpu_pipeline(&g, &opts).unwrap();
        assert_eq!(report.triangles, 2);
    }

    #[test]
    fn fallback_path_engages_and_counts() {
        // Capacity window chosen between the fallback peak and the full
        // peak, with a small explicit launch so the result array stays
        // negligible. This reproduces a † row of Table I.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                if (a + b) % 4 == 0 {
                    pairs.push((a, b));
                }
            }
        }
        let big = EdgeArray::from_undirected_pairs(pairs);
        let full = crate::gpu::preprocess::full_path_peak_bytes(&big);
        let fallback = crate::gpu::preprocess::fallback_path_peak_bytes(&big);
        let result_bytes = 2u64 * 64 * 8; // 2 blocks × 64 threads × u64
        let capacity = (fallback + full) / 2 + result_bytes + 1024;
        let mut opts = GpuOptions::new(DeviceConfig::gtx_980().with_memory_capacity(capacity));
        opts.launch = Some(tc_simt::LaunchConfig::new(2, 64));
        let report = run_gpu_pipeline(&big, &opts).unwrap();
        assert!(
            report.used_cpu_fallback,
            "capacity window must force the fallback"
        );
        assert_eq!(report.triangles, count_forward(&big).unwrap());
    }

    #[test]
    fn device_memory_is_clean_after_run() {
        // The run frees everything it allocated: a second run succeeds at a
        // tight capacity that a leaked first run would blow.
        let g = diamond();
        let result_bytes = 2u64 * 64 * 8;
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(
            crate::gpu::preprocess::full_path_peak_bytes(&g) + result_bytes + 1024,
        );
        let mut opts = GpuOptions::new(cfg);
        opts.launch = Some(tc_simt::LaunchConfig::new(2, 64));
        let a = run_gpu_pipeline(&g, &opts).unwrap();
        let b = run_gpu_pipeline(&g, &opts).unwrap();
        assert_eq!(a.triangles, b.triangles);
        assert!(a.peak_device_bytes > 0);
    }
}
