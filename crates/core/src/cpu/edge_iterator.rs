//! The edge-iterator algorithm (§II-A): for every edge, intersect the *full*
//! adjacency lists of its endpoints. `O(m · deg_max)` — matches forward on
//! near-regular graphs, collapses on skewed ones, which is exactly the
//! comparison Schank–Wagner ran and the reason the paper picks forward.

use tc_graph::{Csr, EdgeArray, GraphError};

use super::merge::intersect_count;

/// Count triangles by iterating undirected edges and intersecting full
/// neighbour lists. A triangle is seen from each of its three edges (the
/// intersection at edge `(u, v)` finds the third vertex once), so the raw
/// total over undirected edges is `3 × triangles`.
pub fn count_edge_iterator(g: &EdgeArray) -> Result<u64, GraphError> {
    let csr = Csr::from_edge_array(g)?;
    let mut total = 0u64;
    for (u, v) in g.undirected_iter() {
        total += intersect_count(csr.neighbors(u), csr.neighbors(v));
    }
    debug_assert_eq!(total % 3, 0, "each triangle must be counted three times");
    Ok(total / 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_known_fixtures() {
        let tri = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_edge_iterator(&tri).unwrap(), 1);
        let k4 = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_edge_iterator(&k4).unwrap(), 4);
        let square = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_edge_iterator(&square).unwrap(), 0);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_edge_iterator(&EdgeArray::default()).unwrap(), 0);
    }

    #[test]
    fn agrees_with_forward_on_a_messy_graph() {
        let g = EdgeArray::from_undirected_pairs([
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (2, 3),
            (1, 3),
            (3, 4),
            (4, 5),
            (5, 0),
        ]);
        assert_eq!(
            count_edge_iterator(&g).unwrap(),
            super::super::forward::count_forward(&g).unwrap()
        );
    }
}
