//! Two-pointer sorted-list intersection — the inner loop of the whole paper.
//!
//! Both forms from §III-D3 are provided:
//!
//! * [`intersect_count`] — the **final** version: keeps the current head of
//!   each list in a register and reloads only the pointer(s) it advanced,
//!   so iterations without a match cost one memory read;
//! * [`intersect_count_preliminary`] — the first version: reloads both
//!   heads every iteration.
//!
//! They return identical counts; the instrumented variants additionally
//! report how many element loads they performed, which is the quantity the
//! 36–48 % kernel speedup of §III-D3 comes from.

/// Size of the intersection of two ascending slices (final read pattern).
#[inline]
pub fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    if i >= a.len() || j >= b.len() {
        return 0;
    }
    let (mut x, mut y) = (a[i], b[j]);
    loop {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                i += 1;
                if i >= a.len() {
                    break;
                }
                x = a[i];
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                if j >= b.len() {
                    break;
                }
                y = b[j];
            }
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
                if i >= a.len() || j >= b.len() {
                    break;
                }
                x = a[i];
                y = b[j];
            }
        }
    }
    count
}

/// Preliminary version: re-reads both heads each iteration.
#[inline]
pub fn intersect_count_preliminary(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        let d = a[i] as i64 - b[j] as i64;
        if d <= 0 {
            i += 1;
        }
        if d >= 0 {
            j += 1;
        }
        if d == 0 {
            count += 1;
        }
    }
    count
}

/// Final version, instrumented: `(matches, element_loads)`.
pub fn intersect_count_reads(a: &[u32], b: &[u32]) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    let mut reads = 0u64;
    if a.is_empty() || b.is_empty() {
        return (0, 0);
    }
    let (mut x, mut y) = (a[0], b[0]);
    reads += 2;
    loop {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                i += 1;
                if i >= a.len() {
                    break;
                }
                x = a[i];
                reads += 1;
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                if j >= b.len() {
                    break;
                }
                y = b[j];
                reads += 1;
            }
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
                if i >= a.len() || j >= b.len() {
                    break;
                }
                x = a[i];
                y = b[j];
                reads += 2;
            }
        }
    }
    (count, reads)
}

/// Preliminary version, instrumented: `(matches, element_loads)`.
pub fn intersect_count_preliminary_reads(a: &[u32], b: &[u32]) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    let mut reads = 0u64;
    while i < a.len() && j < b.len() {
        let d = a[i] as i64 - b[j] as i64;
        reads += 2;
        if d <= 0 {
            i += 1;
        }
        if d >= 0 {
            j += 1;
        }
        if d == 0 {
            count += 1;
        }
    }
    (count, reads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases() -> Vec<(Vec<u32>, Vec<u32>, u64)> {
        vec![
            (vec![], vec![], 0),
            (vec![1, 2, 3], vec![], 0),
            (vec![1, 2, 3], vec![1, 2, 3], 3),
            (vec![1, 3, 5], vec![2, 4, 6], 0),
            (vec![1, 3, 5, 7], vec![3, 4, 7, 9, 11], 2),
            (vec![5], vec![5], 1),
            (vec![0, u32::MAX], vec![u32::MAX], 1),
            ((0..100).collect(), (50..150).collect(), 50),
        ]
    }

    #[test]
    fn final_and_preliminary_agree_on_fixtures() {
        for (a, b, want) in cases() {
            assert_eq!(intersect_count(&a, &b), want, "{a:?} ∩ {b:?}");
            assert_eq!(intersect_count_preliminary(&a, &b), want);
            assert_eq!(intersect_count(&b, &a), want, "symmetry");
        }
    }

    #[test]
    fn instrumented_versions_agree_on_counts() {
        for (a, b, want) in cases() {
            assert_eq!(intersect_count_reads(&a, &b).0, want);
            assert_eq!(intersect_count_preliminary_reads(&a, &b).0, want);
        }
    }

    #[test]
    fn final_version_reads_less_when_lists_diverge() {
        let a: Vec<u32> = (0..1000).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..1000).map(|x| x * 2 + 1).collect();
        let (_, r_final) = intersect_count_reads(&a, &b);
        let (_, r_prelim) = intersect_count_preliminary_reads(&a, &b);
        // No matches: final reads 1 element/iter (+2 warmup), preliminary 2.
        assert!(
            (r_prelim as f64) > 1.8 * r_final as f64,
            "prelim {r_prelim} vs final {r_final}"
        );
    }

    #[test]
    fn identical_lists_read_similarly() {
        let a: Vec<u32> = (0..100).collect();
        let (c, r_final) = intersect_count_reads(&a, &a);
        let (_, r_prelim) = intersect_count_preliminary_reads(&a, &a);
        assert_eq!(c, 100);
        // All matches: both read two elements per iteration.
        assert_eq!(r_prelim, 200);
        assert_eq!(r_final, 200);
    }
}
