//! The node-iterator algorithm: for every vertex, test every neighbour pair
//! for adjacency. `O(Σ d(v)²)` — the slowest of the classics, kept as an
//! independent reference implementation for cross-checking (its counting
//! logic shares nothing with the merge-based algorithms).

use tc_graph::{Csr, EdgeArray, GraphError};

/// Count triangles by closing wedges at every vertex. Each triangle is
/// closed at exactly one vertex if we only consider ordered wedges
/// `u < v < w` centred anywhere — here we count wedges `(u, w)` around `v`
/// with `u < w` and test the closing edge with a binary search, which sees
/// each triangle three times (once per corner), so the sum is divided by 3.
pub fn count_node_iterator(g: &EdgeArray) -> Result<u64, GraphError> {
    let csr = Csr::from_edge_array(g)?;
    let mut total = 0u64;
    for v in 0..csr.num_nodes() as u32 {
        let nb = csr.neighbors(v);
        for (i, &u) in nb.iter().enumerate() {
            let adj_u = csr.neighbors(u);
            for &w in &nb[i + 1..] {
                if adj_u.binary_search(&w).is_ok() {
                    total += 1;
                }
            }
        }
    }
    debug_assert_eq!(total % 3, 0);
    Ok(total / 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures() {
        let tri = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_node_iterator(&tri).unwrap(), 1);
        let two = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_node_iterator(&two).unwrap(), 2);
        let star = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (0, 3)]);
        assert_eq!(count_node_iterator(&star).unwrap(), 0);
    }

    #[test]
    fn empty() {
        assert_eq!(count_node_iterator(&EdgeArray::default()).unwrap(), 0);
    }
}
