//! Forward with hashed membership tests instead of the two-pointer merge.
//!
//! Schank–Wagner's survey calls this *forward-hashed*: same orientation,
//! but the intersection walks the shorter oriented list and probes the
//! other in O(1). We use a small open-addressing set (power-of-two table,
//! multiplicative hashing, linear probing) — no dependency and cheap to
//! rebuild per vertex.

use tc_graph::{EdgeArray, GraphError, Orientation};

/// Minimal open-addressing hash set for `u32` keys (no deletion, no resize
/// after construction — built once per adjacency list).
struct FlatSet {
    slots: Vec<u32>,
    mask: usize,
}

const EMPTY: u32 = u32::MAX;

impl FlatSet {
    fn build(keys: &[u32]) -> Self {
        let cap = (keys.len() * 2).next_power_of_two().max(4);
        let mut set = FlatSet {
            slots: vec![EMPTY; cap],
            mask: cap - 1,
        };
        for &k in keys {
            debug_assert_ne!(k, EMPTY, "u32::MAX is the sentinel");
            set.insert(k);
        }
        set
    }

    #[inline]
    fn slot(&self, key: u32) -> usize {
        // Fibonacci hashing spreads consecutive ids well.
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    fn insert(&mut self, key: u32) {
        let mut i = self.slot(key);
        loop {
            if self.slots[i] == EMPTY {
                self.slots[i] = key;
                return;
            }
            if self.slots[i] == key {
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn contains(&self, key: u32) -> bool {
        let mut i = self.slot(key);
        loop {
            let s = self.slots[i];
            if s == key {
                return true;
            }
            if s == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Count triangles with forward orientation and hashed intersections.
pub fn count_forward_hashed(g: &EdgeArray) -> Result<u64, GraphError> {
    let orientation = Orientation::forward(g)?;
    let csr = &orientation.csr;
    let n = csr.num_nodes() as u32;
    // One set per vertex's oriented list, built lazily in vertex order: by
    // the time we scan u's list, v > u in ≺ may not be built yet — so build
    // all first (total size = m̂, fine).
    let sets: Vec<FlatSet> = (0..n).map(|v| FlatSet::build(csr.neighbors(v))).collect();
    let mut total = 0u64;
    for u in 0..n {
        let adj_u = csr.neighbors(u);
        for &v in adj_u {
            let (walk, probe) = if adj_u.len() <= csr.neighbors(v).len() {
                (adj_u, &sets[v as usize])
            } else {
                (csr.neighbors(v), &sets[u as usize])
            };
            total += walk.iter().filter(|&&w| probe.contains(w)).count() as u64;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_set_membership() {
        let set = FlatSet::build(&[1, 5, 9, 1_000_000]);
        for k in [1, 5, 9, 1_000_000] {
            assert!(set.contains(k));
        }
        for k in [0, 2, 6, 999_999] {
            assert!(!set.contains(k));
        }
    }

    #[test]
    fn flat_set_handles_collisions() {
        // Enough keys to force probing in a minimal table.
        let keys: Vec<u32> = (0..64).map(|i| i * 16).collect();
        let set = FlatSet::build(&keys);
        for &k in &keys {
            assert!(set.contains(k));
        }
        assert!(!set.contains(8));
    }

    #[test]
    fn empty_set() {
        let set = FlatSet::build(&[]);
        assert!(!set.contains(0));
    }

    #[test]
    fn counts_agree_with_forward() {
        let g = EdgeArray::from_undirected_pairs([
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 0),
            (4, 2),
            (5, 0),
            (5, 1),
        ]);
        assert_eq!(
            count_forward_hashed(&g).unwrap(),
            super::super::forward::count_forward(&g).unwrap()
        );
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_forward_hashed(&EdgeArray::default()).unwrap(), 0);
    }
}
