//! CPU triangle-counting algorithms.
//!
//! [`forward`] is the paper's baseline: "our own implementation of the
//! forward algorithm, … slightly faster than the one provided in \[Latapy\]"
//! (§IV). The others are the comparison points §II-A surveys
//! ([`edge_iterator`], [`node_iterator`]), a hashed intersection variant,
//! and the multi-core counter used to sanity-check the GPU numbers.

pub mod edge_iterator;
pub mod forward;
pub mod forward_hashed;
pub mod hybrid;
pub mod merge;
pub mod node_iterator;
pub mod parallel;

pub use edge_iterator::count_edge_iterator;
pub use forward::{count_forward, count_forward_adjacency};
pub use forward_hashed::count_forward_hashed;
pub use hybrid::{count_hybrid, count_hybrid_auto};
pub use node_iterator::count_node_iterator;
pub use parallel::count_forward_parallel;
