//! The sequential forward algorithm (§II-B) — the paper's CPU baseline.
//!
//! Preprocessing: orient every edge from its lower-degree endpoint to its
//! higher-degree endpoint (ties by id) and sort the oriented adjacency
//! lists. Counting: for every oriented edge `(u, v)`, add the size of the
//! intersection of the *oriented* lists of `u` and `v`. Each triangle is
//! counted exactly once and no list is longer than √(2m̂), giving
//! `O(m̂^1.5)` total.

use tc_graph::{AdjacencyList, EdgeArray, GraphError, Orientation};

use super::merge::intersect_count;

/// Count triangles with the forward algorithm, starting from the edge-array
/// input format (the paper's preferred input, §III-A).
pub fn count_forward(g: &EdgeArray) -> Result<u64, GraphError> {
    let orientation = Orientation::forward(g)?;
    Ok(count_on_orientation(&orientation))
}

/// The counting phase over a prebuilt orientation (reused by the parallel
/// counter and the benches that want to time phases separately).
pub fn count_on_orientation(orientation: &Orientation) -> u64 {
    let csr = &orientation.csr;
    let mut total = 0u64;
    for u in 0..csr.num_nodes() as u32 {
        let adj_u = csr.neighbors(u);
        for &v in adj_u {
            total += intersect_count(adj_u, csr.neighbors(v));
        }
    }
    total
}

/// Forward counting for an adjacency-list input: the variant "optimized for
/// an adjacency list input" from the §III-A comparison (it skips the
/// edge-array grouping pass because the lists already exist).
pub fn count_forward_adjacency(adj: &AdjacencyList) -> u64 {
    let n = adj.num_nodes();
    // Orientation directly from list lengths.
    let deg: Vec<u32> = (0..n as u32).map(|v| adj.degree(v)).collect();
    let precedes = |a: u32, b: u32| {
        let (da, db) = (deg[a as usize], deg[b as usize]);
        da < db || (da == db && a < b)
    };
    let mut oriented: Vec<Vec<u32>> = (0..n as u32)
        .map(|u| {
            let mut fwd: Vec<u32> = adj
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| precedes(u, v))
                .collect();
            fwd.sort_unstable();
            fwd
        })
        .collect();
    oriented.shrink_to_fit();
    let mut total = 0u64;
    for u in 0..n {
        let adj_u = &oriented[u];
        for &v in adj_u {
            total += intersect_count(adj_u, &oriented[v as usize]);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_counts_one() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_forward(&g).unwrap(), 1);
    }

    #[test]
    fn square_counts_zero() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_forward(&g).unwrap(), 0);
    }

    #[test]
    fn k4_counts_four() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_forward(&g).unwrap(), 4);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_forward(&g).unwrap(), 2);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_forward(&EdgeArray::default()).unwrap(), 0);
    }

    #[test]
    fn adjacency_variant_agrees() {
        let g = EdgeArray::from_undirected_pairs([
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 0),
            (4, 2),
        ]);
        let adj = AdjacencyList::from_edge_array(&g);
        assert_eq!(count_forward_adjacency(&adj), count_forward(&g).unwrap());
    }
}
