//! Multi-core forward counting on scoped threads (tc-par).
//!
//! §V cites a 6-core CPU reaching ~7× over single-threaded; this backend
//! exists to reproduce that comparison point and to cross-check the GPU
//! results at full speed. Both phases run in parallel: orientation via
//! [`Orientation::forward_parallel`] (parallel histogram/filter/sort — the
//! host analog of the GPU preprocessing steps) and counting over vertices.

use tc_graph::{EdgeArray, GraphError, Orientation};

use super::merge::intersect_count;

/// Count triangles with the forward algorithm, both phases on all cores.
pub fn count_forward_parallel(g: &EdgeArray) -> Result<u64, GraphError> {
    let orientation = Orientation::forward_parallel(g)?;
    Ok(count_on_orientation_parallel(&orientation))
}

/// Parallel counting phase over a prebuilt orientation.
pub fn count_on_orientation_parallel(orientation: &Orientation) -> u64 {
    let csr = &orientation.csr;
    tc_par::sum_by_u64(csr.num_nodes(), |u| {
        let adj_u = csr.neighbors(u as u32);
        adj_u
            .iter()
            .map(|&v| intersect_count(adj_u, csr.neighbors(v)))
            .sum::<u64>()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::forward::count_forward;

    #[test]
    fn agrees_with_sequential_on_fixtures() {
        let graphs = [
            EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0)]),
            EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]),
            EdgeArray::default(),
        ];
        for g in graphs {
            assert_eq!(
                count_forward_parallel(&g).unwrap(),
                count_forward(&g).unwrap()
            );
        }
    }

    #[test]
    fn agrees_on_a_dense_block() {
        // K9 plus a pendant path.
        let mut pairs = Vec::new();
        for a in 0..9u32 {
            for b in (a + 1)..9 {
                pairs.push((a, b));
            }
        }
        pairs.push((8, 9));
        pairs.push((9, 10));
        let g = EdgeArray::from_undirected_pairs(pairs);
        assert_eq!(count_forward_parallel(&g).unwrap(), 84); // C(9,3)
    }
}
