//! Hybrid counting with dense handling of high-degree vertices — the second
//! future-work direction of §VI ("it might be beneficial to use a different
//! counting algorithm for a small subset of vertices with largest degrees;
//! a natural candidate … is matrix multiplication \[21\]").
//!
//! Every triangle is charged to its ≺-minimum corner `u` (the forward
//! assignment). If `deg(u) < τ` the triangle is found by the ordinary merge
//! over `u`'s short oriented list. If `deg(u) ≥ τ` then *all three* corners
//! are ≻ u and therefore heavy, so those triangles live entirely in the
//! heavy-induced subgraph — which has at most `2m̂/τ` vertices and is
//! counted densely: one bitset row per heavy vertex, an AND+popcount per
//! oriented heavy edge (the boolean matrix-multiplication kernel of
//! Alon–Yuster–Zwick, specialized to counting).

use tc_graph::{EdgeArray, GraphError, Orientation, VertexId};

use super::merge::intersect_count;

/// Dense bitset over the compacted heavy-vertex space.
#[derive(Clone, Debug)]
struct BitMatrix {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(rows: usize) -> Self {
        let words_per_row = rows.div_ceil(64);
        BitMatrix {
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    #[inline]
    fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    #[inline]
    fn row(&self, row: usize) -> &[u64] {
        &self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    fn and_popcount(&self, a: usize, b: usize) -> u64 {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .map(|(x, y)| (x & y).count_ones() as u64)
            .sum()
    }
}

/// Count triangles with the hybrid scheme at the given degree threshold.
pub fn count_hybrid(g: &EdgeArray, threshold: u32) -> Result<u64, GraphError> {
    let orientation = Orientation::forward(g)?;
    let csr = &orientation.csr;
    let degrees = orientation.order.degrees();
    let n = csr.num_nodes();

    // Compact ids for the heavy vertices.
    let mut heavy_id = vec![u32::MAX; n];
    let mut heavies: Vec<VertexId> = Vec::new();
    for v in 0..n as u32 {
        if degrees[v as usize] >= threshold {
            heavy_id[v as usize] = heavies.len() as u32;
            heavies.push(v);
        }
    }

    // Dense oriented adjacency among heavies.
    let mut dense = BitMatrix::new(heavies.len());
    for &h in &heavies {
        for &w in csr.neighbors(h) {
            let wid = heavy_id[w as usize];
            if wid != u32::MAX {
                dense.set(heavy_id[h as usize] as usize, wid as usize);
            }
        }
    }

    let mut total = 0u64;
    for u in 0..n as u32 {
        if degrees[u as usize] >= threshold {
            // Heavy source: all corners heavy; dense AND+popcount per arc.
            let uid = heavy_id[u as usize] as usize;
            for &v in csr.neighbors(u) {
                // v ≻ u, hence deg(v) ≥ deg(u) ≥ τ: v is heavy.
                debug_assert_ne!(heavy_id[v as usize], u32::MAX);
                total += dense.and_popcount(uid, heavy_id[v as usize] as usize);
            }
        } else {
            // Light source: the ordinary forward merge.
            let adj_u = csr.neighbors(u);
            for &v in adj_u {
                total += intersect_count(adj_u, csr.neighbors(v));
            }
        }
    }
    Ok(total)
}

/// Hybrid with the natural threshold `τ = ⌈√(2m̂)⌉` (the degree scale at
/// which the forward out-degree bound saturates).
pub fn count_hybrid_auto(g: &EdgeArray) -> Result<u64, GraphError> {
    let tau = ((2.0 * g.num_edges() as f64).sqrt().ceil() as u32).max(2);
    count_hybrid(g, tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::forward::count_forward;

    fn skewed_graph() -> EdgeArray {
        // Two hubs in a clique core plus a light fringe.
        let mut pairs = Vec::new();
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                pairs.push((a, b)); // K12 core: all heavy
            }
        }
        for leaf in 12..200u32 {
            pairs.push((leaf, leaf % 12));
            pairs.push((leaf, (leaf + 1) % 12));
        }
        EdgeArray::from_undirected_pairs(pairs)
    }

    #[test]
    fn matches_forward_across_thresholds() {
        let g = skewed_graph();
        let want = count_forward(&g).unwrap();
        for tau in [1u32, 2, 3, 5, 8, 13, 100, 10_000] {
            assert_eq!(count_hybrid(&g, tau).unwrap(), want, "tau = {tau}");
        }
    }

    #[test]
    fn auto_threshold_matches() {
        let g = skewed_graph();
        assert_eq!(count_hybrid_auto(&g).unwrap(), count_forward(&g).unwrap());
    }

    #[test]
    fn all_heavy_is_pure_dense() {
        // threshold 1: every non-isolated vertex is heavy.
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(count_hybrid(&g, 1).unwrap(), 1);
    }

    #[test]
    fn all_light_is_pure_merge() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(count_hybrid(&g, u32::MAX).unwrap(), 1);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(count_hybrid(&EdgeArray::default(), 4).unwrap(), 0);
    }

    #[test]
    fn bitmatrix_basics() {
        let mut m = BitMatrix::new(130);
        m.set(0, 0);
        m.set(0, 129);
        m.set(1, 129);
        m.set(1, 64);
        assert_eq!(m.and_popcount(0, 1), 1);
        assert_eq!(m.and_popcount(0, 0), 2);
    }
}
