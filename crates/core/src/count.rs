//! The front door: pick a [`Backend`], get a count.

use std::time::Instant;

use tc_graph::EdgeArray;
use tc_simt::{DeviceConfig, LaunchConfig};

use crate::cpu;
use crate::error::CoreError;
use crate::gpu::multi::run_multi_gpu;
use crate::gpu::pipeline::{run_gpu_pipeline, GpuReport};
use crate::gpu::{EdgeLayout, LoopVariant};

/// Configuration of a simulated-GPU run: the device preset plus every
/// §III-D optimization toggle (all default to the paper's published
/// configuration).
#[derive(Clone, Debug)]
pub struct GpuOptions {
    pub device: DeviceConfig,
    pub kernel: LoopVariant,
    pub layout: EdgeLayout,
    pub use_texture_cache: bool,
    /// §III-D5 warp-reduction factor (1 = off).
    pub warp_split: u32,
    /// Override the launch geometry (`None` = the paper's tuned 64×8/SM).
    pub launch: Option<LaunchConfig>,
    /// Pre-create the context before the measured window (§IV).
    pub preinit_context: bool,
}

impl GpuOptions {
    /// The paper's production configuration on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        GpuOptions {
            device,
            kernel: LoopVariant::FinalReadAvoiding,
            layout: EdgeLayout::SoA,
            use_texture_cache: true,
            warp_split: 1,
            launch: None,
            preinit_context: true,
        }
    }
}

/// Which algorithm/hardware counts the triangles.
#[derive(Clone, Debug)]
pub enum Backend {
    /// Sequential forward — the paper's CPU baseline.
    CpuForward,
    /// Sequential edge-iterator (§II-A reference).
    CpuEdgeIterator,
    /// Sequential node-iterator (independent reference).
    CpuNodeIterator,
    /// Forward with hashed intersections.
    CpuForwardHashed,
    /// Rayon-parallel forward (the §V multi-core comparison point).
    CpuParallel,
    /// Hybrid forward + dense high-degree counting (§VI future work);
    /// `None` picks the √(2m̂) threshold automatically.
    CpuHybrid { threshold: Option<u32> },
    /// Single simulated GPU.
    Gpu(GpuOptions),
    /// Multi-GPU (§III-E).
    MultiGpu { options: GpuOptions, devices: usize },
    /// Partition the graph into vertex ranges and count subproblem-by-
    /// subproblem within bounded device memory (§VI future work, scheme
    /// of \[5\]).
    GpuSplit { options: GpuOptions, parts: usize },
}

impl Backend {
    /// Simulated GTX 980 with the paper's defaults.
    pub fn gpu_gtx980() -> Self {
        Backend::Gpu(GpuOptions::new(DeviceConfig::gtx_980()))
    }

    /// Simulated Tesla C2050 with the paper's defaults.
    pub fn gpu_tesla_c2050() -> Self {
        Backend::Gpu(GpuOptions::new(DeviceConfig::tesla_c2050()))
    }

    /// Simulated NVS 5200M.
    pub fn gpu_nvs_5200m() -> Self {
        Backend::Gpu(GpuOptions::new(DeviceConfig::nvs_5200m()))
    }

    /// `n` simulated Tesla C2050s (the paper's 4-GPU rig).
    pub fn multi_gpu_c2050(devices: usize) -> Self {
        Backend::MultiGpu {
            options: GpuOptions::new(DeviceConfig::tesla_c2050()),
            devices,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Backend::CpuForward => "cpu-forward".into(),
            Backend::CpuEdgeIterator => "cpu-edge-iterator".into(),
            Backend::CpuNodeIterator => "cpu-node-iterator".into(),
            Backend::CpuForwardHashed => "cpu-forward-hashed".into(),
            Backend::CpuParallel => "cpu-parallel".into(),
            Backend::CpuHybrid { threshold: Some(t) } => format!("cpu-hybrid(tau={t})"),
            Backend::CpuHybrid { threshold: None } => "cpu-hybrid(auto)".into(),
            Backend::Gpu(o) => format!("gpu-sim({})", o.device.name),
            Backend::MultiGpu { options, devices } => {
                format!("{}x-gpu-sim({})", devices, options.device.name)
            }
            Backend::GpuSplit { options, parts } => {
                format!("gpu-split({}, {} parts)", options.device.name, parts)
            }
        }
    }
}

/// A count plus where it came from and how long it took.
#[derive(Clone, Debug)]
pub struct TriangleCount {
    pub triangles: u64,
    pub backend: String,
    /// Host wall-clock seconds for CPU backends; modeled device wall time
    /// for simulated-GPU backends.
    pub seconds: f64,
    /// Full GPU report when a single simulated GPU ran.
    pub gpu: Option<GpuReport>,
}

/// Count the triangles of `g` with the chosen backend.
///
/// ```
/// use tc_core::{count_triangles, Backend};
/// use tc_graph::EdgeArray;
///
/// // Two triangles sharing the edge (1, 2).
/// let g = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
/// assert_eq!(count_triangles(&g, Backend::CpuForward).unwrap(), 2);
/// assert_eq!(count_triangles(&g, Backend::gpu_gtx980()).unwrap(), 2);
/// ```
pub fn count_triangles(g: &EdgeArray, backend: Backend) -> Result<u64, CoreError> {
    count_triangles_detailed(g, backend).map(|r| r.triangles)
}

/// Count and report timing/profiling detail.
pub fn count_triangles_detailed(
    g: &EdgeArray,
    backend: Backend,
) -> Result<TriangleCount, CoreError> {
    let label = backend.label();
    match backend {
        Backend::CpuForward => timed_cpu(label, || cpu::count_forward(g)),
        Backend::CpuEdgeIterator => timed_cpu(label, || cpu::count_edge_iterator(g)),
        Backend::CpuNodeIterator => timed_cpu(label, || cpu::count_node_iterator(g)),
        Backend::CpuForwardHashed => timed_cpu(label, || cpu::count_forward_hashed(g)),
        Backend::CpuParallel => timed_cpu(label, || cpu::count_forward_parallel(g)),
        Backend::CpuHybrid { threshold } => timed_cpu(label, || match threshold {
            Some(t) => cpu::count_hybrid(g, t),
            None => cpu::count_hybrid_auto(g),
        }),
        Backend::Gpu(opts) => {
            let report = run_gpu_pipeline(g, &opts)?;
            Ok(TriangleCount {
                triangles: report.triangles,
                backend: label,
                seconds: report.total_s,
                gpu: Some(report),
            })
        }
        Backend::MultiGpu { options, devices } => {
            let report = run_multi_gpu(g, &options, devices)?;
            Ok(TriangleCount {
                triangles: report.triangles,
                backend: label,
                seconds: report.total_s,
                gpu: None,
            })
        }
        Backend::GpuSplit { options, parts } => {
            let report = crate::gpu::split::count_split(g, &options, parts)?;
            Ok(TriangleCount {
                triangles: report.triangles,
                backend: label,
                seconds: report.total_s,
                gpu: None,
            })
        }
    }
}

fn timed_cpu<F>(label: String, f: F) -> Result<TriangleCount, CoreError>
where
    F: FnOnce() -> Result<u64, tc_graph::GraphError>,
{
    let start = Instant::now();
    let triangles = f()?;
    Ok(TriangleCount {
        triangles,
        backend: label,
        seconds: start.elapsed().as_secs_f64(),
        gpu: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> EdgeArray {
        EdgeArray::from_undirected_pairs([
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 0),
            (4, 2),
        ])
    }

    #[test]
    fn all_backends_agree() {
        let g = fixture();
        let want = crate::verify::count_brute_force(&g);
        let backends = [
            Backend::CpuForward,
            Backend::CpuHybrid { threshold: None },
            Backend::CpuHybrid { threshold: Some(3) },
            Backend::GpuSplit {
                options: GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory()),
                parts: 3,
            },
            Backend::CpuEdgeIterator,
            Backend::CpuNodeIterator,
            Backend::CpuForwardHashed,
            Backend::CpuParallel,
            Backend::Gpu(GpuOptions::new(
                DeviceConfig::gtx_980().with_unlimited_memory(),
            )),
            Backend::MultiGpu {
                options: GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory()),
                devices: 2,
            },
        ];
        for b in backends {
            let label = b.label();
            assert_eq!(count_triangles(&g, b).unwrap(), want, "{label}");
        }
    }

    #[test]
    fn detailed_reports_carry_timing() {
        let g = fixture();
        let r = count_triangles_detailed(&g, Backend::CpuForward).unwrap();
        assert!(r.seconds >= 0.0);
        assert!(r.gpu.is_none());
        let r = count_triangles_detailed(
            &g,
            Backend::Gpu(GpuOptions::new(
                DeviceConfig::gtx_980().with_unlimited_memory(),
            )),
        )
        .unwrap();
        assert!(r.gpu.is_some());
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Backend::CpuForward.label(), "cpu-forward");
        assert!(Backend::gpu_gtx980().label().contains("GTX 980"));
        assert!(Backend::multi_gpu_c2050(4).label().starts_with("4x-"));
    }
}
