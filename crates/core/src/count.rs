//! The front door: build a [`CountRequest`], get a count.

use std::fmt;
use std::str::FromStr;
use std::time::Instant;

use tc_graph::EdgeArray;
use tc_simt::profiler::ProfileReport;
use tc_simt::{
    ClusterTopology, DeviceConfig, LaunchConfig, SanitizerMode, SanitizerReport, VerifierReport,
};

use crate::cpu;
use crate::error::{CoreError, ErrorContext};
use crate::gpu::cluster::{run_cluster, run_cluster_profiled, ClusterPartition};
use crate::gpu::multi::{merged_profile, run_multi_gpu, run_multi_gpu_profiled};
use crate::gpu::pipeline::{run_gpu_pipeline, run_gpu_pipeline_profiled, GpuReport};
use crate::gpu::{EdgeLayout, KernelSchedule, LoopVariant};

/// Configuration of a simulated-GPU run: the device preset plus every
/// §III-D optimization toggle (all default to the paper's published
/// configuration).
///
/// Construct with [`GpuOptions::new`] (or [`GpuOptions::default`] for the
/// flagship GTX 980) and mutate the public fields; the struct is
/// `#[non_exhaustive]` so future toggles can be added without breaking
/// downstream crates.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct GpuOptions {
    pub device: DeviceConfig,
    pub kernel: LoopVariant,
    pub layout: EdgeLayout,
    pub use_texture_cache: bool,
    /// §III-D5 warp-reduction factor (1 = off).
    pub warp_split: u32,
    /// Override the launch geometry (`None` = the paper's tuned 64×8/SM).
    pub launch: Option<LaunchConfig>,
    /// Pre-create the context before the measured window (§IV).
    pub preinit_context: bool,
    /// Workload-balanced kernel scheduling (degree-binned dispatch; the
    /// default is the paper's thread-per-edge mapping).
    pub schedule: KernelSchedule,
    /// Degree-descending vertex reordering before orientation (TRUST-style
    /// relabeling; a pure layout change — counts are unaffected).
    pub reorder: bool,
    /// Compute-sanitizer mode for the run (memcheck/initcheck/racecheck
    /// over the simulated memory path; `Off` is a true no-op). The
    /// effective mode is the stricter of this and the device config's own
    /// `sanitizer` field.
    pub sanitizer: SanitizerMode,
    /// Static kernel-launch verifier: prove every launch's declared access
    /// contract in-bounds and race-free before it runs, and check analytic
    /// host passes against the allocation map. Host-side only — modeled
    /// time is untouched. The effective setting is this OR the device
    /// config's own `verifier` field.
    pub verify: bool,
}

impl GpuOptions {
    /// The paper's production configuration on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        GpuOptions {
            device,
            kernel: LoopVariant::FinalReadAvoiding,
            layout: EdgeLayout::SoA,
            use_texture_cache: true,
            warp_split: 1,
            launch: None,
            preinit_context: true,
            schedule: KernelSchedule::ThreadPerEdge,
            reorder: false,
            sanitizer: SanitizerMode::Off,
            verify: false,
        }
    }

    /// The same configuration with the workload-balanced scheduler on.
    pub fn balanced(device: DeviceConfig) -> Self {
        let mut o = GpuOptions::new(device);
        o.schedule = KernelSchedule::Balanced;
        o
    }

    /// The balanced scheduler with the hash-strategy heavy bin.
    pub fn balanced_hash(device: DeviceConfig) -> Self {
        let mut o = GpuOptions::new(device);
        o.schedule = KernelSchedule::BalancedHash;
        o
    }
}

impl Default for GpuOptions {
    /// The paper's flagship configuration: a GTX 980 with every published
    /// optimization on.
    fn default() -> Self {
        GpuOptions::new(DeviceConfig::gtx_980())
    }
}

/// Which algorithm/hardware counts the triangles.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// backends can be added. Every backend has a canonical CLI/jobfile token
/// ([`Backend::from_str`] / `Display`) — `tcount`, `repro`, and the engine
/// jobfile parser all parse through that one code path.
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub enum Backend {
    #[default]
    /// Sequential forward — the paper's CPU baseline.
    CpuForward,
    /// Sequential edge-iterator (§II-A reference).
    CpuEdgeIterator,
    /// Sequential node-iterator (independent reference).
    CpuNodeIterator,
    /// Forward with hashed intersections.
    CpuForwardHashed,
    /// Rayon-parallel forward (the §V multi-core comparison point).
    CpuParallel,
    /// Hybrid forward + dense high-degree counting (§VI future work);
    /// `None` picks the √(2m̂) threshold automatically.
    CpuHybrid { threshold: Option<u32> },
    /// Single simulated GPU.
    Gpu(GpuOptions),
    /// Multi-GPU (§III-E).
    MultiGpu { options: GpuOptions, devices: usize },
    /// Partition the graph into vertex ranges and count subproblem-by-
    /// subproblem within bounded device memory (§VI future work, scheme
    /// of \[5\]).
    GpuSplit { options: GpuOptions, parts: usize },
    /// A sharded multi-node cluster (DistTC-style partition-aware
    /// ownership): `nodes` × `devices_per_node` simulated devices joined
    /// by a modeled interconnect, each holding only its shard of the
    /// oriented arcs plus the boundary adjacency it reads.
    Cluster {
        options: GpuOptions,
        nodes: usize,
        devices_per_node: usize,
        partition: ClusterPartition,
    },
}

impl Backend {
    /// Simulated GTX 980 with the paper's defaults.
    pub fn gpu_gtx980() -> Self {
        Backend::Gpu(GpuOptions::new(DeviceConfig::gtx_980()))
    }

    /// Simulated Tesla C2050 with the paper's defaults.
    pub fn gpu_tesla_c2050() -> Self {
        Backend::Gpu(GpuOptions::new(DeviceConfig::tesla_c2050()))
    }

    /// Simulated NVS 5200M.
    pub fn gpu_nvs_5200m() -> Self {
        Backend::Gpu(GpuOptions::new(DeviceConfig::nvs_5200m()))
    }

    /// `n` simulated Tesla C2050s (the paper's 4-GPU rig).
    pub fn multi_gpu_c2050(devices: usize) -> Self {
        Backend::MultiGpu {
            options: GpuOptions::new(DeviceConfig::tesla_c2050()),
            devices,
        }
    }

    /// A `nodes` × `devices_per_node` cluster of simulated GTX 980s with
    /// 1D partitioning and the paper's defaults.
    pub fn cluster_gtx980(nodes: usize, devices_per_node: usize) -> Self {
        Backend::Cluster {
            options: GpuOptions::new(DeviceConfig::gtx_980()),
            nodes,
            devices_per_node,
            partition: ClusterPartition::OneD,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Backend::CpuForward => "cpu-forward".into(),
            Backend::CpuEdgeIterator => "cpu-edge-iterator".into(),
            Backend::CpuNodeIterator => "cpu-node-iterator".into(),
            Backend::CpuForwardHashed => "cpu-forward-hashed".into(),
            Backend::CpuParallel => "cpu-parallel".into(),
            Backend::CpuHybrid { threshold: Some(t) } => format!("cpu-hybrid(tau={t})"),
            Backend::CpuHybrid { threshold: None } => "cpu-hybrid(auto)".into(),
            Backend::Gpu(o) => {
                let reorder = if o.reorder { ", reorder" } else { "" };
                match o.schedule {
                    KernelSchedule::ThreadPerEdge => {
                        format!("gpu-sim({}{reorder})", o.device.name)
                    }
                    s => format!("gpu-sim({}, {s}{reorder})", o.device.name),
                }
            }
            Backend::MultiGpu { options, devices } => {
                let reorder = if options.reorder { ", reorder" } else { "" };
                match options.schedule {
                    KernelSchedule::ThreadPerEdge => {
                        format!("{}x-gpu-sim({}{reorder})", devices, options.device.name)
                    }
                    s => format!(
                        "{}x-gpu-sim({}, {s}{reorder})",
                        devices, options.device.name
                    ),
                }
            }
            Backend::GpuSplit { options, parts } => {
                format!("gpu-split({}, {} parts)", options.device.name, parts)
            }
            Backend::Cluster {
                options,
                nodes,
                devices_per_node,
                partition,
            } => {
                let reorder = if options.reorder { ", reorder" } else { "" };
                let sched = match options.schedule {
                    KernelSchedule::ThreadPerEdge => String::new(),
                    s => format!(", {s}"),
                };
                format!(
                    "cluster-sim({nodes}x{devices_per_node}, {}, {partition}{sched}{reorder})",
                    options.device.name
                )
            }
        }
    }

    /// Whether timings from this backend are *modeled* (simulated-device
    /// seconds, deterministic across runs and hosts) rather than measured
    /// host wall time. Telemetry classes modeled timings as deterministic
    /// metrics; host-measured CPU timings go in the advisory section.
    pub fn is_modeled(&self) -> bool {
        matches!(
            self,
            Backend::Gpu(_)
                | Backend::MultiGpu { .. }
                | Backend::GpuSplit { .. }
                | Backend::Cluster { .. }
        )
    }

    /// The scheduling knob of the backend's GPU options, if it has one.
    fn schedule_mut(&mut self) -> Option<&mut KernelSchedule> {
        match self {
            Backend::Gpu(o) => Some(&mut o.schedule),
            Backend::MultiGpu { options, .. }
            | Backend::GpuSplit { options, .. }
            | Backend::Cluster { options, .. } => Some(&mut options.schedule),
            _ => None,
        }
    }

    /// The reorder knob of the backend's GPU options, if it has one.
    fn reorder_mut(&mut self) -> Option<&mut bool> {
        match self {
            Backend::Gpu(o) => Some(&mut o.reorder),
            Backend::MultiGpu { options, .. }
            | Backend::GpuSplit { options, .. }
            | Backend::Cluster { options, .. } => Some(&mut options.reorder),
            _ => None,
        }
    }

    /// The sanitizer knob of the backend's GPU options, if it has one.
    fn sanitizer_mut(&mut self) -> Option<&mut SanitizerMode> {
        match self {
            Backend::Gpu(o) => Some(&mut o.sanitizer),
            Backend::MultiGpu { options, .. }
            | Backend::GpuSplit { options, .. }
            | Backend::Cluster { options, .. } => Some(&mut options.sanitizer),
            _ => None,
        }
    }

    /// Set the sanitizer mode on a GPU backend. Returns whether the
    /// backend has a sanitizer knob (CPU backends do not).
    pub fn set_sanitizer(&mut self, mode: SanitizerMode) -> bool {
        match self.sanitizer_mut() {
            Some(slot) => {
                *slot = mode;
                true
            }
            None => false,
        }
    }

    /// The backend's sanitizer mode (`Off` for CPU backends).
    pub fn sanitizer(&self) -> SanitizerMode {
        match self {
            Backend::Gpu(o) => o.sanitizer,
            Backend::MultiGpu { options, .. }
            | Backend::GpuSplit { options, .. }
            | Backend::Cluster { options, .. } => options.sanitizer,
            _ => SanitizerMode::Off,
        }
    }

    /// The verifier knob of the backend's GPU options, if it has one.
    fn verify_mut(&mut self) -> Option<&mut bool> {
        match self {
            Backend::Gpu(o) => Some(&mut o.verify),
            Backend::MultiGpu { options, .. }
            | Backend::GpuSplit { options, .. }
            | Backend::Cluster { options, .. } => Some(&mut options.verify),
            _ => None,
        }
    }

    /// Toggle the static launch verifier on a GPU backend. Returns whether
    /// the backend has a verifier knob (CPU backends do not).
    pub fn set_verify(&mut self, on: bool) -> bool {
        match self.verify_mut() {
            Some(slot) => {
                *slot = on;
                true
            }
            None => false,
        }
    }

    /// Whether the backend runs the static launch verifier (`false` for
    /// CPU backends).
    pub fn verify(&self) -> bool {
        match self {
            Backend::Gpu(o) => o.verify,
            Backend::MultiGpu { options, .. }
            | Backend::GpuSplit { options, .. }
            | Backend::Cluster { options, .. } => options.verify,
            _ => false,
        }
    }
}

/// The `/reorder` token suffix for the relabeling toggle.
fn reorder_suffix(on: bool) -> &'static str {
    if on {
        "/reorder"
    } else {
        ""
    }
}

/// The `/sanitize[:paranoid]` token suffix for a sanitizer mode.
fn sanitize_suffix(mode: SanitizerMode) -> &'static str {
    match mode {
        SanitizerMode::Off => "",
        SanitizerMode::Check => "/sanitize",
        SanitizerMode::Paranoid => "/sanitize:paranoid",
    }
}

/// Parse a `sanitize` clause (the part after the `/`).
fn parse_sanitize_clause(clause: &str) -> Option<SanitizerMode> {
    match clause {
        "sanitize" => Some(SanitizerMode::Check),
        "sanitize:paranoid" => Some(SanitizerMode::Paranoid),
        _ => None,
    }
}

/// The `/verify` token suffix for the static launch verifier toggle.
fn verify_suffix(on: bool) -> &'static str {
    if on {
        "/verify"
    } else {
        ""
    }
}

/// The canonical token for a device preset, if it has one.
fn device_token(name: &str) -> Option<&'static str> {
    match name {
        "GTX 980" => Some("gtx980"),
        "Tesla C2050" => Some("c2050"),
        "NVS 5200M" => Some("nvs5200m"),
        _ => None,
    }
}

/// The device preset for a canonical token.
fn device_for_token(token: &str) -> Option<DeviceConfig> {
    match token {
        "gtx980" => Some(DeviceConfig::gtx_980()),
        "c2050" => Some(DeviceConfig::tesla_c2050()),
        "nvs5200m" => Some(DeviceConfig::nvs_5200m()),
        _ => None,
    }
}

impl fmt::Display for Backend {
    /// The canonical token: what `--backend` and engine jobfiles accept.
    /// For preset devices with default options, `from_str(&b.to_string())`
    /// round-trips; a GPU backend on a non-preset device renders as
    /// `gpu:<name>`, which is informational only.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::CpuForward => f.write_str("forward"),
            Backend::CpuEdgeIterator => f.write_str("edge-iterator"),
            Backend::CpuNodeIterator => f.write_str("node-iterator"),
            Backend::CpuForwardHashed => f.write_str("hashed"),
            Backend::CpuParallel => f.write_str("parallel"),
            Backend::CpuHybrid { threshold: None } => f.write_str("hybrid"),
            Backend::CpuHybrid { threshold: Some(t) } => write!(f, "hybrid:{t}"),
            Backend::Gpu(o) => {
                match device_token(o.device.name) {
                    Some(tok) => f.write_str(tok)?,
                    None => write!(f, "gpu:{}", o.device.name)?,
                }
                f.write_str(&o.schedule.token_suffix())?;
                f.write_str(reorder_suffix(o.reorder))?;
                f.write_str(sanitize_suffix(o.sanitizer))?;
                f.write_str(verify_suffix(o.verify))
            }
            Backend::MultiGpu { options, devices } => {
                match device_token(options.device.name) {
                    Some(tok) => write!(f, "{devices}x{tok}")?,
                    None => write!(f, "{devices}xgpu:{}", options.device.name)?,
                }
                f.write_str(&options.schedule.token_suffix())?;
                f.write_str(reorder_suffix(options.reorder))?;
                f.write_str(sanitize_suffix(options.sanitizer))?;
                f.write_str(verify_suffix(options.verify))
            }
            Backend::GpuSplit { options, parts } => {
                match device_token(options.device.name) {
                    Some(tok) => write!(f, "{tok}/split:{parts}")?,
                    None => write!(f, "gpu:{}/split:{parts}", options.device.name)?,
                }
                f.write_str(&options.schedule.token_suffix())?;
                f.write_str(reorder_suffix(options.reorder))?;
                f.write_str(sanitize_suffix(options.sanitizer))?;
                f.write_str(verify_suffix(options.verify))
            }
            Backend::Cluster {
                options,
                nodes,
                devices_per_node,
                partition,
            } => {
                write!(
                    f,
                    "cluster:{nodes}x{devices_per_node}{}",
                    partition.token_suffix()
                )?;
                match device_token(options.device.name) {
                    Some(tok) => write!(f, "/{tok}")?,
                    None => write!(f, "/gpu:{}", options.device.name)?,
                }
                f.write_str(&options.schedule.token_suffix())?;
                f.write_str(reorder_suffix(options.reorder))?;
                f.write_str(sanitize_suffix(options.sanitizer))?;
                f.write_str(verify_suffix(options.verify))
            }
        }
    }
}

/// A backend token [`Backend::from_str`] could not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBackendError {
    token: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend {:?} (expected forward, edge-iterator, node-iterator, hashed, \
             parallel, hybrid[:<tau>], gtx980, c2050, nvs5200m, <n>x<device>, \
             <device>/split:<parts>, or cluster:<n>x<m>[:2d]/<device>, each GPU form \
             optionally followed by /balanced[:<t>x<w>] or /balanced+hash, then /reorder, \
             then /sanitize[:paranoid], then /verify)",
            self.token
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for Backend {
    type Err = ParseBackendError;

    /// Parse a canonical backend token — the single parser behind `tcount
    /// --backend`, `repro`, and engine jobfiles.
    ///
    /// The workload-balanced scheduler is a `/balanced[:<t>x<w>]` suffix on
    /// any GPU form: `gtx980/balanced` auto-tunes, `gtx980/balanced:16x8`
    /// fixes the light/heavy work threshold and heavy-bin virtual-warp
    /// width, and `gtx980/balanced+hash` adds the hash-strategy heavy bin.
    /// Degree-descending reordering is a `/reorder` suffix after the
    /// scheduling clause; the compute-sanitizer is a
    /// `/sanitize[:paranoid]` suffix after that; the static launch
    /// verifier is a final `/verify` suffix on any GPU form.
    ///
    /// A sharded cluster is `cluster:<n>x<m>[:2d]/<device>` — `n` nodes of
    /// `m` devices each, 1D edge partitioning by default, `:2d` for the
    /// two-dimensional owner × target grid — and composes with the same
    /// suffixes: `cluster:2x2/gtx980/balanced`.
    ///
    /// ```
    /// use tc_core::Backend;
    ///
    /// for token in [
    ///     "forward",
    ///     "hybrid:40",
    ///     "gtx980",
    ///     "4xc2050",
    ///     "c2050/split:3",
    ///     "gtx980/balanced",
    ///     "gtx980/balanced+hash",
    ///     "2xc2050/balanced:16x8",
    ///     "gtx980/reorder",
    ///     "gtx980/balanced+hash/reorder",
    ///     "gtx980/sanitize",
    ///     "c2050/sanitize:paranoid",
    ///     "gtx980/balanced/sanitize",
    ///     "gtx980/balanced/reorder/sanitize",
    ///     "gtx980/verify",
    ///     "gtx980/sanitize/verify",
    ///     "gtx980/balanced+hash/reorder/sanitize:paranoid/verify",
    ///     "cluster:2x2/gtx980",
    ///     "cluster:4x2:2d/c2050",
    ///     "cluster:2x2/gtx980/balanced",
    /// ] {
    ///     let b: Backend = token.parse().unwrap();
    ///     assert_eq!(b.to_string(), token, "canonical tokens round-trip");
    /// }
    /// assert!("warp9".parse::<Backend>().is_err());
    /// assert!("forward/balanced".parse::<Backend>().is_err());
    /// assert!("forward/sanitize".parse::<Backend>().is_err());
    /// assert!("forward/reorder".parse::<Backend>().is_err());
    /// assert!("forward/verify".parse::<Backend>().is_err());
    /// assert!("gtx980/verify/sanitize".parse::<Backend>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseBackendError { token: s.into() };
        // Peel the verifier suffix first: it is the final suffix of every
        // canonical GPU token (`gtx980/verify`,
        // `gtx980/balanced+hash/sanitize/verify`, …), so anything trailing
        // it is rejected.
        if let Some(pos) = s.find("/verify") {
            if pos + "/verify".len() != s.len() {
                return Err(err());
            }
            let mut backend: Backend = s[..pos].parse().map_err(|_| err())?;
            *backend.verify_mut().ok_or_else(err)? = true;
            return Ok(backend);
        }
        // Then the sanitizer suffix — last before `/verify` in every
        // canonical GPU token (`gtx980/sanitize`,
        // `2xc2050/balanced:16x8/sanitize:paranoid`, …).
        if let Some(pos) = s.find("/sanitize") {
            let mode = parse_sanitize_clause(&s[pos + 1..]).ok_or_else(err)?;
            let mut backend: Backend = s[..pos].parse().map_err(|_| err())?;
            *backend.sanitizer_mut().ok_or_else(err)? = mode;
            return Ok(backend);
        }
        // Then `/reorder`, which canonically sits between the scheduling
        // clause and the sanitizer: `gtx980/balanced+hash/reorder`. The
        // find-based peel rejects anything trailing it (so the
        // non-canonical `gtx980/reorder/balanced` does not parse).
        if let Some(pos) = s.find("/reorder") {
            if pos + "/reorder".len() != s.len() {
                return Err(err());
            }
            let mut backend: Backend = s[..pos].parse().map_err(|_| err())?;
            *backend.reorder_mut().ok_or_else(err)? = true;
            return Ok(backend);
        }
        // Then the scheduling suffix: it composes with every GPU form
        // (`gtx980/balanced`, `2xc2050/balanced:16x8`, …).
        if let Some(pos) = s.find("/balanced") {
            let schedule = KernelSchedule::parse_clause(&s[pos + 1..]).ok_or_else(err)?;
            let mut backend: Backend = s[..pos].parse().map_err(|_| err())?;
            *backend.schedule_mut().ok_or_else(err)? = schedule;
            return Ok(backend);
        }
        match s {
            "forward" => return Ok(Backend::CpuForward),
            "edge-iterator" => return Ok(Backend::CpuEdgeIterator),
            "node-iterator" => return Ok(Backend::CpuNodeIterator),
            "hashed" => return Ok(Backend::CpuForwardHashed),
            "parallel" => return Ok(Backend::CpuParallel),
            "hybrid" => return Ok(Backend::CpuHybrid { threshold: None }),
            _ => {}
        }
        if let Some(tau) = s.strip_prefix("hybrid:") {
            let t = tau.parse::<u32>().map_err(|_| err())?;
            return Ok(Backend::CpuHybrid { threshold: Some(t) });
        }
        // `cluster:<n>x<m>[:2d]/<device>`: a sharded multi-node cluster.
        if let Some(rest) = s.strip_prefix("cluster:") {
            let (topo, devtok) = rest.split_once('/').ok_or_else(err)?;
            let (topo, partition) = match topo.strip_suffix(":2d") {
                Some(t) => (t, ClusterPartition::TwoD),
                None => (topo, ClusterPartition::OneD),
            };
            let (n, m) = topo.split_once('x').ok_or_else(err)?;
            let nodes = n.parse::<usize>().map_err(|_| err())?;
            let devices_per_node = m.parse::<usize>().map_err(|_| err())?;
            if nodes == 0 || devices_per_node == 0 {
                return Err(err());
            }
            let dev = device_for_token(devtok).ok_or_else(err)?;
            return Ok(Backend::Cluster {
                options: GpuOptions::new(dev),
                nodes,
                devices_per_node,
                partition,
            });
        }
        if let Some(dev) = device_for_token(s) {
            return Ok(Backend::Gpu(GpuOptions::new(dev)));
        }
        if let Some((tok, parts)) = s.split_once("/split:") {
            let dev = device_for_token(tok).ok_or_else(err)?;
            let parts = parts.parse::<usize>().map_err(|_| err())?;
            if parts == 0 {
                return Err(err());
            }
            return Ok(Backend::GpuSplit {
                options: GpuOptions::new(dev),
                parts,
            });
        }
        if let Some((n, tok)) = s.split_once('x') {
            let devices = n.parse::<usize>().map_err(|_| err())?;
            let dev = device_for_token(tok).ok_or_else(err)?;
            if devices == 0 {
                return Err(err());
            }
            return Ok(Backend::MultiGpu {
                options: GpuOptions::new(dev),
                devices,
            });
        }
        Err(err())
    }
}

/// A count plus where it came from and how long it took.
#[derive(Clone, Debug)]
pub struct TriangleCount {
    pub triangles: u64,
    pub backend: String,
    /// Host wall-clock seconds for CPU backends; modeled device wall time
    /// for simulated-GPU backends.
    pub seconds: f64,
    /// Full GPU report when a single simulated GPU ran.
    pub gpu: Option<GpuReport>,
    /// Per-phase profiler report, when the request asked for one
    /// ([`CountRequest::profile`]) and a simulated-GPU backend ran.
    pub profile: Option<ProfileReport>,
    /// Sanitizer findings/lints, when a GPU backend ran with the
    /// compute-sanitizer on (`None` otherwise).
    pub sanitizer: Option<SanitizerReport>,
    /// Static launch-verifier report, when a GPU backend ran with the
    /// verifier on (`None` otherwise).
    pub verifier: Option<VerifierReport>,
}

/// A triangle-count request: the backend plus per-request options, built
/// fluently and executed with [`CountRequest::run`].
///
/// ```
/// use tc_core::{Backend, CountRequest};
/// use tc_graph::EdgeArray;
///
/// // Two triangles sharing the edge (1, 2).
/// let g = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
/// assert_eq!(CountRequest::new(Backend::CpuForward).run(&g).unwrap().triangles, 2);
///
/// // A profiled GPU run, with the graph named for error/report context.
/// let r = CountRequest::new(Backend::gpu_gtx980())
///     .profile(true)
///     .graph_name("diamond")
///     .run(&g)
///     .unwrap();
/// assert_eq!(r.triangles, 2);
/// assert!(r.profile.unwrap().span("count/count-kernel").is_some());
/// ```
///
/// A request is reusable: `run` borrows it, so one configured request can
/// serve many graphs.
#[derive(Clone, Debug, Default)]
pub struct CountRequest {
    backend: Backend,
    profile: bool,
    graph_name: Option<String>,
}

impl CountRequest {
    pub fn new(backend: Backend) -> Self {
        CountRequest {
            backend,
            profile: false,
            graph_name: None,
        }
    }

    /// Attach a per-phase [`ProfileReport`] to the result (simulated-GPU
    /// backends only; CPU backends have no device profiler).
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Name the graph for error context and serving logs.
    pub fn graph_name(mut self, name: impl Into<String>) -> Self {
        self.graph_name = Some(name.into());
        self
    }

    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Count the triangles of `g`. Errors carry the graph name (if set) in
    /// their [`ErrorContext`].
    pub fn run(&self, g: &EdgeArray) -> Result<TriangleCount, CoreError> {
        self.dispatch(g).map_err(|e| {
            e.with_context(ErrorContext {
                graph: self.graph_name.clone(),
                ..Default::default()
            })
        })
    }

    fn dispatch(&self, g: &EdgeArray) -> Result<TriangleCount, CoreError> {
        let label = self.backend.label();
        match &self.backend {
            Backend::CpuForward => timed_cpu(label, || cpu::count_forward(g)),
            Backend::CpuEdgeIterator => timed_cpu(label, || cpu::count_edge_iterator(g)),
            Backend::CpuNodeIterator => timed_cpu(label, || cpu::count_node_iterator(g)),
            Backend::CpuForwardHashed => timed_cpu(label, || cpu::count_forward_hashed(g)),
            Backend::CpuParallel => timed_cpu(label, || cpu::count_forward_parallel(g)),
            Backend::CpuHybrid { threshold } => timed_cpu(label, || match threshold {
                Some(t) => cpu::count_hybrid(g, *t),
                None => cpu::count_hybrid_auto(g),
            }),
            Backend::Gpu(opts) => {
                let (report, profile) = if self.profile {
                    let (report, trace) = run_gpu_pipeline_profiled(g, opts)?;
                    (report, Some(trace.profile))
                } else {
                    (run_gpu_pipeline(g, opts)?, None)
                };
                Ok(TriangleCount {
                    triangles: report.triangles,
                    backend: label,
                    seconds: report.total_s,
                    sanitizer: report.sanitizer.clone(),
                    verifier: report.verifier.clone(),
                    gpu: Some(report),
                    profile,
                })
            }
            Backend::MultiGpu { options, devices } => {
                let (report, profile) = if self.profile {
                    let (report, traces) = run_multi_gpu_profiled(g, options, *devices)?;
                    (report, Some(merged_profile(&traces)))
                } else {
                    (run_multi_gpu(g, options, *devices)?, None)
                };
                Ok(TriangleCount {
                    triangles: report.triangles,
                    backend: label,
                    seconds: report.total_s,
                    sanitizer: report.sanitizer,
                    verifier: report.verifier,
                    gpu: None,
                    profile,
                })
            }
            Backend::GpuSplit { options, parts } => {
                let report = crate::gpu::split::count_split(g, options, *parts)?;
                Ok(TriangleCount {
                    triangles: report.triangles,
                    backend: label,
                    seconds: report.total_s,
                    sanitizer: report.sanitizer,
                    verifier: report.verifier,
                    gpu: None,
                    profile: None,
                })
            }
            Backend::Cluster {
                options,
                nodes,
                devices_per_node,
                partition,
            } => {
                let topology = ClusterTopology::new(*nodes, *devices_per_node);
                let (report, profile) = if self.profile {
                    let (report, traces) = run_cluster_profiled(g, options, topology, *partition)?;
                    (report, Some(merged_profile(&traces)))
                } else {
                    (run_cluster(g, options, topology, *partition)?, None)
                };
                Ok(TriangleCount {
                    triangles: report.triangles,
                    backend: label,
                    seconds: report.total_s,
                    sanitizer: report.sanitizer,
                    verifier: report.verifier,
                    gpu: None,
                    profile,
                })
            } // `Backend` is non_exhaustive for downstream crates; within
              // this crate the match stays exhaustive so a new variant is a
              // compile error here, not a runtime surprise.
        }
    }
}

fn timed_cpu<F>(label: String, f: F) -> Result<TriangleCount, CoreError>
where
    F: FnOnce() -> Result<u64, tc_graph::GraphError>,
{
    let start = Instant::now();
    let triangles = f()?;
    Ok(TriangleCount {
        triangles,
        backend: label,
        seconds: start.elapsed().as_secs_f64(),
        gpu: None,
        profile: None,
        sanitizer: None,
        verifier: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> EdgeArray {
        EdgeArray::from_undirected_pairs([
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 0),
            (4, 2),
        ])
    }

    #[test]
    fn all_backends_agree() {
        let g = fixture();
        let want = crate::verify::count_brute_force(&g);
        let backends = [
            Backend::CpuForward,
            Backend::CpuHybrid { threshold: None },
            Backend::CpuHybrid { threshold: Some(3) },
            Backend::GpuSplit {
                options: GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory()),
                parts: 3,
            },
            Backend::CpuEdgeIterator,
            Backend::CpuNodeIterator,
            Backend::CpuForwardHashed,
            Backend::CpuParallel,
            Backend::Gpu(GpuOptions::new(
                DeviceConfig::gtx_980().with_unlimited_memory(),
            )),
            Backend::MultiGpu {
                options: GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory()),
                devices: 2,
            },
        ];
        for b in backends {
            let label = b.label();
            let got = CountRequest::new(b).run(&g).unwrap().triangles;
            assert_eq!(got, want, "{label}");
        }
    }

    #[test]
    fn detailed_reports_carry_timing() {
        let g = fixture();
        let r = CountRequest::new(Backend::CpuForward).run(&g).unwrap();
        assert!(r.seconds >= 0.0);
        assert!(r.gpu.is_none());
        let r = CountRequest::new(Backend::Gpu(GpuOptions::new(
            DeviceConfig::gtx_980().with_unlimited_memory(),
        )))
        .run(&g)
        .unwrap();
        assert!(r.gpu.is_some());
        assert!(r.seconds > 0.0);
        assert!(r.profile.is_none(), "profiling is opt-in");
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Backend::CpuForward.label(), "cpu-forward");
        assert!(Backend::gpu_gtx980().label().contains("GTX 980"));
        assert!(Backend::multi_gpu_c2050(4).label().starts_with("4x-"));
    }

    #[test]
    fn profiled_requests_attach_reports() {
        let g = fixture();
        let r = CountRequest::new(Backend::Gpu(GpuOptions::new(
            DeviceConfig::gtx_980().with_unlimited_memory(),
        )))
        .profile(true)
        .run(&g)
        .unwrap();
        let profile = r.profile.expect("GPU run with profile(true)");
        assert!(profile.span("preprocess").is_some());
        assert!(profile.span("count/count-kernel").is_some());
        // Multi-GPU profiles merge per-device reports.
        let r = CountRequest::new(Backend::MultiGpu {
            options: GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory()),
            devices: 2,
        })
        .profile(true)
        .run(&g)
        .unwrap();
        assert_eq!(r.profile.expect("multi-GPU profile").devices, 2);
    }

    #[test]
    fn run_errors_name_the_graph() {
        let g = fixture();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_memory_capacity(64));
        let err = CountRequest::new(Backend::Gpu(opts))
            .graph_name("fixture-graph")
            .run(&g)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("graph fixture-graph"), "{msg}");
        assert!(matches!(
            err.root(),
            CoreError::GraphTooLargeForDevice { .. }
        ));
    }

    #[test]
    fn backend_tokens_round_trip() {
        let canonical = [
            "forward",
            "edge-iterator",
            "node-iterator",
            "hashed",
            "parallel",
            "hybrid",
            "hybrid:32",
            "gtx980",
            "c2050",
            "nvs5200m",
            "4xc2050",
            "2xgtx980",
            "gtx980/split:3",
            "gtx980/balanced",
            "c2050/balanced:16x8",
            "nvs5200m/balanced:0x32",
            "4xc2050/balanced",
            "2xgtx980/balanced:100x4",
            "gtx980/split:3/balanced",
            "gtx980/balanced+hash",
            "4xc2050/balanced+hash",
            "gtx980/split:3/balanced+hash",
            "gtx980/reorder",
            "2xgtx980/reorder",
            "gtx980/split:3/reorder",
            "gtx980/balanced/reorder",
            "gtx980/balanced+hash/reorder",
            "c2050/balanced:16x8/reorder",
            "gtx980/sanitize",
            "nvs5200m/sanitize:paranoid",
            "4xc2050/sanitize",
            "gtx980/balanced/sanitize",
            "c2050/balanced:16x8/sanitize:paranoid",
            "gtx980/split:3/sanitize",
            "gtx980/split:3/balanced/sanitize",
            "gtx980/reorder/sanitize",
            "gtx980/balanced+hash/reorder/sanitize:paranoid",
            "cluster:1x1/gtx980",
            "cluster:2x2/gtx980",
            "cluster:4x2/c2050",
            "cluster:2x2:2d/gtx980",
            "cluster:2x2/gtx980/balanced",
            "cluster:2x2/gtx980/balanced+hash",
            "cluster:2x2:2d/c2050/balanced:16x8",
            "cluster:2x2/gtx980/reorder",
            "cluster:2x2/gtx980/sanitize",
            "cluster:2x2:2d/gtx980/balanced/reorder/sanitize:paranoid",
            "gtx980/verify",
            "nvs5200m/verify",
            "4xc2050/verify",
            "gtx980/split:3/verify",
            "gtx980/balanced/verify",
            "gtx980/balanced+hash/verify",
            "gtx980/reorder/verify",
            "gtx980/sanitize/verify",
            "gtx980/sanitize:paranoid/verify",
            "gtx980/balanced+hash/reorder/sanitize/verify",
            "c2050/balanced:16x8/reorder/sanitize:paranoid/verify",
            "cluster:2x2/gtx980/verify",
            "cluster:2x2:2d/gtx980/balanced/reorder/sanitize:paranoid/verify",
        ];
        for tok in canonical {
            let b: Backend = tok.parse().unwrap_or_else(|e| panic!("{tok}: {e}"));
            assert_eq!(b.to_string(), tok);
        }
        for bad in [
            "",
            "warp9",
            "hybrid:",
            "0xc2050",
            "3x",
            "gtx980/split:0",
            "xc2050",
            "forward/balanced",
            "hybrid/balanced",
            "gtx980/balanced:16",
            "gtx980/balanced:16x3",
            "gtx980/balanced:x8",
            "/balanced",
            "forward/sanitize",
            "gtx980/sanitize:off",
            "gtx980/sanitize:check",
            "gtx980/sanitizer",
            "gtx980/sanitize/balanced",
            "/sanitize",
            "forward/reorder",
            "gtx980/reorder:2",
            "gtx980/reordered",
            "gtx980/reorder/balanced",
            "gtx980/sanitize/reorder",
            "/reorder",
            "cluster:",
            "cluster:2x2",
            "cluster:0x2/gtx980",
            "cluster:2x0/gtx980",
            "cluster:2/gtx980",
            "cluster:2x2:3d/gtx980",
            "cluster:2x2/warp9",
            "cluster:axb/gtx980",
            "forward/verify",
            "gtx980/verify:paranoid",
            "gtx980/verified",
            "gtx980/verify/sanitize",
            "gtx980/verify/balanced",
            "gtx980/verify/reorder",
            "/verify",
        ] {
            assert!(bad.parse::<Backend>().is_err(), "{bad:?} must not parse");
        }
        // `/reorder` is part of the canonical token too: reordered and
        // plain runs must never share an engine cache entry.
        let reordered: Backend = "gtx980/reorder".parse().unwrap();
        assert_ne!(reordered.to_string(), "gtx980");
        assert!(reordered.label().contains("reorder"));
        // The scheduling knob is part of the canonical token — the engine's
        // cache key — so differently scheduled jobs can never collide.
        let plain: Backend = "gtx980".parse().unwrap();
        let balanced: Backend = "gtx980/balanced".parse().unwrap();
        assert_ne!(plain.to_string(), balanced.to_string());
        // So is the sanitizer mode: a sanitized run must never serve a
        // cached unsanitized entry (and vice versa).
        let sanitized: Backend = "gtx980/sanitize".parse().unwrap();
        assert_eq!(sanitized.sanitizer(), SanitizerMode::Check);
        assert_ne!(plain.to_string(), sanitized.to_string());
        let mut toggled = plain.clone();
        assert!(toggled.set_sanitizer(SanitizerMode::Paranoid));
        assert_eq!(toggled.to_string(), "gtx980/sanitize:paranoid");
        let mut cpu = Backend::CpuForward;
        assert!(!cpu.set_sanitizer(SanitizerMode::Check));
        // And the verifier toggle: a verified run's proofs (and skipped
        // racechecks) must not leak into an unverified cache entry.
        let verified: Backend = "gtx980/verify".parse().unwrap();
        assert!(verified.verify());
        assert_ne!(plain.to_string(), verified.to_string());
        let mut toggled_verify = plain;
        assert!(toggled_verify.set_verify(true));
        assert_eq!(toggled_verify.to_string(), "gtx980/verify");
        assert!(!cpu.set_verify(true));
        assert!(!Backend::CpuForward.verify());
        // Helper constructors print their canonical tokens.
        assert_eq!(Backend::gpu_gtx980().to_string(), "gtx980");
        assert_eq!(Backend::multi_gpu_c2050(4).to_string(), "4xc2050");
        assert_eq!(Backend::default().to_string(), "forward");
    }
}
