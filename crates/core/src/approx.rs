//! Approximate triangle counting — the "heuristic approximation" family the
//! paper positions itself against (§V: "Such algorithms provide good
//! speedups and usually need little memory, but it comes at the cost of
//! getting only an approximate triangle count, which can differ from the
//! actual count usually by a few percent").
//!
//! Two classic estimators, both cited by the paper:
//!
//! * [`doulion`] — Tsourakakis et al. \[6\]: sparsify by keeping each edge
//!   with probability `p`, count exactly on the sparsified graph, scale by
//!   `1/p³`. Unbiased; variance shrinks as `p` grows.
//! * [`wedge_sampling`] — Seshadhri/Pinar-style: sample wedges uniformly,
//!   measure the fraction that close, multiply by the global wedge count
//!   (`triangles = closed_fraction × wedges / 3`).

use tc_graph::{Csr, EdgeArray, GraphError, GraphStats};

use crate::cpu::count_forward;

/// Deterministic local PRNG (SplitMix64) so estimates are reproducible.
#[derive(Clone)]
struct Rng(u64);

impl Rng {
    #[inline]
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        // Bias is negligible for the bounds used here.
        self.next() % bound.max(1)
    }
}

/// DOULION \[6\]: sparsify-and-scale estimate with keep-probability `p`.
pub fn doulion(g: &EdgeArray, p: f64, seed: u64) -> Result<f64, GraphError> {
    assert!(
        (0.0..=1.0).contains(&p) && p > 0.0,
        "keep probability must be in (0, 1]"
    );
    let mut rng = Rng(seed);
    let kept: Vec<(u32, u32)> = g.undirected_iter().filter(|_| rng.uniform() < p).collect();
    let sparse = EdgeArray::from_undirected_pairs(kept);
    let count = count_forward(&sparse)?;
    Ok(count as f64 / (p * p * p))
}

/// Wedge-sampling estimate of the triangle count with `samples` wedges.
///
/// A wedge is a path `u – v – w` centred at `v`; it "closes" iff `u` and
/// `w` are adjacent. Sampling centres proportionally to their wedge count
/// (via a cumulative table) gives a uniform wedge sample; the closed
/// fraction times the total wedge count is `3 × triangles`.
pub fn wedge_sampling(g: &EdgeArray, samples: usize, seed: u64) -> Result<f64, GraphError> {
    assert!(samples > 0);
    let stats = GraphStats::from_edge_array(g);
    if stats.wedges == 0 {
        return Ok(0.0);
    }
    let csr = Csr::from_edge_array(g)?;
    // Cumulative wedge counts per centre.
    let n = csr.num_nodes();
    let mut cum = Vec::with_capacity(n + 1);
    cum.push(0u64);
    for v in 0..n as u32 {
        let d = csr.degree(v) as u64;
        cum.push(cum.last().unwrap() + d * d.saturating_sub(1) / 2);
    }
    let total = *cum.last().unwrap();
    debug_assert_eq!(total, stats.wedges);

    let mut rng = Rng(seed ^ 0xDEAD_BEEF_CAFE_F00D);
    let mut closed = 0u64;
    for _ in 0..samples {
        let target = rng.below(total);
        // Find the centre whose cumulative range contains `target`.
        let v = cum.partition_point(|&c| c <= target) - 1;
        let nb = csr.neighbors(v as u32);
        let d = nb.len() as u64;
        // Pick an unordered pair of distinct neighbours uniformly.
        let i = rng.below(d) as usize;
        let mut j = rng.below(d - 1) as usize;
        if j >= i {
            j += 1;
        }
        let (u, w) = (nb[i], nb[j]);
        if csr.neighbors(u).binary_search(&w).is_ok() {
            closed += 1;
        }
    }
    let closed_fraction = closed as f64 / samples as f64;
    Ok(closed_fraction * total as f64 / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_fixture() -> (EdgeArray, u64) {
        // K20 minus a sparse set of edges; exact count from forward.
        let mut pairs = Vec::new();
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                if (a + 2 * b) % 7 != 0 {
                    pairs.push((a, b));
                }
            }
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let exact = count_forward(&g).unwrap();
        (g, exact)
    }

    #[test]
    fn doulion_with_p_one_is_exact() {
        let (g, exact) = dense_fixture();
        assert_eq!(doulion(&g, 1.0, 1).unwrap(), exact as f64);
    }

    #[test]
    fn doulion_is_roughly_unbiased() {
        let (g, exact) = dense_fixture();
        let trials = 60;
        let mean: f64 = (0..trials)
            .map(|s| doulion(&g, 0.6, s).unwrap())
            .sum::<f64>()
            / trials as f64;
        let rel = (mean - exact as f64).abs() / exact as f64;
        assert!(rel < 0.15, "mean {mean} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn doulion_is_deterministic_per_seed() {
        let (g, _) = dense_fixture();
        assert_eq!(doulion(&g, 0.5, 7).unwrap(), doulion(&g, 0.5, 7).unwrap());
    }

    #[test]
    fn wedge_sampling_close_on_dense_graph() {
        let (g, exact) = dense_fixture();
        let est = wedge_sampling(&g, 20_000, 3).unwrap();
        let rel = (est - exact as f64).abs() / exact as f64;
        assert!(rel < 0.1, "estimate {est} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn wedge_sampling_exact_on_complete_graph() {
        // In K_n every wedge closes: the estimate is exact regardless of
        // sample count.
        let mut pairs = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                pairs.push((a, b));
            }
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let est = wedge_sampling(&g, 50, 1).unwrap();
        assert!((est - 120.0).abs() < 1e-9); // C(10,3)
    }

    #[test]
    fn estimators_handle_triangle_free_graphs() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3)]);
        assert_eq!(doulion(&g, 0.9, 2).unwrap(), 0.0);
        assert_eq!(wedge_sampling(&g, 100, 2).unwrap(), 0.0);
        let empty = EdgeArray::default();
        assert_eq!(wedge_sampling(&empty, 10, 2).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn doulion_rejects_zero_p() {
        let (g, _) = dense_fixture();
        let _ = doulion(&g, 0.0, 1);
    }
}
