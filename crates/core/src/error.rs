//! Error type for the counting front end.

use std::fmt;

use tc_graph::GraphError;
use tc_simt::SimtError;

/// Errors surfaced by [`crate::count_triangles`] and the GPU pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The input graph failed validation or indexing.
    Graph(GraphError),
    /// The simulated device failed (launch config, stray handle, …).
    Device(SimtError),
    /// The graph does not fit on the device even with the §III-D6
    /// CPU-preprocessing fallback.
    GraphTooLargeForDevice {
        required_bytes: u64,
        capacity_bytes: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Device(e) => write!(f, "device error: {e}"),
            CoreError::GraphTooLargeForDevice {
                required_bytes,
                capacity_bytes,
            } => write!(
                f,
                "graph needs {required_bytes} device bytes even with CPU preprocessing; \
                 device has {capacity_bytes}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<SimtError> for CoreError {
    fn from(e: SimtError) -> Self {
        CoreError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(GraphError::SelfLoop { vertex: 3 });
        assert!(e.to_string().contains("self-loop"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::GraphTooLargeForDevice {
            required_bytes: 10,
            capacity_bytes: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
