//! Error type for the counting front end.

use std::fmt;

use tc_graph::GraphError;
use tc_simt::SimtError;

/// Where an error happened: the graph being counted, the device running
/// it, and the pipeline phase — the context a serving log needs to triage
/// a failed job without a debugger.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ErrorContext {
    /// Caller-supplied graph name (file path, suite row, jobfile label).
    pub graph: Option<String>,
    /// Device preset label (e.g. `"GTX 980"`).
    pub device: Option<String>,
    /// Pipeline phase (`"preprocess"`, `"count"`, …).
    pub phase: Option<String>,
}

impl ErrorContext {
    pub fn is_empty(&self) -> bool {
        self.graph.is_none() && self.device.is_none() && self.phase.is_none()
    }
}

impl fmt::Display for ErrorContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, key: &str, val: &Option<String>| {
            if let Some(v) = val {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{key} {v}")?;
            }
            Ok(())
        };
        item(f, "graph", &self.graph)?;
        item(f, "device", &self.device)?;
        item(f, "phase", &self.phase)
    }
}

/// Errors surfaced by [`crate::CountRequest`] and the GPU pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The input graph failed validation or indexing.
    Graph(GraphError),
    /// The simulated device failed (launch config, stray handle, …).
    Device(SimtError),
    /// The graph does not fit on the device even with the §III-D6
    /// CPU-preprocessing fallback.
    GraphTooLargeForDevice {
        required_bytes: u64,
        capacity_bytes: u64,
    },
    /// An underlying error annotated with where it happened.
    Context {
        context: ErrorContext,
        source: Box<CoreError>,
    },
}

impl CoreError {
    /// Wrap with context. Contexts merge rather than nest: wrapping an
    /// already-contextualized error fills in the fields the inner context
    /// left empty, so `e.with_context(phase).with_context(graph)` reads as
    /// one annotation.
    pub fn with_context(self, context: ErrorContext) -> CoreError {
        match self {
            CoreError::Context {
                context: inner,
                source,
            } => CoreError::Context {
                context: ErrorContext {
                    graph: inner.graph.or(context.graph),
                    device: inner.device.or(context.device),
                    phase: inner.phase.or(context.phase),
                },
                source,
            },
            other => CoreError::Context {
                context,
                source: Box::new(other),
            },
        }
    }

    /// The innermost, context-free error.
    pub fn root(&self) -> &CoreError {
        match self {
            CoreError::Context { source, .. } => source.root(),
            other => other,
        }
    }

    /// The attached context, if any.
    pub fn context(&self) -> Option<&ErrorContext> {
        match self {
            CoreError::Context { context, .. } => Some(context),
            _ => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Device(e) => write!(f, "device error: {e}"),
            CoreError::GraphTooLargeForDevice {
                required_bytes,
                capacity_bytes,
            } => write!(
                f,
                "graph needs {required_bytes} device bytes even with CPU preprocessing; \
                 device has {capacity_bytes}"
            ),
            CoreError::Context { context, source } => {
                if context.is_empty() {
                    write!(f, "{source}")
                } else {
                    write!(f, "{source} ({context})")
                }
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Device(e) => Some(e),
            CoreError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<SimtError> for CoreError {
    fn from(e: SimtError) -> Self {
        CoreError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(GraphError::SelfLoop { vertex: 3 });
        assert!(e.to_string().contains("self-loop"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::GraphTooLargeForDevice {
            required_bytes: 10,
            capacity_bytes: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn context_annotates_and_merges() {
        let base = CoreError::from(SimtError::OutOfMemory {
            requested: 100,
            available: 10,
        });
        let e = base
            .with_context(ErrorContext {
                phase: Some("preprocess".into()),
                device: Some("GTX 980".into()),
                ..Default::default()
            })
            .with_context(ErrorContext {
                graph: Some("orkut".into()),
                phase: Some("outer phase loses".into()),
                ..Default::default()
            });
        let msg = e.to_string();
        assert!(msg.contains("graph orkut"), "{msg}");
        assert!(msg.contains("device GTX 980"), "{msg}");
        assert!(msg.contains("phase preprocess"), "{msg}");
        assert!(!msg.contains("outer phase loses"), "{msg}");
        assert!(matches!(e.root(), CoreError::Device(_)));
        // A context wrap has a source chain down to the root.
        assert!(std::error::Error::source(&e).is_some());
        let ctx = e.context().unwrap();
        assert_eq!(ctx.graph.as_deref(), Some("orkut"));
    }

    #[test]
    fn empty_context_displays_cleanly() {
        let e = CoreError::from(GraphError::SelfLoop { vertex: 1 })
            .with_context(ErrorContext::default());
        assert!(!e.to_string().contains('('));
    }
}
