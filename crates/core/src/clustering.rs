//! Clustering coefficients and the transitivity ratio — the applications
//! that motivate triangle counting (§I).
//!
//! Per-vertex triangle counts come from a *listing* variant of the forward
//! algorithm: for every oriented edge `(u, v)` and every common oriented
//! neighbour `w`, the triangle `{u, v, w}` is found exactly once and
//! credited to all three corners.

use tc_graph::{EdgeArray, GraphError, GraphStats, Orientation};

/// Number of triangles through each vertex (`Σ = 3 × total triangles`).
pub fn per_vertex_triangles(g: &EdgeArray) -> Result<Vec<u64>, GraphError> {
    let orientation = Orientation::forward(g)?;
    let csr = &orientation.csr;
    let n = csr.num_nodes();
    // Parallel over chunks of list owners, each worker accumulating into a
    // local vector; merged at the end in chunk order (atomic-free).
    let owners: Vec<u32> = (0..n as u32).collect();
    let locals = tc_par::map_chunks(&owners, 4096, |_, chunk| {
        let mut acc = vec![0u64; n];
        for &u in chunk {
            let adj_u = csr.neighbors(u);
            for &v in adj_u {
                let adj_v = csr.neighbors(v);
                let (mut i, mut j) = (0, 0);
                while i < adj_u.len() && j < adj_v.len() {
                    match adj_u[i].cmp(&adj_v[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let w = adj_u[i];
                            acc[u as usize] += 1;
                            acc[v as usize] += 1;
                            acc[w as usize] += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        acc
    });
    let mut total = vec![0u64; n];
    for local in locals {
        for (t, l) in total.iter_mut().zip(local) {
            *t += l;
        }
    }
    Ok(total)
}

/// Local clustering coefficient of every vertex:
/// `c(v) = 2·t(v) / (d(v)·(d(v)−1))`, 0 for degree < 2.
pub fn local_clustering(g: &EdgeArray) -> Result<Vec<f64>, GraphError> {
    let t = per_vertex_triangles(g)?;
    let deg = g.degrees();
    Ok(t.iter()
        .zip(&deg)
        .map(|(&tv, &d)| {
            if d < 2 {
                0.0
            } else {
                2.0 * tv as f64 / (d as f64 * (d as f64 - 1.0))
            }
        })
        .collect())
}

/// Watts–Strogatz average clustering coefficient.
pub fn average_clustering(g: &EdgeArray) -> Result<f64, GraphError> {
    let c = local_clustering(g)?;
    if c.is_empty() {
        return Ok(0.0);
    }
    Ok(c.iter().sum::<f64>() / c.len() as f64)
}

/// The transitivity ratio (global clustering coefficient):
/// `3 × triangles / wedges`.
pub fn transitivity(g: &EdgeArray) -> Result<f64, GraphError> {
    let stats = GraphStats::from_edge_array(g);
    if stats.wedges == 0 {
        return Ok(0.0);
    }
    let t = per_vertex_triangles(g)?;
    let triangles: u64 = t.iter().sum::<u64>() / 3;
    Ok(3.0 * triangles as f64 / stats.wedges as f64)
}

/// Transitivity ratio computed with the simulated GPU doing the heavy
/// lifting: the triangle count comes from the §III pipeline, the wedge
/// count from a host pass over the degrees (the paper's §V note: computing
/// two-edge paths "is not harder" than counting triangles — for the global
/// ratio it is a closed form over degrees). Returns the ratio and the GPU
/// report so callers can see the device cost.
pub fn transitivity_gpu(
    g: &EdgeArray,
    opts: &crate::count::GpuOptions,
) -> Result<(f64, crate::gpu::pipeline::GpuReport), crate::error::CoreError> {
    let stats = GraphStats::from_edge_array(g);
    let report = crate::gpu::pipeline::run_gpu_pipeline(g, opts)?;
    let ratio = if stats.wedges == 0 {
        0.0
    } else {
        3.0 * report.triangles as f64 / stats.wedges as f64
    };
    Ok((ratio, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{count_brute_force, per_vertex_brute_force};

    fn diamond() -> EdgeArray {
        EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn per_vertex_counts_match_brute_force() {
        let g = diamond();
        assert_eq!(
            per_vertex_triangles(&g).unwrap(),
            per_vertex_brute_force(&g)
        );
    }

    #[test]
    fn per_vertex_sums_to_three_times_total() {
        let g = diamond();
        let t = per_vertex_triangles(&g).unwrap();
        assert_eq!(t.iter().sum::<u64>(), 3 * count_brute_force(&g));
    }

    #[test]
    fn complete_graph_is_fully_clustered() {
        let mut pairs = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                pairs.push((a, b));
            }
        }
        let g = EdgeArray::from_undirected_pairs(pairs);
        let c = local_clustering(&g).unwrap();
        for v in c {
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert!((average_clustering(&g).unwrap() - 1.0).abs() < 1e-12);
        assert!((transitivity(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_free_graph_has_zero_everything() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(per_vertex_triangles(&g).unwrap().iter().all(|&t| t == 0));
        assert_eq!(average_clustering(&g).unwrap(), 0.0);
        assert_eq!(transitivity(&g).unwrap(), 0.0);
    }

    #[test]
    fn diamond_coefficients_by_hand() {
        // Degrees: 0:2, 1:3, 2:3, 3:2. Triangles through: 0:1, 1:2, 2:2, 3:1.
        let g = diamond();
        let c = local_clustering(&g).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[2] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[3] - 1.0).abs() < 1e-12);
        // Wedges: 1 + 3 + 3 + 1 = 8; transitivity = 3·2/8.
        assert!((transitivity(&g).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = EdgeArray::default();
        assert!(per_vertex_triangles(&g).unwrap().is_empty());
        assert_eq!(average_clustering(&g).unwrap(), 0.0);
        assert_eq!(transitivity(&g).unwrap(), 0.0);
    }

    #[test]
    fn gpu_transitivity_matches_cpu() {
        use crate::count::GpuOptions;
        use tc_simt::DeviceConfig;
        let g = diamond();
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let (gpu_ratio, report) = transitivity_gpu(&g, &opts).unwrap();
        assert!((gpu_ratio - transitivity(&g).unwrap()).abs() < 1e-12);
        assert_eq!(report.triangles, 2);
    }
}
