//! Brute-force reference counters, for tests only (cubic/quadratic cost).
//!
//! Deliberately implemented with none of the machinery the real algorithms
//! share — an adjacency matrix and three nested loops — so agreement is
//! meaningful evidence.

use tc_graph::EdgeArray;

/// O(n³/6) triple enumeration over an adjacency matrix. Panics above 2000
/// vertices to protect tests from accidental quadratic memory.
pub fn count_brute_force(g: &EdgeArray) -> u64 {
    let n = g.num_nodes();
    assert!(n <= 2000, "brute force is for small test graphs (n = {n})");
    let mut adj = vec![false; n * n];
    for e in g.arcs() {
        adj[e.u as usize * n + e.v as usize] = true;
    }
    let mut count = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            if !adj[a * n + b] {
                continue;
            }
            for c in (b + 1)..n {
                if adj[a * n + c] && adj[b * n + c] {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Per-vertex triangle participation by the same brute force: `t[v]` =
/// number of triangles containing `v`. `Σ t[v] = 3 × triangles`.
pub fn per_vertex_brute_force(g: &EdgeArray) -> Vec<u64> {
    let n = g.num_nodes();
    assert!(n <= 2000);
    let mut adj = vec![false; n * n];
    for e in g.arcs() {
        adj[e.u as usize * n + e.v as usize] = true;
    }
    let mut t = vec![0u64; n];
    for a in 0..n {
        for b in (a + 1)..n {
            if !adj[a * n + b] {
                continue;
            }
            for c in (b + 1)..n {
                if adj[a * n + c] && adj[b * n + c] {
                    t[a] += 1;
                    t[b] += 1;
                    t[c] += 1;
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fixtures() {
        let k4 = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_brute_force(&k4), 4);
        assert_eq!(per_vertex_brute_force(&k4), vec![3, 3, 3, 3]);
        let path = EdgeArray::from_undirected_pairs([(0, 1), (1, 2)]);
        assert_eq!(count_brute_force(&path), 0);
    }

    #[test]
    fn per_vertex_sums_to_three_times_total() {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 0)]);
        let total = count_brute_force(&g);
        let pv = per_vertex_brute_force(&g);
        assert_eq!(pv.iter().sum::<u64>(), 3 * total);
    }
}
