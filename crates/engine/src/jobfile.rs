//! The `tcount batch` jobfile format: one job spec per line, `key=value`
//! tokens separated by whitespace.
//!
//! ```text
//! # throughput smoke: one prepare, many counts
//! graph=watts-strogatz backend=gtx980 repeat=8
//! graph=kronecker-10  backend=c2050  timeout-ms=250 profile=true
//! graph=file:graphs/roads.txt backend=forward
//! ```
//!
//! Keys:
//!
//! * `graph` (required) — a Table I suite name (`watts-strogatz`,
//!   `kronecker-10`, …) generated at `scale`, or `file:<path>` loaded by
//!   extension (`.bin` binary, `.metis`/`.graph` METIS, otherwise text).
//! * `backend` (required) — a canonical [`Backend`] token; the same parser
//!   `tcount --backend` uses.
//! * `repeat` — expand the line into N jobs (default 1). Repeats of a GPU
//!   job are exactly what the prepared-session cache amortizes.
//! * `timeout-ms` — modeled-time budget per job.
//! * `profile` — `true`/`false`: attach a per-job profile report.
//! * `scale` — `smoke`/`bench`/`large` suite scale for this line
//!   (overrides the parser-level default).
//!
//! Graphs are loaded/generated once per distinct spec and shared between
//! jobs via `Arc`, mirroring how a serving deployment holds one host copy.

use std::collections::HashMap;
use std::sync::Arc;

use tc_core::Backend;
use tc_gen::suite::SUITE_SEED;
use tc_gen::{GraphSpec, Scale};
use tc_graph::{io, EdgeArray};

use crate::error::EngineError;
use crate::Job;

/// Parse a jobfile into jobs, generating/loading each distinct graph once.
pub fn parse_jobfile(text: &str, default_scale: Scale) -> Result<Vec<Job>, EngineError> {
    let mut graphs: HashMap<String, Arc<EdgeArray>> = HashMap::new();
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let spec = parse_line(line)
            .map_err(|msg| EngineError::Jobfile(format!("line {}: {msg}", lineno + 1)))?;
        let scale = spec.scale.unwrap_or(default_scale);
        let graph_key = format!("{}@{}", spec.graph, scale_token(scale));
        let graph = match graphs.get(&graph_key) {
            Some(g) => Arc::clone(g),
            None => {
                let g =
                    Arc::new(resolve_graph(&spec.graph, scale).map_err(|msg| {
                        EngineError::Jobfile(format!("line {}: {msg}", lineno + 1))
                    })?);
                graphs.insert(graph_key, Arc::clone(&g));
                g
            }
        };
        for rep in 0..spec.repeat {
            let mut job = Job::new(
                format!("{}@{}#{rep}", spec.graph, spec.backend),
                Arc::clone(&graph),
                spec.backend.clone(),
            )
            .profile(spec.profile);
            if let Some(ms) = spec.timeout_ms {
                job = job.timeout_ms(ms);
            }
            jobs.push(job);
        }
    }
    Ok(jobs)
}

struct LineSpec {
    graph: String,
    backend: Backend,
    repeat: usize,
    timeout_ms: Option<f64>,
    profile: bool,
    scale: Option<Scale>,
}

fn parse_line(line: &str) -> Result<LineSpec, String> {
    let mut graph = None;
    let mut backend = None;
    let mut repeat = 1usize;
    let mut timeout_ms = None;
    let mut profile = false;
    let mut scale = None;
    for token in line.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
        match key {
            "graph" => graph = Some(value.to_string()),
            "backend" => {
                backend = Some(value.parse::<Backend>().map_err(|e| e.to_string())?);
            }
            "repeat" => {
                repeat = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("repeat must be a positive integer, got {value:?}"))?;
            }
            "timeout-ms" => {
                let ms = value
                    .parse::<f64>()
                    .ok()
                    .filter(|ms| ms.is_finite() && *ms > 0.0)
                    .ok_or_else(|| format!("timeout-ms must be positive, got {value:?}"))?;
                timeout_ms = Some(ms);
            }
            "profile" => {
                profile = match value {
                    "true" | "on" | "1" => true,
                    "false" | "off" | "0" => false,
                    other => return Err(format!("profile must be true/false, got {other:?}")),
                };
            }
            "scale" => {
                scale = Some(match value {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale {other:?}")),
                });
            }
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    Ok(LineSpec {
        graph: graph.ok_or("missing graph=")?,
        backend: backend.ok_or("missing backend=")?,
        repeat,
        timeout_ms,
        profile,
        scale,
    })
}

fn scale_token(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Bench => "bench",
        Scale::Large => "large",
    }
}

fn resolve_graph(token: &str, scale: Scale) -> Result<EdgeArray, String> {
    if let Some(path) = token.strip_prefix("file:") {
        let loaded = if path.ends_with(".bin") {
            io::read_binary(path)
        } else if path.ends_with(".metis") || path.ends_with(".graph") {
            io::read_metis(path)
        } else {
            io::read_text(path)
        };
        return loaded.map_err(|e| format!("loading {path}: {e}"));
    }
    GraphSpec::all()
        .into_iter()
        .find(|s| s.name(scale) == token)
        .map(|s| s.generate(scale, SUITE_SEED))
        .ok_or_else(|| {
            format!(
                "unknown graph {token:?} (expected file:<path> or a suite name like {:?})",
                GraphSpec::WattsStrogatz.name(scale)
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_suite_jobs_with_repeat_and_options() {
        let text = "\
# comment line
graph=watts-strogatz backend=gtx980 repeat=3 timeout-ms=500 profile=true

graph=watts-strogatz backend=forward   # trailing comment
";
        let jobs = parse_jobfile(text, Scale::Smoke).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].name, "watts-strogatz@gtx980#0");
        assert_eq!(jobs[2].name, "watts-strogatz@gtx980#2");
        assert!(jobs[0].profile);
        assert_eq!(jobs[0].timeout_ms, Some(500.0));
        assert_eq!(jobs[3].backend.to_string(), "forward");
        // One host copy of the graph, shared by all four jobs.
        assert!(Arc::ptr_eq(&jobs[0].graph, &jobs[3].graph));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("graph=watts-strogatz", "missing backend"),
            ("backend=forward", "missing graph"),
            ("graph=nope backend=forward", "unknown graph"),
            ("graph=watts-strogatz backend=warp9", "unknown backend"),
            ("graph=watts-strogatz backend=forward repeat=0", "repeat"),
            (
                "graph=watts-strogatz backend=forward bogus=1",
                "unknown key",
            ),
            (
                "graph=watts-strogatz backend=forward timeout-ms=-4",
                "timeout-ms",
            ),
        ] {
            let err = parse_jobfile(text, Scale::Smoke).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("line 1"), "{msg}");
            assert!(msg.contains(needle), "{msg} missing {needle}");
        }
    }

    #[test]
    fn loads_graph_files_by_extension() {
        let dir = std::env::temp_dir().join("tc_engine_jobfile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tri.txt");
        let g = EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (0, 2)]);
        io::write_text(&g, &path).unwrap();
        let text = format!("graph=file:{} backend=forward repeat=2", path.display());
        let jobs = parse_jobfile(&text, Scale::Smoke).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].graph.num_edges(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_line_scale_overrides_the_default() {
        let text = "graph=watts-strogatz backend=forward scale=smoke";
        let jobs = parse_jobfile(text, Scale::Bench).unwrap();
        let smoke = jobs[0].graph.num_edges();
        let bench = parse_jobfile("graph=watts-strogatz backend=forward", Scale::Bench).unwrap()[0]
            .graph
            .num_edges();
        assert!(smoke < bench, "smoke {smoke} vs bench {bench}");
    }
}
