//! A bounded MPMC job queue with blocking backpressure.
//!
//! `push` blocks while the queue is full — a producer feeding the engine
//! faster than its workers drain is slowed down, not buffered without
//! bound. `try_push` refuses instead ([`EngineError::QueueFull`]) for
//! callers that would rather shed load than wait.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::error::EngineError;

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded queue; see the module docs.
#[derive(Debug)]
pub struct JobQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> JobQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a job queue needs at least one slot");
        JobQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, blocking while the queue is full (the backpressure path).
    /// Panics if the queue was already closed — producers close it exactly
    /// once, after the last push.
    pub fn push(&self, item: T) {
        let mut state = self.state.lock().unwrap();
        while state.items.len() >= self.capacity {
            state = self.not_full.wait(state).unwrap();
        }
        assert!(!state.closed, "push after close");
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Enqueue only if a slot is free right now.
    pub fn try_push(&self, item: T) -> Result<(), EngineError> {
        let mut state = self.state.lock().unwrap();
        if state.items.len() >= self.capacity {
            return Err(EngineError::QueueFull {
                capacity: self.capacity,
                stage: tc_telemetry::Stage::Admission,
            });
        }
        assert!(!state.closed, "push after close");
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking until an item arrives; `None` once the queue is
    /// closed and drained (the workers' exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// No more pushes will come; blocked `pop`s return `None` once drained.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn try_push_refuses_when_full() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(EngineError::QueueFull { capacity: 2, .. }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_blocks_until_a_slot_frees() {
        let q = JobQueue::new(1);
        q.push(1);
        let pushed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                q.push(2); // blocks: queue is full
                pushed.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(pushed.load(Ordering::SeqCst), 0, "push must be blocked");
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
        });
        assert_eq!(pushed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn close_drains_then_signals_workers() {
        let q = JobQueue::new(4);
        q.push(10);
        q.push(11);
        q.close();
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue keeps returning None");
    }

    #[test]
    fn concurrent_producers_and_consumers_move_every_item() {
        let q = JobQueue::new(3);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    let _ = w;
                    while let Some(item) = q.pop() {
                        seen.lock().unwrap().push(item);
                    }
                });
            }
            for i in 0..100 {
                q.push(i);
            }
            q.close();
        });
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
