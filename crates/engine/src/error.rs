//! Job-level failures. The engine never panics a batch: every way a job
//! can go wrong — backend failure, modeled deadline blown, queue refusal,
//! a worker thread dying — is an [`EngineError`] in that job's slot of the
//! batch report.

use std::fmt;

use tc_core::CoreError;

/// Why one job of a batch failed.
#[derive(Debug)]
pub enum EngineError {
    /// The backend itself failed (graph too large, bad launch config, …).
    Count(CoreError),
    /// The job's modeled time exceeded its `timeout-ms` budget. The result
    /// is discarded; the report records how far over it went.
    Timeout { limit_ms: f64, needed_ms: f64 },
    /// A non-blocking submit found the job queue full (capacity attached).
    /// Blocking submission never returns this — it waits instead; that is
    /// the backpressure.
    QueueFull { capacity: usize },
    /// The worker thread running this job panicked. The panic is contained:
    /// other jobs and the engine itself keep going.
    WorkerPanicked { detail: String },
    /// The jobfile line describing this job could not be parsed.
    Jobfile(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Count(e) => write!(f, "count failed: {e}"),
            EngineError::Timeout {
                limit_ms,
                needed_ms,
            } => write!(
                f,
                "job needed {needed_ms:.3} ms of modeled time, over its {limit_ms:.3} ms budget"
            ),
            EngineError::QueueFull { capacity } => {
                write!(f, "job queue full ({capacity} slots)")
            }
            EngineError::WorkerPanicked { detail } => {
                write!(f, "worker panicked: {detail}")
            }
            EngineError::Jobfile(msg) => write!(f, "jobfile: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Count(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Count(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::Timeout {
            limit_ms: 5.0,
            needed_ms: 7.5,
        };
        assert!(e.to_string().contains("7.500 ms"));
        let e = EngineError::QueueFull { capacity: 4 };
        assert!(e.to_string().contains("4 slots"));
        let e = EngineError::from(CoreError::GraphTooLargeForDevice {
            required_bytes: 2,
            capacity_bytes: 1,
        });
        assert!(e.to_string().contains("count failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
