//! Job-level failures. The engine never panics a batch: every way a job
//! can go wrong — backend failure, modeled deadline blown, queue refusal,
//! a worker thread dying — is an [`EngineError`] in that job's slot of the
//! batch report. Every failure attributes itself to the request [`Stage`]
//! it happened in, so traces, metrics, and error messages agree on where
//! a job died.

use std::fmt;

use tc_core::CoreError;
use tc_telemetry::Stage;

/// Why one job of a batch failed.
#[derive(Debug)]
pub enum EngineError {
    /// The backend itself failed (graph too large, bad launch config, …).
    Count(CoreError),
    /// The job's modeled time exceeded its `timeout-ms` budget. The result
    /// is discarded; the report records how far over it went and which
    /// stage's charge blew the budget (`prepare` when the preprocessing
    /// pass alone exceeded it, `count` otherwise).
    Timeout {
        limit_ms: f64,
        needed_ms: f64,
        stage: Stage,
    },
    /// A non-blocking submit found the job queue full (capacity attached).
    /// Blocking submission never returns this — it waits instead; that is
    /// the backpressure. Always attributed to [`Stage::Admission`].
    QueueFull { capacity: usize, stage: Stage },
    /// The worker thread running this job panicked. The panic is contained:
    /// other jobs and the engine itself keep going.
    WorkerPanicked { detail: String },
    /// The jobfile line describing this job could not be parsed.
    Jobfile(String),
}

impl EngineError {
    /// The request stage this failure is attributed to — the shared
    /// vocabulary linking error reports, per-stage failure counters, and
    /// the error marker span in request traces. [`EngineError::Count`]
    /// maps the core error's pipeline phase (`preprocess`/`schedule`/
    /// `prepare` → [`Stage::Prepare`]); phases the engine does not know
    /// default to [`Stage::Count`].
    pub fn stage(&self) -> Stage {
        match self {
            EngineError::Count(e) => match e.context().and_then(|c| c.phase.as_deref()) {
                Some("preprocess") | Some("schedule") | Some("prepare") => Stage::Prepare,
                _ => Stage::Count,
            },
            EngineError::Timeout { stage, .. } => *stage,
            EngineError::QueueFull { stage, .. } => *stage,
            EngineError::WorkerPanicked { .. } => Stage::Count,
            EngineError::Jobfile(_) => Stage::Admission,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Count(e) => write!(f, "count failed: {e}"),
            EngineError::Timeout {
                limit_ms,
                needed_ms,
                stage,
            } => write!(
                f,
                "job needed {needed_ms:.3} ms of modeled time, over its {limit_ms:.3} ms \
                 budget (in stage {stage})"
            ),
            EngineError::QueueFull { capacity, .. } => {
                write!(f, "job queue full ({capacity} slots)")
            }
            EngineError::WorkerPanicked { detail } => {
                write!(f, "worker panicked: {detail}")
            }
            EngineError::Jobfile(msg) => write!(f, "jobfile: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Count(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Count(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ErrorContext;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::Timeout {
            limit_ms: 5.0,
            needed_ms: 7.5,
            stage: Stage::Count,
        };
        assert!(e.to_string().contains("7.500 ms"));
        assert!(e.to_string().contains("stage count"));
        let e = EngineError::QueueFull {
            capacity: 4,
            stage: Stage::Admission,
        };
        assert!(e.to_string().contains("4 slots"));
        let e = EngineError::from(CoreError::GraphTooLargeForDevice {
            required_bytes: 2,
            capacity_bytes: 1,
        });
        assert!(e.to_string().contains("count failed"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn stages_attribute_failures() {
        let prep = CoreError::GraphTooLargeForDevice {
            required_bytes: 2,
            capacity_bytes: 1,
        }
        .with_context(ErrorContext {
            phase: Some("preprocess".into()),
            ..Default::default()
        });
        assert_eq!(EngineError::Count(prep).stage(), Stage::Prepare);

        let count = CoreError::GraphTooLargeForDevice {
            required_bytes: 2,
            capacity_bytes: 1,
        }
        .with_context(ErrorContext {
            phase: Some("count".into()),
            ..Default::default()
        });
        assert_eq!(EngineError::Count(count).stage(), Stage::Count);

        let shed = EngineError::QueueFull {
            capacity: 1,
            stage: Stage::Admission,
        };
        assert_eq!(shed.stage(), Stage::Admission);
        assert_eq!(
            EngineError::Timeout {
                limit_ms: 1.0,
                needed_ms: 2.0,
                stage: Stage::Prepare,
            }
            .stage(),
            Stage::Prepare
        );
        assert_eq!(EngineError::Jobfile("bad".into()).stage(), Stage::Admission);
    }
}
