//! # tc-engine — a batched triangle-counting engine
//!
//! The paper measures one graph, one run, one device. This crate is the
//! serving layer above it: an [`Engine`] accepts a batch of jobs (graph ×
//! backend × options) and runs them through
//!
//! * a **[`PreparedGraph`] cache** keyed by graph content digest and
//!   backend token — the host-to-device copy and the eight preprocessing
//!   steps (the majority of the paper's measured window, §III-E) are paid
//!   once per distinct (graph, backend) and every further count runs only
//!   the kernel phases;
//! * a **[`DevicePool`]** leasing warm simulated devices to workers, so
//!   the ~100 ms context bring-up (§IV) is paid per device, not per job;
//! * a **bounded job queue** with blocking backpressure (or load-shedding
//!   admission), a configurable worker fleet, per-job modeled-time
//!   budgets, and per-job [`ProfileReport`] attribution;
//! * **engine-wide telemetry**: a lifetime [`MetricsRegistry`]
//!   (deterministic modeled series + advisory host-side series) and an
//!   end-to-end [`RequestTrace`] per job whose stage spans nest the
//!   kernel profiler's spans, exported together as one Chrome trace.
//!
//! Batches are deterministic: the same jobs produce the same
//! [`BatchReport`] JSON, metrics snapshot, and trace bytes regardless of
//! worker count or scheduling, because every modeled quantity is
//! schedule-independent and cache hits are assigned by submission order,
//! not by which worker won a race. (Under [`Admission::Shed`] the
//! deterministic promise is forfeited — which jobs shed depends on load;
//! the default [`Admission::Block`] keeps it.)
//!
//! ```
//! use std::sync::Arc;
//! use tc_engine::{Engine, EngineConfig, Job};
//! use tc_graph::EdgeArray;
//!
//! let g = Arc::new(EdgeArray::from_undirected_pairs([
//!     (0, 1), (0, 2), (1, 2), (1, 3), (2, 3),
//! ]));
//! let engine = Engine::new(EngineConfig::default());
//! let jobs = (0..3)
//!     .map(|i| Job::new(format!("diamond#{i}"), Arc::clone(&g), "gtx980".parse().unwrap()))
//!     .collect();
//! let report = engine.run_batch(jobs);
//! assert_eq!(report.cache_hits, 2); // first job prepares, the rest reuse
//! for job in &report.jobs {
//!     assert_eq!(job.result.as_ref().unwrap().triangles, 2);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod jobfile;
pub mod queue;

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tc_core::gpu::prepared::PreparedGraph;
use tc_core::{Backend, CountRequest, GpuOptions, PreparedCluster};
use tc_graph::EdgeArray;
use tc_simt::profiler::{ProfileReport, RelSpan};
use tc_simt::{ClusterTopology, DevicePool, PoolTicket};
use tc_telemetry::{
    chrome_trace_json, seconds_to_ns, Determinism, MetricsRegistry, MetricsSnapshot, RequestTrace,
    Stage, TraceSpan,
};

pub use error::EngineError;
pub use jobfile::parse_jobfile;

/// What the engine does when a job arrives and the queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Block the submitter until a slot frees (backpressure). Keeps the
    /// batch fully deterministic: every job runs.
    #[default]
    Block,
    /// Refuse the job immediately ([`EngineError::QueueFull`] in its
    /// report slot) and count it in the advisory `engine_shed_total`
    /// series. Which jobs shed depends on worker speed, so shedding
    /// forfeits byte-identical reports.
    Shed,
}

/// Engine sizing. Defaults suit tests and CLI batches; a serving
/// deployment tunes all four.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Job-queue slots; submission blocks (backpressure) when full.
    pub queue_capacity: usize,
    /// Distinct (graph, backend) sessions kept device-resident. Batches
    /// with more distinct cacheable keys run the excess one-shot.
    pub cache_capacity: usize,
    /// Full-queue policy: block the submitter (default) or shed the job.
    pub admission: Admission,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: tc_par::max_threads().clamp(1, 8),
            queue_capacity: 64,
            cache_capacity: 8,
            admission: Admission::Block,
        }
    }
}

/// One unit of work: count the triangles of `graph` with `backend`.
///
/// Built with [`Job::new`] plus chainable options:
///
/// ```
/// use std::sync::Arc;
/// use tc_engine::Job;
/// use tc_graph::EdgeArray;
///
/// let g = Arc::new(EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (0, 2)]));
/// let job = Job::new("triangle", g, "gtx980".parse().unwrap())
///     .profile(true)
///     .timeout_ms(50.0);
/// assert!(job.profile);
/// assert_eq!(job.timeout_ms, Some(50.0));
/// ```
#[derive(Clone, Debug)]
pub struct Job {
    /// Caller-chosen label; carried through to the report.
    pub name: String,
    pub graph: Arc<EdgeArray>,
    pub backend: Backend,
    /// Attach a per-job [`ProfileReport`] to the result.
    pub profile: bool,
    /// Budget for the job's *modeled* time (deterministic, unlike host
    /// time): a job charged more than this many milliseconds reports
    /// [`EngineError::Timeout`] instead of a count.
    pub timeout_ms: Option<f64>,
}

impl Job {
    pub fn new(name: impl Into<String>, graph: Arc<EdgeArray>, backend: Backend) -> Self {
        Job {
            name: name.into(),
            graph,
            backend,
            profile: false,
            timeout_ms: None,
        }
    }

    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    pub fn timeout_ms(mut self, ms: f64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }
}

/// A successful job: the count and what it cost.
#[derive(Clone, Debug)]
pub struct JobResult {
    pub triangles: u64,
    /// Seconds charged to this job: `prepare_s + count_s` for modeled
    /// backends (host wall-clock for CPU backends).
    pub seconds: f64,
    /// Preprocessing seconds this job paid — zero on a cache hit, which is
    /// the entire point of the prepared-session cache.
    pub prepare_s: f64,
    /// Kernel-phase seconds (or the whole run for non-cacheable backends).
    pub count_s: f64,
    /// Whether the count reused an already-prepared session.
    pub cache_hit: bool,
    /// Whether `seconds` is *modeled* simulated-device time (deterministic)
    /// rather than measured host wall time (CPU backends).
    pub modeled: bool,
    pub profile: Option<ProfileReport>,
    /// Prepare-window phase spans on a clock-base-free nanosecond
    /// timeline — empty on cache hits (the hit paid no prepare) and for
    /// non-cacheable backends.
    pub prepare_trace: Vec<RelSpan>,
    /// Count-window kernel spans on the same kind of timeline.
    pub kernel_trace: Vec<RelSpan>,
}

/// One job's slot in the batch report.
#[derive(Debug)]
pub struct JobRecord {
    pub name: String,
    /// Canonical backend token (the `Display` form of [`Backend`]).
    pub backend: String,
    pub result: Result<JobResult, EngineError>,
}

/// Everything one [`Engine::run_batch`] call produced, in submission
/// order.
#[derive(Debug)]
pub struct BatchReport {
    pub jobs: Vec<JobRecord>,
    /// Jobs that reused a prepared session.
    pub cache_hits: usize,
    /// Jobs that paid a preprocessing pass (cacheable misses and one-shot
    /// overflow).
    pub cache_misses: usize,
    /// Devices the engine's pool has created so far (each paid context
    /// bring-up once).
    pub devices_created: usize,
    /// One end-to-end trace per job, in submission order (trace id =
    /// submission index). Byte-identical across runs and worker counts
    /// under [`Admission::Block`].
    pub traces: Vec<RequestTrace>,
    /// Snapshot of the engine's lifetime metrics registry, taken at the
    /// end of the batch.
    pub metrics: MetricsSnapshot,
}

impl BatchReport {
    /// Deterministic JSON: same jobs → same bytes, regardless of worker
    /// count (restrict to modeled backends; CPU timings are host-measured).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use tc_engine::{Engine, EngineConfig, Job};
    /// use tc_graph::EdgeArray;
    ///
    /// let engine = Engine::new(EngineConfig::default());
    /// let g = Arc::new(EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (0, 2)]));
    /// let report = engine.run_batch(vec![Job::new("t", g, "gtx980".parse().unwrap())]);
    /// let json = report.to_json();
    /// assert!(json.contains("\"triangles\": 1"));
    /// assert!(json.contains("\"backend\": \"gtx980\""));
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 256 * self.jobs.len());
        out.push_str("{\n  \"jobs\": [\n");
        for (i, job) in self.jobs.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&job.name)));
            out.push_str(&format!(
                "      \"backend\": {},\n",
                json_string(&job.backend)
            ));
            match &job.result {
                Ok(r) => {
                    out.push_str("      \"status\": \"ok\",\n");
                    out.push_str(&format!("      \"triangles\": {},\n", r.triangles));
                    out.push_str(&format!("      \"seconds\": {},\n", json_f64(r.seconds)));
                    out.push_str(&format!(
                        "      \"prepare_s\": {},\n",
                        json_f64(r.prepare_s)
                    ));
                    out.push_str(&format!("      \"count_s\": {},\n", json_f64(r.count_s)));
                    out.push_str(&format!("      \"cache_hit\": {}\n", r.cache_hit));
                }
                Err(e) => {
                    out.push_str("      \"status\": \"error\",\n");
                    out.push_str(&format!(
                        "      \"error\": {}\n",
                        json_string(&e.to_string())
                    ));
                }
            }
            out.push_str("    }");
            if i + 1 != self.jobs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"cache_hits\": {},\n", self.cache_hits));
        out.push_str(&format!("  \"cache_misses\": {},\n", self.cache_misses));
        out.push_str(&format!(
            "  \"devices_created\": {}\n}}\n",
            self.devices_created
        ));
        out
    }

    /// All request traces as one Chrome Trace Event JSON document — open
    /// it in Perfetto / `chrome://tracing` to see every request of the
    /// batch from the front door down to the kernel's DRAM phases.
    pub fn trace_json(&self) -> String {
        chrome_trace_json(&self.traces)
    }

    /// The metrics snapshot as canonical JSON. With
    /// `include_advisory = false` (CI mode) the advisory section renders
    /// as `null`, so the bytes compare equal across hosts and runs.
    pub fn metrics_json(&self, include_advisory: bool) -> String {
        self.metrics.to_json(include_advisory)
    }

    /// The metrics snapshot in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics.to_prometheus()
    }
}

/// Build one job's end-to-end trace from its report record. The timeline
/// is the request's own modeled time (t = 0 at the start of its first
/// charged stage): instant markers for admission and the planned cache
/// decision, a `engine:prepare` stage nesting the device-side
/// preprocess/schedule spans (misses only), an `engine:count` stage
/// nesting the kernel spans, and a closing `engine:merge` marker. CPU
/// backends are host-measured, so their count stage is an instant — wall
/// time never enters the deterministic artifact. Failed jobs get an
/// `engine:error[<stage>]` marker at their attributed stage instead.
fn build_trace(id: u64, rec: &JobRecord) -> RequestTrace {
    let mut spans = vec![TraceSpan::new("engine:admission", 0, 0, 0)];
    match &rec.result {
        Ok(r) => {
            spans.push(TraceSpan::new(
                if r.cache_hit {
                    "engine:cache-hit"
                } else {
                    "engine:cache-miss"
                },
                0,
                0,
                0,
            ));
            let mut cursor = 0u64;
            if r.modeled {
                if !r.cache_hit {
                    spans.push(TraceSpan::new("engine:device-lease", 0, 0, 0));
                }
                // The stage span must contain its children; the children's
                // ends come from prefix-sum rounding while the stage total
                // is quantized once, so take the max of the two.
                let child_end = |t: &[RelSpan]| t.iter().map(|s| s.start_ns + s.dur_ns).max();
                let prepare_ns =
                    seconds_to_ns(r.prepare_s).max(child_end(&r.prepare_trace).unwrap_or(0));
                if prepare_ns > 0 || !r.prepare_trace.is_empty() {
                    spans.push(TraceSpan::new("engine:prepare", 0, prepare_ns, 0));
                    for s in &r.prepare_trace {
                        spans.push(TraceSpan::new(
                            s.path.clone(),
                            s.start_ns,
                            s.dur_ns,
                            s.depth + 1,
                        ));
                    }
                    cursor = prepare_ns;
                }
                let count_ns =
                    seconds_to_ns(r.count_s).max(child_end(&r.kernel_trace).unwrap_or(0));
                spans.push(TraceSpan::new("engine:count", cursor, count_ns, 0));
                for s in &r.kernel_trace {
                    spans.push(TraceSpan::new(
                        s.path.clone(),
                        cursor + s.start_ns,
                        s.dur_ns,
                        s.depth + 1,
                    ));
                }
                cursor += count_ns;
            } else {
                spans.push(TraceSpan::new("engine:count", cursor, 0, 0));
            }
            spans.push(TraceSpan::new("engine:merge", cursor, 0, 0));
        }
        Err(e) => {
            spans.push(TraceSpan::new(
                format!("engine:error[{}]", e.stage()),
                0,
                0,
                0,
            ));
        }
    }
    RequestTrace {
        id,
        name: rec.name.clone(),
        backend: rec.backend.clone(),
        spans,
    }
}

/// Cache key: graph content digest × canonical backend token. Two loads of
/// the same edge set hit the same session even via different files or
/// orderings (the digest is order-independent).
type CacheKey = (u64, String);

/// One resident prepared session. Single-device sessions hold a device
/// leased from the engine's pool (the ticket returns it on release);
/// cluster sessions own their whole node × device grid outright — the
/// pool only models single warm devices, and a cluster's interconnect
/// charging is bound to its topology, so its devices are never shared.
enum CacheEntry {
    Single {
        // Boxed so the enum stays small: a cluster entry is a slim
        // handle while a single-device session embeds the whole
        // prepared state.
        prepared: Box<PreparedGraph>,
        ticket: PoolTicket,
    },
    Cluster {
        prepared: Box<PreparedCluster>,
    },
}

/// How the planner routed a job (fixed before execution so reports are
/// schedule-independent).
enum Plan {
    /// Cacheable: count through the shared prepared session. `hit` is true
    /// for every occurrence of a key after its first.
    Cached { key: CacheKey, hit: bool },
    /// Run start-to-finish on a pooled device (non-GPU backends, and
    /// cacheable jobs beyond `cache_capacity` distinct keys).
    OneShot,
}

/// The batched counting engine; see the crate docs.
pub struct Engine {
    config: EngineConfig,
    pool: DevicePool,
    cache: Mutex<HashMap<CacheKey, Arc<Mutex<Option<CacheEntry>>>>>,
    /// Keys admitted to the cache, in admission order (bounded by
    /// `cache_capacity`). Persisted across batches: an engine is a serving
    /// process, and batch N+1 reuses the sessions batch N prepared.
    admitted: Mutex<Vec<CacheKey>>,
    /// Lifetime metrics; every batch accumulates into it and snapshots it
    /// for the batch report.
    metrics: MetricsRegistry,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        // Workers hold at most one transient device each; cache residents
        // hold at most `cache_capacity` more. Sizing the pool to the sum
        // means an acquire can always eventually succeed — no deadlock.
        let pool = DevicePool::new(config.workers.max(1) + config.cache_capacity.max(1));
        Engine {
            config,
            pool,
            cache: Mutex::new(HashMap::new()),
            admitted: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The engine's lifetime metrics registry (accumulates across
    /// batches). Snapshot it any time; [`Engine::run_batch`] attaches a
    /// snapshot to every report.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Lifetime cache hit ratio (hits / cacheable lookups), from the
    /// deterministic counters. `None` until a cacheable job has run.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use tc_engine::{Engine, EngineConfig, Job};
    /// use tc_graph::EdgeArray;
    ///
    /// let engine = Engine::new(EngineConfig::default());
    /// assert_eq!(engine.cache_hit_ratio(), None);
    ///
    /// let g = Arc::new(EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (0, 2)]));
    /// let jobs = (0..4)
    ///     .map(|i| Job::new(format!("j{i}"), Arc::clone(&g), "gtx980".parse().unwrap()))
    ///     .collect();
    /// engine.run_batch(jobs);
    /// // One prepare served three hits: 3 / 4.
    /// assert_eq!(engine.cache_hit_ratio(), Some(0.75));
    /// ```
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let hits = self.metrics.counter_value("engine_cache_hits_total", &[]);
        let misses = self.metrics.counter_value("engine_cache_misses_total", &[]);
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Prepared sessions currently resident.
    pub fn cached_sessions(&self) -> usize {
        self.admitted.lock().unwrap().len()
    }

    /// Run a batch; results come back in submission order. Jobs are fed
    /// through the bounded queue (blocking on backpressure, or shedding
    /// under [`Admission::Shed`]) to `config.workers` worker threads.
    pub fn run_batch(&self, jobs: Vec<Job>) -> BatchReport {
        let plans = self.plan(&jobs);
        let results: Vec<Mutex<Option<JobRecord>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let queue: queue::JobQueue<(usize, Job, Plan, Instant)> =
            queue::JobQueue::new(self.config.queue_capacity);

        std::thread::scope(|s| {
            for _ in 0..self.config.workers.max(1) {
                let queue = &queue;
                let results = &results;
                s.spawn(move || {
                    while let Some((idx, job, plan, enqueued)) = queue.pop() {
                        self.metrics.observe_ns(
                            Determinism::Advisory,
                            "engine_queue_wait_host_ns",
                            "Host nanoseconds a job sat in the bounded queue.",
                            &[],
                            enqueued.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                        );
                        let record = self.execute(&job, &plan);
                        self.record_job_metrics(&record);
                        *results[idx].lock().unwrap() = Some(record);
                    }
                });
            }
            for (idx, (job, plan)) in jobs.into_iter().zip(plans).enumerate() {
                let backend_token = job.backend.to_string();
                self.metrics.inc_counter(
                    Determinism::Deterministic,
                    "engine_requests_total",
                    "Jobs submitted to the engine, by canonical backend token.",
                    &[("backend", &backend_token)],
                    1,
                );
                match self.config.admission {
                    Admission::Block => queue.push((idx, job, plan, Instant::now())),
                    Admission::Shed => {
                        let name = job.name.clone();
                        if let Err(e) = queue.try_push((idx, job, plan, Instant::now())) {
                            self.metrics.inc_counter(
                                Determinism::Advisory,
                                "engine_shed_total",
                                "Jobs refused at admission because the queue was full.",
                                &[],
                                1,
                            );
                            let record = JobRecord {
                                name,
                                backend: backend_token,
                                result: Err(e),
                            };
                            self.record_job_metrics(&record);
                            *results[idx].lock().unwrap() = Some(record);
                        }
                    }
                }
                self.metrics.gauge_max(
                    Determinism::Advisory,
                    "engine_queue_depth_highwater",
                    "Deepest the bounded job queue got (host-side observation).",
                    &[],
                    queue.len() as f64,
                );
            }
            queue.close();
        });

        let jobs: Vec<JobRecord> = results
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every job ran"))
            .collect();
        let cache_hits = jobs
            .iter()
            .filter(|j| matches!(&j.result, Ok(r) if r.cache_hit))
            .count();
        let cache_misses = jobs
            .iter()
            .filter(|j| matches!(&j.result, Ok(r) if !r.cache_hit))
            .count();
        if let Some(ratio) = self.cache_hit_ratio() {
            // Derived purely from deterministic counters, so the gauge is
            // deterministic too.
            self.metrics.set_gauge(
                Determinism::Deterministic,
                "engine_cache_hit_ratio",
                "Lifetime prepared-session cache hit ratio (hits / cacheable lookups).",
                &[],
                ratio,
            );
        }
        self.metrics.set_gauge(
            Determinism::Advisory,
            "engine_devices_created",
            "Simulated devices the pool has created (each paid context bring-up).",
            &[],
            self.pool.devices_created() as f64,
        );
        self.metrics.set_gauge(
            Determinism::Advisory,
            "engine_workers",
            "Configured worker threads.",
            &[],
            self.config.workers.max(1) as f64,
        );
        let traces = jobs
            .iter()
            .enumerate()
            .map(|(id, rec)| build_trace(id as u64, rec))
            .collect();
        BatchReport {
            jobs,
            cache_hits,
            cache_misses,
            devices_created: self.pool.devices_created(),
            traces,
            metrics: self.metrics.snapshot(),
        }
    }

    /// Fold one finished job into the lifetime registry. Runs on whichever
    /// worker finished the job: counter adds and histogram observations
    /// are order-independent, so the deterministic series end the batch
    /// identical no matter the interleaving.
    fn record_job_metrics(&self, record: &JobRecord) {
        let m = &self.metrics;
        match &record.result {
            Ok(r) => {
                m.inc_counter(
                    Determinism::Deterministic,
                    "engine_jobs_ok_total",
                    "Jobs that returned a triangle count.",
                    &[],
                    1,
                );
                m.inc_counter(
                    Determinism::Deterministic,
                    "engine_triangles_total",
                    "Triangles counted across all successful jobs.",
                    &[],
                    r.triangles,
                );
                m.inc_counter(
                    Determinism::Deterministic,
                    if r.cache_hit {
                        "engine_cache_hits_total"
                    } else {
                        "engine_cache_misses_total"
                    },
                    if r.cache_hit {
                        "Jobs that reused a prepared session."
                    } else {
                        "Jobs that paid a preprocessing pass."
                    },
                    &[],
                    1,
                );
                if r.modeled {
                    if !r.cache_hit && r.prepare_s > 0.0 {
                        m.observe_ns(
                            Determinism::Deterministic,
                            "engine_prepare_modeled_ns",
                            "Modeled nanoseconds of preprocessing passes (misses only).",
                            &[],
                            seconds_to_ns(r.prepare_s),
                        );
                    }
                    m.observe_ns(
                        Determinism::Deterministic,
                        "engine_count_modeled_ns",
                        "Modeled nanoseconds of counting phases, by backend.",
                        &[("backend", &record.backend)],
                        seconds_to_ns(r.count_s),
                    );
                } else {
                    // CPU backends are host-measured; wall time never
                    // enters a deterministic series.
                    m.observe_ns(
                        Determinism::Advisory,
                        "engine_cpu_host_ns",
                        "Host nanoseconds of CPU-backend jobs, by backend.",
                        &[("backend", &record.backend)],
                        seconds_to_ns(r.seconds),
                    );
                }
            }
            Err(e) => {
                m.inc_counter(
                    Determinism::Deterministic,
                    "engine_jobs_failed_total",
                    "Jobs that failed, by the request stage the failure is attributed to.",
                    &[("stage", e.stage().as_str())],
                    1,
                );
                if matches!(e, EngineError::Timeout { .. }) {
                    m.inc_counter(
                        Determinism::Deterministic,
                        "engine_timeouts_total",
                        "Jobs whose modeled time exceeded their budget.",
                        &[],
                        1,
                    );
                }
            }
        }
    }

    /// Decide, in submission order, which jobs count through the cache and
    /// which occurrence of each key pays the prepare. Doing this before any
    /// worker runs makes the reported hit flags (and the JSON) independent
    /// of scheduling.
    fn plan(&self, jobs: &[Job]) -> Vec<Plan> {
        let mut admitted = self.admitted.lock().unwrap();
        let mut cache = self.cache.lock().unwrap();
        jobs.iter()
            .map(|job| {
                if !matches!(&job.backend, Backend::Gpu(_) | Backend::Cluster { .. }) {
                    return Plan::OneShot;
                }
                let key: CacheKey = (job.graph.digest(), job.backend.to_string());
                if !admitted.contains(&key) {
                    if admitted.len() >= self.config.cache_capacity {
                        return Plan::OneShot;
                    }
                    admitted.push(key.clone());
                    cache.entry(key.clone()).or_default();
                    return Plan::Cached { key, hit: false };
                }
                // Resident already — from a previous batch, or because an
                // earlier job in this one was planned as the paying miss.
                Plan::Cached { key, hit: true }
            })
            .collect()
    }

    fn execute(&self, job: &Job, plan: &Plan) -> JobRecord {
        let name = job.name.clone();
        let backend = job.backend.to_string();
        let result = catch_unwind(AssertUnwindSafe(|| self.execute_inner(job, plan)))
            .unwrap_or_else(|panic| {
                let detail = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "unknown panic".into());
                Err(EngineError::WorkerPanicked { detail })
            });
        JobRecord {
            name,
            backend,
            result,
        }
    }

    fn execute_inner(&self, job: &Job, plan: &Plan) -> Result<JobResult, EngineError> {
        let result = match plan {
            Plan::Cached { key, hit } => self.run_cached(job, key, *hit)?,
            Plan::OneShot => self.run_oneshot(job)?,
        };
        if let Some(limit_ms) = job.timeout_ms {
            let needed_ms = result.seconds * 1e3;
            if needed_ms > limit_ms {
                // Attribute the blown budget: if the preprocessing charge
                // alone exceeded it, no count could have fit — the prepare
                // stage is at fault; otherwise the count pushed it over.
                let stage = if result.prepare_s * 1e3 > limit_ms {
                    Stage::Prepare
                } else {
                    Stage::Count
                };
                return Err(EngineError::Timeout {
                    limit_ms,
                    needed_ms,
                    stage,
                });
            }
        }
        Ok(result)
    }

    fn run_cached(&self, job: &Job, key: &CacheKey, hit: bool) -> Result<JobResult, EngineError> {
        let slot = Arc::clone(
            self.cache
                .lock()
                .unwrap()
                .get(key)
                .expect("planner created the slot"),
        );
        // The slot lock serializes jobs for the same session; jobs for
        // *different* sessions proceed in parallel on other workers.
        let mut entry = slot.lock().unwrap();
        if entry.is_none() {
            // On a prepare error nothing is cached (for single-device
            // sessions the pool ticket drops here, freeing the slot);
            // the next job for this key retries the prepare.
            *entry = Some(match &job.backend {
                Backend::Gpu(opts) => {
                    let lease = self.pool.acquire(&opts.device);
                    let (device, ticket) = lease.detach();
                    let prepared = PreparedGraph::prepare_on(device, &job.graph, opts)
                        .map_err(EngineError::Count)?;
                    CacheEntry::Single {
                        prepared: Box::new(prepared),
                        ticket,
                    }
                }
                Backend::Cluster {
                    options,
                    nodes,
                    devices_per_node,
                    partition,
                } => {
                    let topology = ClusterTopology::new(*nodes, *devices_per_node);
                    let prepared =
                        PreparedCluster::prepare(&job.graph, options, topology, *partition)
                            .map_err(EngineError::Count)?;
                    CacheEntry::Cluster {
                        prepared: Box::new(prepared),
                    }
                }
                _ => unreachable!("only GPU and cluster backends are planned as cached"),
            });
        }
        // The prepare is charged to the first-occurrence job from the
        // plan, not to whichever worker happened to run it first: the
        // modeled prepare cost is deterministic, so the report is too.
        match entry.as_mut().expect("just prepared") {
            CacheEntry::Single { prepared, .. } => {
                let counted = prepared.count().map_err(EngineError::Count)?;
                let prepare_s = if hit { 0.0 } else { prepared.prepare_s() };
                let prepare_trace = if hit {
                    Vec::new()
                } else {
                    prepared.prepare_trace().to_vec()
                };
                Ok(JobResult {
                    triangles: counted.triangles,
                    seconds: prepare_s + counted.count_s,
                    prepare_s,
                    count_s: counted.count_s,
                    cache_hit: hit,
                    modeled: true,
                    profile: job.profile.then_some(counted.profile),
                    prepare_trace,
                    kernel_trace: counted.trace,
                })
            }
            CacheEntry::Cluster { prepared } => {
                let counted = prepared.count().map_err(EngineError::Count)?;
                let prepare_s = if hit { 0.0 } else { prepared.prepare_s() };
                let prepare_trace = if hit {
                    Vec::new()
                } else {
                    prepared.prepare_trace().to_vec()
                };
                Ok(JobResult {
                    triangles: counted.triangles,
                    seconds: prepare_s + counted.count_s,
                    prepare_s,
                    count_s: counted.count_s,
                    cache_hit: hit,
                    modeled: true,
                    profile: job.profile.then_some(counted.profile),
                    prepare_trace,
                    kernel_trace: counted.trace,
                })
            }
        }
    }

    fn run_oneshot(&self, job: &Job) -> Result<JobResult, EngineError> {
        if let Backend::Cluster {
            options,
            nodes,
            devices_per_node,
            partition,
        } = &job.backend
        {
            // Uncached cluster job (overflow beyond `cache_capacity`): a
            // full shard/count/release session on a transient cluster.
            let topology = ClusterTopology::new(*nodes, *devices_per_node);
            let mut prepared = PreparedCluster::prepare(&job.graph, options, topology, *partition)
                .map_err(EngineError::Count)?;
            let prepare_s = prepared.prepare_s();
            let prepare_trace = prepared.prepare_trace().to_vec();
            let counted = prepared.count().map_err(EngineError::Count)?;
            prepared.release().map_err(EngineError::Count)?;
            return Ok(JobResult {
                triangles: counted.triangles,
                seconds: prepare_s + counted.count_s,
                prepare_s,
                count_s: counted.count_s,
                cache_hit: false,
                modeled: true,
                profile: job.profile.then_some(counted.profile),
                prepare_trace,
                kernel_trace: counted.trace,
            });
        }
        if let Backend::Gpu(opts) = &job.backend {
            // Uncached GPU job: full prepare+count+release session on a
            // pooled (warm) device.
            let lease = self.pool.acquire(&opts.device);
            let (device, ticket) = lease.detach();
            let outcome = Self::oneshot_session(device, &job.graph, opts, job.profile);
            match outcome {
                Ok((result, device)) => {
                    ticket.restore(device);
                    Ok(result)
                }
                Err(e) => Err(EngineError::Count(e)),
            }
        } else {
            let r = CountRequest::new(job.backend.clone())
                .profile(job.profile)
                .graph_name(&job.name)
                .run(&job.graph)
                .map_err(EngineError::Count)?;
            Ok(JobResult {
                triangles: r.triangles,
                seconds: r.seconds,
                prepare_s: r.gpu.as_ref().map_or(0.0, |g| g.preprocess_s),
                count_s: r.gpu.as_ref().map_or(r.seconds, |g| g.count_s),
                cache_hit: false,
                modeled: job.backend.is_modeled(),
                profile: r.profile,
                prepare_trace: Vec::new(),
                kernel_trace: Vec::new(),
            })
        }
    }

    fn oneshot_session(
        device: tc_simt::Device,
        graph: &EdgeArray,
        opts: &GpuOptions,
        profile: bool,
    ) -> Result<(JobResult, tc_simt::Device), tc_core::CoreError> {
        let mut prepared = PreparedGraph::prepare_on(device, graph, opts)?;
        let prepare_s = prepared.prepare_s();
        let prepare_trace = prepared.prepare_trace().to_vec();
        let counted = prepared.count()?;
        let device = prepared.release()?;
        Ok((
            JobResult {
                triangles: counted.triangles,
                seconds: prepare_s + counted.count_s,
                prepare_s,
                count_s: counted.count_s,
                cache_hit: false,
                modeled: true,
                profile: profile.then_some(counted.profile),
                prepare_trace,
                kernel_trace: counted.trace,
            },
            device,
        ))
    }

    /// Release every prepared session, returning its warm device to the
    /// pool (cluster sessions own their devices and simply drop them). The
    /// engine stays usable; the next batch re-admits from scratch.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use tc_engine::{Engine, EngineConfig, Job};
    /// use tc_graph::EdgeArray;
    ///
    /// let engine = Engine::new(EngineConfig::default());
    /// let g = Arc::new(EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (0, 2)]));
    /// engine.run_batch(vec![Job::new("warm", g, "cluster:2x2/gtx980".parse().unwrap())]);
    /// assert_eq!(engine.cached_sessions(), 1);
    /// engine.clear_cache();
    /// assert_eq!(engine.cached_sessions(), 0);
    /// ```
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().unwrap();
        for (_, slot) in cache.drain() {
            if let Some(entry) = slot.lock().unwrap().take() {
                match entry {
                    CacheEntry::Single { prepared, ticket } => {
                        if let Ok(device) = prepared.release() {
                            ticket.restore(device);
                        }
                    }
                    // Cluster devices belong to the session, not the
                    // pool — releasing frees their arenas and drops them.
                    CacheEntry::Cluster { prepared } => {
                        let _ = prepared.release();
                    }
                }
            }
        }
        self.admitted.lock().unwrap().clear();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.clear_cache();
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_simt::DeviceConfig;

    fn diamond() -> Arc<EdgeArray> {
        Arc::new(EdgeArray::from_undirected_pairs([
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
        ]))
    }

    fn gpu() -> Backend {
        Backend::Gpu(GpuOptions::new(
            DeviceConfig::gtx_980().with_unlimited_memory(),
        ))
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            workers: 2,
            queue_capacity: 4,
            cache_capacity: 2,
            admission: Admission::Block,
        }
    }

    #[test]
    fn repeated_jobs_hit_the_cache_and_agree() {
        let engine = Engine::new(small_config());
        let g = diamond();
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::new(format!("j{i}"), Arc::clone(&g), gpu()))
            .collect();
        let report = engine.run_batch(jobs);
        assert_eq!(report.cache_hits, 4);
        assert_eq!(report.cache_misses, 1);
        for job in &report.jobs {
            let r = job.result.as_ref().unwrap();
            assert_eq!(r.triangles, 2);
            if r.cache_hit {
                assert_eq!(r.prepare_s, 0.0);
            } else {
                assert!(r.prepare_s > 0.0);
            }
        }
        // The session survives into the next batch.
        let report2 = engine.run_batch(vec![Job::new("late", g, gpu())]);
        assert_eq!(report2.cache_hits, 1);
        assert_eq!(engine.cached_sessions(), 1);
    }

    #[test]
    fn sanitized_and_plain_backends_get_distinct_sessions() {
        // The cache key includes the backend token, and `/sanitize` is
        // part of the token — so a sanitized run must never reuse (or be
        // reused by) an unsanitized prepared session.
        let engine = Engine::new(small_config());
        let g = diamond();
        let mut sanitized = gpu();
        assert!(sanitized.set_sanitizer(tc_simt::SanitizerMode::Check));
        let jobs = vec![
            Job::new("plain0", Arc::clone(&g), gpu()),
            Job::new("san0", Arc::clone(&g), sanitized.clone()),
            Job::new("plain1", Arc::clone(&g), gpu()),
            Job::new("san1", g, sanitized),
        ];
        let report = engine.run_batch(jobs);
        // Two distinct sessions, each paying one prepare and serving one hit.
        assert_eq!(report.cache_misses, 2);
        assert_eq!(report.cache_hits, 2);
        assert_eq!(engine.cached_sessions(), 2);
        for job in &report.jobs {
            assert_eq!(job.result.as_ref().unwrap().triangles, 2);
        }
        assert_eq!(report.jobs[0].backend, "gtx980");
        assert_eq!(report.jobs[1].backend, "gtx980/sanitize");
    }

    #[test]
    fn verified_and_plain_backends_get_distinct_sessions() {
        // `/verify` is the final suffix of the canonical token, so a
        // verified run (which carries launch proofs and may skip dynamic
        // racechecks) never shares a prepared session with a plain run.
        let engine = Engine::new(small_config());
        let g = diamond();
        let mut verified = gpu();
        assert!(verified.set_verify(true));
        let jobs = vec![
            Job::new("plain", Arc::clone(&g), gpu()),
            Job::new("ver0", Arc::clone(&g), verified.clone()),
            Job::new("ver1", g, verified),
        ];
        let report = engine.run_batch(jobs);
        assert_eq!(report.cache_misses, 2);
        assert_eq!(report.cache_hits, 1);
        for job in &report.jobs {
            assert_eq!(job.result.as_ref().unwrap().triangles, 2);
        }
        assert_eq!(report.jobs[1].backend, "gtx980/verify");
        // Verification is host-side only: the verified jobs count the
        // same triangles in the same modeled time as the plain job.
        let plain_s = report.jobs[0].result.as_ref().unwrap().count_s;
        let verified_s = report.jobs[1].result.as_ref().unwrap().count_s;
        assert_eq!(plain_s, verified_s);
    }

    #[test]
    fn non_gpu_backends_run_oneshot() {
        let engine = Engine::new(small_config());
        let g = diamond();
        let report = engine.run_batch(vec![
            Job::new("cpu", Arc::clone(&g), Backend::CpuForward),
            Job::new("gpu", g, gpu()),
        ]);
        let cpu = report.jobs[0].result.as_ref().unwrap();
        assert_eq!(cpu.triangles, 2);
        assert!(!cpu.cache_hit);
        assert_eq!(report.jobs[0].backend, "forward");
    }

    #[test]
    fn cache_overflow_falls_back_to_oneshot() {
        let mut cfg = small_config();
        cfg.cache_capacity = 1;
        let engine = Engine::new(cfg);
        let g1 = diamond();
        let g2 = Arc::new(EdgeArray::from_undirected_pairs([(0, 1), (1, 2), (0, 2)]));
        let jobs = vec![
            Job::new("a0", Arc::clone(&g1), gpu()),
            Job::new("b0", Arc::clone(&g2), gpu()),
            Job::new("a1", g1, gpu()),
            Job::new("b1", g2, gpu()),
        ];
        let report = engine.run_batch(jobs);
        // g1 is admitted; g2 overflows and runs one-shot both times.
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cache_misses, 3);
        assert_eq!(report.jobs[1].result.as_ref().unwrap().triangles, 1);
        assert!(!report.jobs[3].result.as_ref().unwrap().cache_hit);
    }

    #[test]
    fn timeouts_use_modeled_time() {
        let engine = Engine::new(small_config());
        let g = diamond();
        let report = engine.run_batch(vec![
            Job::new("fast-enough", Arc::clone(&g), gpu()).timeout_ms(10_000.0),
            Job::new("impossible", g, gpu()).timeout_ms(1e-9),
        ]);
        assert!(report.jobs[0].result.is_ok());
        match &report.jobs[1].result {
            Err(EngineError::Timeout {
                limit_ms,
                needed_ms,
                ..
            }) => {
                assert!(needed_ms > limit_ms);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn failed_jobs_report_errors_without_poisoning_the_batch() {
        let engine = Engine::new(small_config());
        let g = diamond();
        let tiny = Backend::Gpu(GpuOptions::new(
            DeviceConfig::gtx_980().with_memory_capacity(64),
        ));
        let report = engine.run_batch(vec![
            Job::new("too-big", Arc::clone(&g), tiny),
            Job::new("fine", g, gpu()),
        ]);
        assert!(matches!(report.jobs[0].result, Err(EngineError::Count(_))));
        assert_eq!(report.jobs[1].result.as_ref().unwrap().triangles, 2);
    }

    #[test]
    fn tiny_queue_backpressure_still_completes_every_job() {
        let mut cfg = small_config();
        cfg.queue_capacity = 1;
        cfg.workers = 3;
        let engine = Engine::new(cfg);
        let g = diamond();
        let jobs: Vec<Job> = (0..12)
            .map(|i| Job::new(format!("j{i}"), Arc::clone(&g), gpu()))
            .collect();
        let report = engine.run_batch(jobs);
        assert_eq!(report.jobs.len(), 12);
        assert!(report.jobs.iter().all(|j| j.result.is_ok()));
    }

    #[test]
    fn batch_json_is_deterministic_across_worker_counts() {
        let g = diamond();
        let mk_jobs = || -> Vec<Job> {
            (0..6)
                .map(|i| Job::new(format!("j{i}"), Arc::clone(&g), gpu()))
                .collect()
        };
        let mut json = Vec::new();
        for workers in [1, 4] {
            let engine = Engine::new(EngineConfig {
                workers,
                queue_capacity: 2,
                cache_capacity: 2,
                admission: Admission::Block,
            });
            json.push(engine.run_batch(mk_jobs()).to_json());
        }
        assert_eq!(json[0], json[1]);
        assert!(json[0].contains("\"cache_hit\": true"));
    }

    #[test]
    fn cluster_sessions_cache_separately_per_topology() {
        let engine = Engine::new(small_config());
        let g = diamond();
        let c22: Backend = "cluster:2x2/gtx980".parse().unwrap();
        let c12: Backend = "cluster:1x2/gtx980".parse().unwrap();
        let report = engine.run_batch(vec![
            Job::new("c22-0", Arc::clone(&g), c22.clone()),
            Job::new("c22-1", Arc::clone(&g), c22),
            Job::new("c12-0", g, c12),
        ]);
        // Same graph, different topology token → different session: the
        // 2x2 pair shares one prepare, the 1x2 job pays its own.
        assert_eq!(report.cache_misses, 2);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(engine.cached_sessions(), 2);
        for job in &report.jobs {
            let r = job.result.as_ref().unwrap();
            assert_eq!(r.triangles, 2);
            assert!(r.modeled);
        }
        assert_eq!(report.jobs[0].backend, "cluster:2x2/gtx980");
        assert_eq!(report.jobs[2].backend, "cluster:1x2/gtx980");
        let hit = report.jobs[1].result.as_ref().unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.prepare_s, 0.0);
        assert!(hit.prepare_trace.is_empty());
        // The miss's traces carry the cluster stage vocabulary.
        let miss = report.jobs[0].result.as_ref().unwrap();
        assert!(miss
            .prepare_trace
            .iter()
            .any(|s| s.path.starts_with("shard-partition")));
        assert!(miss
            .kernel_trace
            .iter()
            .any(|s| s.path.starts_with("shard-count")));
        assert!(miss
            .kernel_trace
            .iter()
            .any(|s| s.path == "internode-merge"));
        engine.clear_cache();
        assert_eq!(engine.cached_sessions(), 0);
    }

    #[test]
    fn cluster_and_single_device_counts_agree_through_the_engine() {
        let engine = Engine::new(small_config());
        let g = diamond();
        let report = engine.run_batch(vec![
            Job::new("single", Arc::clone(&g), gpu()),
            Job::new("cluster", g, "cluster:2x2/gtx980/balanced".parse().unwrap()),
        ]);
        let single = report.jobs[0].result.as_ref().unwrap();
        let cluster = report.jobs[1].result.as_ref().unwrap();
        assert_eq!(single.triangles, cluster.triangles);
    }

    #[test]
    fn profiles_attach_per_job() {
        let engine = Engine::new(small_config());
        let g = diamond();
        let report = engine.run_batch(vec![
            Job::new("profiled", Arc::clone(&g), gpu()).profile(true),
            Job::new("plain", g, gpu()),
        ]);
        let profiled = report.jobs[0].result.as_ref().unwrap();
        let spans = &profiled.profile.as_ref().unwrap().spans;
        assert!(spans.iter().any(|s| s.path == "count/count-kernel"));
        assert!(report.jobs[1].result.as_ref().unwrap().profile.is_none());
    }
}
