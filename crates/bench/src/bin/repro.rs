//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale smoke|bench|large] [--repeats N]
//!                    [--seed S] [--csv DIR]
//!
//! experiments: table1 | table2 | figure1 | ablations | amdahl |
//!              input-format | approx | tuning | profile | throughput |
//!              balance | all
//! ```
//!
//! `profile` prints the counting-kernel hardware counters for every suite
//! graph (Table II's nvprof columns plus divergence/stall/occupancy) and
//! the per-phase breakdown of the first graph's run.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tc_bench::experiments::{
    ablations, amdahl, approx_comparison, balance, bench_json, figure1, input_format, profile,
    table1, table2, throughput, tuning, ExpConfig,
};
use tc_bench::report::Table;
use tc_gen::{Scale, Seed};

struct Args {
    experiment: String,
    cfg: ExpConfig,
    csv_dir: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <table1|table2|figure1|ablations|amdahl|input-format|approx|tuning|profile|throughput|balance|bench|all>\n\
         \x20       [--scale smoke|bench|large] [--repeats N] [--seed S] [--csv DIR] [--out FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or("missing experiment")?;
    let mut cfg = ExpConfig::default();
    let mut csv_dir = None;
    let mut out = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                cfg.scale = match args.next().as_deref() {
                    Some("smoke") => Scale::Smoke,
                    Some("bench") => Scale::Bench,
                    Some("large") => Scale::Large,
                    other => return Err(format!("bad --scale {other:?}")),
                }
            }
            "--repeats" => {
                cfg.repeats = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --repeats")?;
            }
            "--seed" => {
                cfg.seed = Seed(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad --seed")?,
                );
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().ok_or("missing --csv dir")?));
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("missing --out file")?));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        experiment,
        cfg,
        csv_dir,
        out,
    })
}

fn emit(table: Table, csv_dir: &Option<PathBuf>) {
    print!("{}", table.render());
    println!();
    if let Some(dir) = csv_dir {
        if let Err(e) = table.write_csv(dir) {
            eprintln!("warning: csv write failed: {e}");
        }
    }
}

fn run_experiment(args: &Args) -> Result<(), String> {
    run_experiment_named(&args.experiment, args)
}

fn run_experiment_named(name: &str, args: &Args) -> Result<(), String> {
    let cfg = &args.cfg;
    let csv_dir = &args.csv_dir;
    match name {
        "table1" => emit(table1::render(&table1::run(cfg)), csv_dir),
        "table2" => emit(table2::render(&table2::run(cfg)), csv_dir),
        "figure1" => {
            let points = figure1::run(cfg);
            emit(figure1::render(&points), csv_dir);
            println!("{}", figure1::ascii_plot(&points));
        }
        "ablations" => emit(ablations::render(&ablations::run(cfg)), csv_dir),
        "amdahl" => emit(amdahl::render(&amdahl::run(cfg)), csv_dir),
        "input-format" => emit(input_format::render(&input_format::run(cfg)), csv_dir),
        "approx" => emit(
            approx_comparison::render(&approx_comparison::run(cfg)),
            csv_dir,
        ),
        "tuning" => emit(tuning::render(&tuning::run(cfg)), csv_dir),
        "throughput" => emit(throughput::render(&throughput::run(cfg)), csv_dir),
        "balance" => emit(balance::render(&balance::run(cfg)), csv_dir),
        "bench" => {
            let entries = bench_json::run(cfg);
            emit(bench_json::render(&entries), csv_dir);
            let path = args
                .out
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", bench_json::BENCH_SEQ)));
            std::fs::write(&path, bench_json::to_json(&entries, cfg))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        "profile" => {
            let rows = profile::run(cfg);
            emit(profile::render(&rows), csv_dir);
            if let Some(first) = rows.first() {
                println!("per-phase breakdown of {}:", first.name);
                emit(tc_bench::profile::phase_table(&first.profile), csv_dir);
            }
        }
        "all" => {
            for exp in [
                "table1",
                "table2",
                "figure1",
                "ablations",
                "amdahl",
                "input-format",
                "approx",
                "profile",
                "throughput",
                "balance",
            ] {
                run_experiment_named(exp, args)?;
            }
        }
        other => return Err(format!("unknown experiment {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let scale = args.cfg.scale;
    eprintln!(
        "# scale={scale:?} repeats={} seed={} (times: CPU measured on this host, \
         GPU simulated — see DESIGN.md)",
        args.cfg.repeats, args.cfg.seed.0
    );
    match run_experiment(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
