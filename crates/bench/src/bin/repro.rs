//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale smoke|bench|large] [--repeats N]
//!                    [--seed S] [--csv DIR]
//!
//! experiments: table1 | table2 | figure1 | ablations | amdahl |
//!              input-format | approx | tuning | profile | throughput |
//!              balance | hash | cluster | all
//! ```
//!
//! `profile` prints the counting-kernel hardware counters for every suite
//! graph (Table II's nvprof columns plus divergence/stall/occupancy) and
//! the per-phase breakdown of the first graph's run.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tc_bench::experiments::{
    ablations, amdahl, approx_comparison, balance, bench_json, cluster, figure1, hash,
    input_format, profile, table1, table2, throughput, tuning, ExpConfig,
};
use tc_bench::report::Table;
use tc_gen::{Scale, Seed};

struct Args {
    experiment: String,
    cfg: ExpConfig,
    csv_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    check_tol: f64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <table1|table2|figure1|ablations|amdahl|input-format|approx|tuning|profile|throughput|balance|hash|cluster|bench|all>\n\
         \x20       [--scale smoke|bench|large] [--repeats N] [--seed S] [--csv DIR] [--out FILE]\n\
         \x20       [--check PRIOR_BENCH_JSON] [--check-tolerance FRAC]\n\
         \x20 bench: set TC_TELEMETRY_CI=1 to null the advisory (host-wall) section;\n\
         \x20        --check diffs modeled_ms against a prior artifact and fails on regression"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or("missing experiment")?;
    let mut cfg = ExpConfig::default();
    let mut csv_dir = None;
    let mut out = None;
    let mut check = None;
    let mut check_tol = 0.05;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                cfg.scale = match args.next().as_deref() {
                    Some("smoke") => Scale::Smoke,
                    Some("bench") => Scale::Bench,
                    Some("large") => Scale::Large,
                    other => return Err(format!("bad --scale {other:?}")),
                }
            }
            "--repeats" => {
                cfg.repeats = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --repeats")?;
            }
            "--seed" => {
                cfg.seed = Seed(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad --seed")?,
                );
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().ok_or("missing --csv dir")?));
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("missing --out file")?));
            }
            "--check" => {
                check = Some(PathBuf::from(args.next().ok_or("missing --check file")?));
            }
            "--check-tolerance" => {
                check_tol = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad --check-tolerance")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        experiment,
        cfg,
        csv_dir,
        out,
        check,
        check_tol,
    })
}

fn emit(table: &Table, csv_dir: &Option<PathBuf>) {
    print!("{}", table.render());
    println!();
    if let Some(dir) = csv_dir {
        if let Err(e) = table.write_csv(dir) {
            eprintln!("warning: csv write failed: {e}");
        }
    }
}

fn run_experiment(args: &Args) -> Result<(), String> {
    run_experiment_named(&args.experiment, args)
}

fn run_experiment_named(name: &str, args: &Args) -> Result<(), String> {
    let cfg = &args.cfg;
    let csv_dir = &args.csv_dir;
    match name {
        "table1" => emit(&table1::render(&table1::run(cfg)), csv_dir),
        "table2" => emit(&table2::render(&table2::run(cfg)), csv_dir),
        "figure1" => {
            let points = figure1::run(cfg);
            emit(&figure1::render(&points), csv_dir);
            println!("{}", figure1::ascii_plot(&points));
        }
        "ablations" => emit(&ablations::render(&ablations::run(cfg)), csv_dir),
        "amdahl" => emit(&amdahl::render(&amdahl::run(cfg)), csv_dir),
        "input-format" => emit(&input_format::render(&input_format::run(cfg)), csv_dir),
        "approx" => emit(
            &approx_comparison::render(&approx_comparison::run(cfg)),
            csv_dir,
        ),
        "tuning" => emit(&tuning::render(&tuning::run(cfg)), csv_dir),
        "throughput" => emit(&throughput::render(&throughput::run(cfg)), csv_dir),
        "balance" => emit(&balance::render(&balance::run(cfg)), csv_dir),
        "hash" => emit(&hash::render(&hash::run(cfg)), csv_dir),
        "cluster" => emit(&cluster::render(&cluster::run(cfg)), csv_dir),
        "bench" => {
            let entries = bench_json::run(cfg);
            emit(&bench_json::render(&entries), csv_dir);
            let path = args
                .out
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", bench_json::BENCH_SEQ)));
            // CI mode strips the host-measured advisory section so the
            // artifact bytes are deterministic across machines.
            let ci = std::env::var("TC_TELEMETRY_CI").is_ok_and(|v| v == "1");
            let json = bench_json::to_json_with_advisory(&entries, cfg, !ci);
            std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
            if let Some(prior) = &args.check {
                let old = std::fs::read_to_string(prior)
                    .map_err(|e| format!("reading {}: {e}", prior.display()))?;
                match bench_json::check_regressions(&json, &old, args.check_tol) {
                    Ok(lines) => {
                        for line in lines {
                            eprintln!("bench-check: {line}");
                        }
                        eprintln!(
                            "bench-check: no modeled_ms regression beyond {:.1}% vs {}",
                            args.check_tol * 100.0,
                            prior.display()
                        );
                    }
                    Err(failures) => {
                        for line in &failures {
                            eprintln!("bench-check: {line}");
                        }
                        return Err(format!(
                            "bench regression vs {}: {} graph x backend cell(s) beyond {:.1}%",
                            prior.display(),
                            failures.len(),
                            args.check_tol * 100.0
                        ));
                    }
                }
            }
        }
        "profile" => {
            let rows = profile::run(cfg);
            emit(&profile::render(&rows), csv_dir);
            if let Some(first) = rows.first() {
                println!("per-phase breakdown of {}:", first.name);
                emit(&tc_bench::profile::phase_table(&first.profile), csv_dir);
            }
        }
        "all" => {
            for exp in [
                "table1",
                "table2",
                "figure1",
                "ablations",
                "amdahl",
                "input-format",
                "approx",
                "profile",
                "throughput",
                "balance",
                "hash",
                "cluster",
            ] {
                run_experiment_named(exp, args)?;
            }
        }
        other => return Err(format!("unknown experiment {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let scale = args.cfg.scale;
    eprintln!(
        "# scale={scale:?} repeats={} seed={} (times: CPU measured on this host, \
         GPU simulated — see DESIGN.md)",
        args.cfg.repeats, args.cfg.seed.0
    );
    match run_experiment(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
