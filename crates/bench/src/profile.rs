//! nvprof-style rendering of a [`ProfileReport`]: the per-phase hardware
//! counter table behind `tcount --profile` and `repro profile`.
//!
//! Columns mirror the nvprof metrics the paper quotes: time, DRAM traffic
//! and achieved bandwidth (Table II's throughput column), texture and L2
//! hit rates (Table II's hit-rate column), divergence serialization and
//! issue stalls (§III-D7), and achieved occupancy.

use tc_simt::profiler::ProfileReport;

use crate::report::{pct, Table};

/// Milliseconds with three significant fractional digits.
fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Megabytes (decimal) with two digits.
fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Render every recorded phase of a profile as one table row, nested
/// phases indented under their parents, with a whole-run totals row last.
pub fn phase_table(profile: &ProfileReport) -> Table {
    let mut t = Table::new(
        format!(
            "Profile: {} ({} device{}, peak {:.0} GB/s)",
            profile.device,
            profile.devices,
            if profile.devices == 1 { "" } else { "s" },
            profile.peak_bandwidth_gbs
        ),
        &[
            "phase",
            "time [ms]",
            "launches",
            "DRAM [MB]",
            "BW [GB/s]",
            "tex hit",
            "L2 hit",
            "serialized",
            "stall [cyc]",
            "occupancy",
        ],
    );
    // Spans are recorded in completion order; present them as a tree —
    // depth-first, siblings by start time. Sorting the whole list by raw
    // start time would interleave unrelated phases in merged multi-device
    // reports, where each device's clock starts at zero.
    let spans = &profile.spans;
    let mut order: Vec<usize> = Vec::with_capacity(spans.len());
    let mut stack: Vec<usize> = {
        let mut tops: Vec<usize> = (0..spans.len()).filter(|&i| spans[i].depth == 0).collect();
        tops.sort_by(|&a, &b| {
            spans[b]
                .start_s
                .total_cmp(&spans[a].start_s)
                .then(spans[b].path.cmp(&spans[a].path))
        });
        tops
    };
    while let Some(i) = stack.pop() {
        order.push(i);
        let prefix = format!("{}/", spans[i].path);
        let mut children: Vec<usize> = (0..spans.len())
            .filter(|&c| spans[c].depth == spans[i].depth + 1 && spans[c].path.starts_with(&prefix))
            .collect();
        children.sort_by(|&a, &b| {
            spans[b]
                .start_s
                .total_cmp(&spans[a].start_s)
                .then(spans[b].path.cmp(&spans[a].path))
        });
        stack.extend(children);
    }
    for i in order {
        let s = &profile.spans[i];
        let label = s.path.rsplit('/').next().unwrap_or(&s.path);
        let c = &s.counters;
        t.push(vec![
            format!("{}{}", "  ".repeat(s.depth), label),
            ms(s.duration_s()),
            c.kernel_launches.to_string(),
            mb(c.dram_bytes()),
            format!("{:.2}", s.achieved_bandwidth_gbs()),
            pct(c.tex.hit_rate()),
            pct(c.l2.hit_rate()),
            c.serialized_groups.to_string(),
            format!("{:.0}", c.issue_stall_cycles),
            pct(c.occupancy()),
        ]);
    }
    let c = &profile.totals;
    let total_bw = if profile.total_s > 0.0 {
        c.dram_bytes() as f64 / profile.total_s / 1e9
    } else {
        0.0
    };
    t.push(vec![
        "total".into(),
        ms(profile.total_s),
        c.kernel_launches.to_string(),
        mb(c.dram_bytes()),
        format!("{total_bw:.2}"),
        pct(c.tex.hit_rate()),
        pct(c.l2.hit_rate()),
        c.serialized_groups.to_string(),
        format!("{:.0}", c.issue_stall_cycles),
        pct(c.occupancy()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::count::GpuOptions;
    use tc_core::gpu::pipeline::run_gpu_pipeline_profiled;
    use tc_graph::EdgeArray;
    use tc_simt::DeviceConfig;

    fn profiled_diamond() -> ProfileReport {
        let g = EdgeArray::from_undirected_pairs([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let opts = GpuOptions::new(DeviceConfig::gtx_980().with_unlimited_memory());
        let (_, trace) = run_gpu_pipeline_profiled(&g, &opts).unwrap();
        trace.profile
    }

    #[test]
    fn phase_table_covers_the_paper_pipeline() {
        let table = phase_table(&profiled_diamond());
        let rendered = table.render();
        // The eight §III-B steps, each its own row.
        for step in [
            "1-copy-edges",
            "2-count-vertices",
            "3-sort-edges",
            "4-node-array",
            "5-mark-backward",
            "6-remove-backward",
            "7-unzip",
            "8-node-array",
        ] {
            assert!(rendered.contains(step), "missing phase {step}:\n{rendered}");
        }
        assert!(rendered.contains("count-kernel"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn nested_phases_are_indented_under_parents() {
        let table = phase_table(&profiled_diamond());
        let preprocess_row = table
            .rows
            .iter()
            .position(|r| r[0] == "preprocess")
            .unwrap();
        let step1_row = table
            .rows
            .iter()
            .position(|r| r[0].trim_start() == "1-copy-edges")
            .unwrap();
        assert!(step1_row > preprocess_row);
        assert!(table.rows[step1_row][0].starts_with("  "));
    }

    #[test]
    fn totals_row_is_last_and_nonzero() {
        let table = phase_table(&profiled_diamond());
        let last = table.rows.last().unwrap();
        assert_eq!(last[0], "total");
        assert!(last[1].parse::<f64>().unwrap() > 0.0);
        assert!(last[3].parse::<f64>().unwrap() > 0.0);
    }
}
