//! Plain-text table and CSV rendering for the `repro` binary.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A rendered table: header row + data rows, all strings.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Fixed-width rendering (first column left-aligned, the rest right).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Write `title.csv` into `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-");
        let file = File::create(dir.join(format!("{slug}.csv")))?;
        let mut out = BufWriter::new(file);
        writeln!(out, "{}", escape_csv_row(&self.header))?;
        for row in &self.rows {
            writeln!(out, "{}", escape_csv_row(row))?;
        }
        out.flush()
    }
}

fn escape_csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Milliseconds with sensible precision.
pub fn ms(seconds: f64) -> String {
    let v = seconds * 1e3;
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// A ratio like "12.49".
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Percent with two digits.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["graph", "ms"]);
        t.push(vec!["a-very-long-name".into(), "1.5".into()]);
        t.push(vec!["b".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("CSV Demo", &["a", "b"]);
        t.push(vec!["x,y".into(), "2".into()]);
        let dir = std::env::temp_dir().join("tc_bench_report_test");
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("csv-demo.csv")).unwrap();
        assert_eq!(content, "a,b\n\"x,y\",2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.1234), "123");
        assert_eq!(ms(0.00123), "1.23");
        assert_eq!(ms(0.000123), "0.123");
        assert_eq!(ratio(12.488), "12.49");
        assert_eq!(pct(0.8078), "80.78%");
    }
}
