//! `repro bench` — the machine-readable perf trajectory artifact.
//!
//! Runs every suite graph against a fixed backend matrix (CPU forward,
//! the paper's GTX 980 pipeline, and the workload-balanced scheduler) and
//! emits one `BENCH_<n>.json` at the repo root per PR so modeled and
//! host-wall times can be tracked across the project's history. Modeled
//! milliseconds are deterministic (the simulator is exact); host wall
//! milliseconds are whatever this machine did today and are tracked for
//! trend only.

use std::str::FromStr;
use std::time::Instant;

use tc_core::{Backend, CountRequest};
use tc_gen::suite::full_suite_seeded;

use crate::report::Table;

use super::ExpConfig;

/// The bench artifact's schema/sequence number: `BENCH_3.json` belongs to
/// the PR that introduced the balanced scheduler.
pub const BENCH_SEQ: u32 = 3;

/// Backend tokens benched per graph (parsed through the canonical
/// [`Backend`] grammar, so the JSON records exactly the tokens a user
/// would pass to `tcount`).
pub const BACKENDS: [&str; 3] = ["forward", "gtx980", "gtx980/balanced"];

/// One graph × backend measurement.
#[derive(Clone, Debug)]
pub struct Entry {
    pub graph: String,
    pub backend: String,
    pub triangles: u64,
    /// Simulated device milliseconds (`None` for CPU backends, whose
    /// `seconds` are host time).
    pub modeled_ms: Option<f64>,
    /// Wall milliseconds the whole count took on this host.
    pub host_wall_ms: f64,
}

/// Run the backend matrix over the suite.
pub fn run(cfg: &ExpConfig) -> Vec<Entry> {
    let mut entries = Vec::new();
    for item in full_suite_seeded(cfg.scale, cfg.seed) {
        for token in BACKENDS {
            let backend = Backend::from_str(token).expect("bench backend token");
            let modeled = !matches!(backend, Backend::CpuForward);
            let req = CountRequest::new(backend).graph_name(item.name.clone());
            let t0 = Instant::now();
            let tc = req
                .run(&item.graph)
                .unwrap_or_else(|e| panic!("{} on {token}: {e}", item.name));
            let host_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            entries.push(Entry {
                graph: item.name.clone(),
                backend: token.to_string(),
                triangles: tc.triangles,
                modeled_ms: modeled.then_some(tc.seconds * 1e3),
                host_wall_ms,
            });
        }
    }
    entries
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Serialize the artifact (stable field order, newline-terminated).
pub fn to_json(entries: &[Entry], cfg: &ExpConfig) -> String {
    let mut out = String::with_capacity(256 + 160 * entries.len());
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": {BENCH_SEQ},\n"));
    out.push_str(&format!(
        "  \"scale\": {},\n",
        json_string(&format!("{:?}", cfg.scale).to_lowercase())
    ));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed.0));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"graph\": {},\n", json_string(&e.graph)));
        out.push_str(&format!(
            "      \"backend\": {},\n",
            json_string(&e.backend)
        ));
        out.push_str(&format!("      \"triangles\": {},\n", e.triangles));
        out.push_str(&format!(
            "      \"modeled_ms\": {},\n",
            e.modeled_ms.map_or("null".into(), json_f64)
        ));
        out.push_str(&format!(
            "      \"host_wall_ms\": {}\n",
            json_f64(e.host_wall_ms)
        ));
        out.push_str(if i + 1 == entries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable view of the same matrix.
pub fn render(entries: &[Entry]) -> Table {
    let mut t = Table::new(
        "Bench matrix (modeled GPU ms are deterministic; wall ms are this host)",
        &["graph", "backend", "triangles", "modeled [ms]", "wall [ms]"],
    );
    for e in entries {
        t.push(vec![
            e.graph.clone(),
            e.backend.clone(),
            e.triangles.to_string(),
            e.modeled_ms.map_or("-".into(), |ms| format!("{ms:.4}")),
            format!("{:.1}", e.host_wall_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_matrix_is_consistent_and_serializes() {
        let cfg = ExpConfig::smoke();
        let entries = run(&cfg);
        assert_eq!(entries.len(), 13 * BACKENDS.len());
        // Every backend agrees on every graph's count.
        for chunk in entries.chunks(BACKENDS.len()) {
            for e in chunk {
                assert_eq!(e.triangles, chunk[0].triangles, "{} {}", e.graph, e.backend);
                assert!(e.host_wall_ms >= 0.0);
            }
            assert!(
                chunk[0].modeled_ms.is_none(),
                "cpu entry has no modeled time"
            );
            assert!(chunk[1].modeled_ms.is_some());
            assert!(chunk[2].modeled_ms.is_some());
        }
        let json = to_json(&entries, &cfg);
        assert!(json.starts_with("{\n  \"bench\": 3,\n"));
        assert!(json.ends_with("]\n}\n"));
        assert_eq!(json.matches("\"graph\":").count(), entries.len());
        // Balanced JSON braces (cheap well-formedness check; ci.sh runs a
        // real parser over the emitted file).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
