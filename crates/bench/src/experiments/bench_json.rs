//! `repro bench` — the machine-readable perf trajectory artifact.
//!
//! Runs every suite graph against a fixed backend matrix (CPU forward,
//! the paper's GTX 980 pipeline, the workload-balanced scheduler, the
//! balanced scheduler with the hash-intersection heavy bin, and a 2×2
//! sharded cluster on the balanced schedule) and
//! emits one `BENCH_<n>.json` at the repo root per PR so modeled and
//! host-wall times can be tracked across the project's history. Modeled
//! milliseconds are deterministic (the simulator is exact); host wall
//! milliseconds are whatever this machine did today, so they live in an
//! explicit per-entry `advisory` section — rendered as `null` in CI mode
//! so the artifact bytes are host-independent.
//!
//! [`check_regressions`] diffs two artifacts' deterministic
//! `(graph, backend, modeled_ms)` matrices — the bench-regression gate
//! `scripts/bench_check.sh` and `repro bench --check` run.

use std::str::FromStr;
use std::time::Instant;

use tc_core::{Backend, CountRequest};
use tc_gen::suite::full_suite_seeded;

use crate::report::Table;

use super::ExpConfig;

/// The bench artifact's schema/sequence number: `BENCH_6.json` belongs to
/// the PR that added the sharded cluster engine to the backend matrix.
pub const BENCH_SEQ: u32 = 6;

/// Backend tokens benched per graph (parsed through the canonical
/// [`Backend`] grammar, so the JSON records exactly the tokens a user
/// would pass to `tcount`).
pub const BACKENDS: [&str; 5] = [
    "forward",
    "gtx980",
    "gtx980/balanced",
    "gtx980/balanced+hash",
    "cluster:2x2/gtx980/balanced",
];

/// One graph × backend measurement.
#[derive(Clone, Debug)]
pub struct Entry {
    pub graph: String,
    pub backend: String,
    pub triangles: u64,
    /// Simulated device milliseconds (`None` for CPU backends, whose
    /// `seconds` are host time).
    pub modeled_ms: Option<f64>,
    /// Wall milliseconds the whole count took on this host. Serialized
    /// under the entry's `advisory` section (or dropped in CI mode) —
    /// never part of the deterministic artifact surface.
    pub host_wall_ms: f64,
}

/// Run the backend matrix over the suite.
pub fn run(cfg: &ExpConfig) -> Vec<Entry> {
    let mut entries = Vec::new();
    for item in full_suite_seeded(cfg.scale, cfg.seed) {
        for token in BACKENDS {
            let backend = Backend::from_str(token).expect("bench backend token");
            let modeled = !matches!(backend, Backend::CpuForward);
            let req = CountRequest::new(backend).graph_name(item.name.clone());
            let t0 = Instant::now();
            let tc = req
                .run(&item.graph)
                .unwrap_or_else(|e| panic!("{} on {token}: {e}", item.name));
            let host_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            entries.push(Entry {
                graph: item.name.clone(),
                backend: token.to_string(),
                triangles: tc.triangles,
                modeled_ms: modeled.then_some(tc.seconds * 1e3),
                host_wall_ms,
            });
        }
    }
    entries
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Serialize the artifact (stable field order, newline-terminated). With
/// `include_advisory = false` (CI mode, `TC_TELEMETRY_CI=1`) every
/// entry's `advisory` section renders as `null`, making the whole
/// artifact deterministic: same suite + same simulator → same bytes.
pub fn to_json_with_advisory(entries: &[Entry], cfg: &ExpConfig, include_advisory: bool) -> String {
    let mut out = String::with_capacity(256 + 160 * entries.len());
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": {BENCH_SEQ},\n"));
    out.push_str(&format!(
        "  \"scale\": {},\n",
        json_string(&format!("{:?}", cfg.scale).to_lowercase())
    ));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed.0));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"graph\": {},\n", json_string(&e.graph)));
        out.push_str(&format!(
            "      \"backend\": {},\n",
            json_string(&e.backend)
        ));
        out.push_str(&format!("      \"triangles\": {},\n", e.triangles));
        out.push_str(&format!(
            "      \"modeled_ms\": {},\n",
            e.modeled_ms.map_or("null".into(), json_f64)
        ));
        if include_advisory {
            out.push_str(&format!(
                "      \"advisory\": {{\"host_wall_ms\": {}}}\n",
                json_f64(e.host_wall_ms)
            ));
        } else {
            out.push_str("      \"advisory\": null\n");
        }
        out.push_str(if i + 1 == entries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serialize with the advisory section included (the non-CI default).
pub fn to_json(entries: &[Entry], cfg: &ExpConfig) -> String {
    to_json_with_advisory(entries, cfg, true)
}

/// Pull the deterministic `(graph, backend, modeled_ms)` matrix out of a
/// bench artifact. Scan-based on the serializer's stable field order (one
/// field per line), so it reads both the current schema and the bench-3
/// one without a JSON parser — `scripts/ci.sh` separately runs a real
/// parser over the emitted file.
pub fn extract_modeled(json: &str) -> Vec<(String, String, Option<f64>)> {
    fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
        Some(rest.trim_end_matches(','))
    }
    fn unquote(v: &str) -> String {
        v.trim_matches('"').to_string()
    }
    let mut out = Vec::new();
    let mut graph: Option<String> = None;
    let mut backend: Option<String> = None;
    for line in json.lines() {
        if let Some(v) = field_value(line, "graph") {
            graph = Some(unquote(v));
        } else if let Some(v) = field_value(line, "backend") {
            backend = Some(unquote(v));
        } else if let Some(v) = field_value(line, "modeled_ms") {
            let ms = (v != "null").then(|| v.parse::<f64>().unwrap_or(f64::NAN));
            if let (Some(g), Some(b)) = (graph.take(), backend.take()) {
                out.push((g, b, ms));
            }
        }
    }
    out
}

/// Compare a freshly generated artifact against a prior one: every
/// `(graph, backend)` pair present in both must not have regressed its
/// `modeled_ms` by more than `rel_tol` (relative). Returns the per-pair
/// comparison lines on success, or the list of regressions (plus any
/// pairs that vanished) on failure. CPU entries (no modeled time) and
/// pairs new in the fresh artifact are skipped — the gate protects
/// modeled performance, not matrix shape.
pub fn check_regressions(
    new_json: &str,
    old_json: &str,
    rel_tol: f64,
) -> Result<Vec<String>, Vec<String>> {
    let new = extract_modeled(new_json);
    let old = extract_modeled(old_json);
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for (graph, backend, old_ms) in &old {
        let Some(old_ms) = old_ms else { continue };
        let fresh = new
            .iter()
            .find(|(g, b, _)| g == graph && b == backend)
            .and_then(|(_, _, ms)| *ms);
        match fresh {
            None => failures.push(format!(
                "{graph} x {backend}: present in prior artifact but missing now"
            )),
            Some(new_ms) if !new_ms.is_finite() => {
                failures.push(format!("{graph} x {backend}: modeled_ms is not a number"))
            }
            Some(new_ms) => {
                let rel = (new_ms - old_ms) / old_ms;
                let verdict = if rel > rel_tol { "REGRESSED" } else { "ok" };
                let line = format!(
                    "{graph} x {backend}: {old_ms:.6} -> {new_ms:.6} ms ({:+.2}%) {verdict}",
                    rel * 100.0
                );
                if rel > rel_tol {
                    failures.push(line);
                } else {
                    lines.push(line);
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures)
    }
}

/// Human-readable view of the same matrix.
pub fn render(entries: &[Entry]) -> Table {
    let mut t = Table::new(
        "Bench matrix (modeled GPU ms are deterministic; wall ms are this host)",
        &["graph", "backend", "triangles", "modeled [ms]", "wall [ms]"],
    );
    for e in entries {
        t.push(vec![
            e.graph.clone(),
            e.backend.clone(),
            e.triangles.to_string(),
            e.modeled_ms.map_or("-".into(), |ms| format!("{ms:.4}")),
            format!("{:.1}", e.host_wall_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_matrix_is_consistent_and_serializes() {
        let cfg = ExpConfig::smoke();
        let entries = run(&cfg);
        assert_eq!(entries.len(), 13 * BACKENDS.len());
        // Every backend agrees on every graph's count.
        for chunk in entries.chunks(BACKENDS.len()) {
            for e in chunk {
                assert_eq!(e.triangles, chunk[0].triangles, "{} {}", e.graph, e.backend);
                assert!(e.host_wall_ms >= 0.0);
            }
            assert!(
                chunk[0].modeled_ms.is_none(),
                "cpu entry has no modeled time"
            );
            for e in &chunk[1..] {
                assert!(e.modeled_ms.is_some(), "{} {}", e.graph, e.backend);
            }
        }
        let json = to_json(&entries, &cfg);
        assert!(json.starts_with("{\n  \"bench\": 6,\n"));
        assert!(json.ends_with("]\n}\n"));
        assert_eq!(json.matches("\"graph\":").count(), entries.len());
        assert_eq!(
            json.matches("\"advisory\": {\"host_wall_ms\": ").count(),
            entries.len()
        );
        // Balanced JSON braces (cheap well-formedness check; ci.sh runs a
        // real parser over the emitted file).
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // CI mode nulls every advisory section; nothing host-measured
        // survives in the bytes.
        let ci = to_json_with_advisory(&entries, &cfg, false);
        assert_eq!(ci.matches("\"advisory\": null").count(), entries.len());
        assert!(!ci.contains("host_wall_ms"));

        // The extractor reads back exactly the deterministic matrix.
        let matrix = extract_modeled(&json);
        assert_eq!(matrix.len(), entries.len());
        assert_eq!(matrix, extract_modeled(&ci));
        for ((g, b, ms), e) in matrix.iter().zip(&entries) {
            assert_eq!(g, &e.graph);
            assert_eq!(b, &e.backend);
            assert_eq!(ms.is_some(), e.modeled_ms.is_some());
        }
    }

    fn artifact(rows: &[(&str, &str, Option<f64>)]) -> String {
        let entries: Vec<Entry> = rows
            .iter()
            .map(|(g, b, ms)| Entry {
                graph: g.to_string(),
                backend: b.to_string(),
                triangles: 1,
                modeled_ms: *ms,
                host_wall_ms: 9.9,
            })
            .collect();
        to_json(&entries, &ExpConfig::smoke())
    }

    #[test]
    fn regression_gate_passes_within_tolerance_and_fails_beyond() {
        let old = artifact(&[
            ("g1", "gtx980", Some(10.0)),
            ("g1", "forward", None),
            ("g2", "gtx980", Some(5.0)),
        ]);
        // Improvement and sub-tolerance noise pass; CPU rows are skipped.
        let new_ok = artifact(&[
            ("g1", "gtx980", Some(9.0)),
            ("g1", "forward", None),
            ("g2", "gtx980", Some(5.2)),
        ]);
        let lines = check_regressions(&new_ok, &old, 0.05).expect("within tolerance");
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.ends_with("ok")));

        // A 10% slowdown on one cell fails, and names the cell.
        let new_bad = artifact(&[
            ("g1", "gtx980", Some(11.0)),
            ("g1", "forward", None),
            ("g2", "gtx980", Some(5.0)),
        ]);
        let failures = check_regressions(&new_bad, &old, 0.05).expect_err("regressed");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("g1 x gtx980"));
        assert!(failures[0].contains("REGRESSED"));

        // A vanished pair fails too.
        let new_missing = artifact(&[("g1", "gtx980", Some(10.0))]);
        let failures = check_regressions(&new_missing, &old, 0.05).expect_err("missing pair");
        assert!(failures[0].contains("missing now"));
    }

    #[test]
    fn extractor_reads_the_bench3_schema_too() {
        // The prior artifact predates the advisory section: host_wall_ms
        // was a flat field after modeled_ms. The scan keys on the shared
        // graph/backend/modeled_ms lines, so the gate can diff across the
        // schema change.
        let old = "{\n  \"bench\": 3,\n  \"entries\": [\n    {\n      \"graph\": \"g1\",\n      \
                   \"backend\": \"gtx980\",\n      \"triangles\": 7,\n      \
                   \"modeled_ms\": 12.5,\n      \"host_wall_ms\": 3.1\n    }\n  ]\n}\n";
        assert_eq!(
            extract_modeled(old),
            vec![("g1".to_string(), "gtx980".to_string(), Some(12.5))]
        );
    }
}
