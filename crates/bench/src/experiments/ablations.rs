//! §III-D optimization ablations, each on a representative subset of the
//! suite:
//!
//! * **unzip** (III-D1): SoA vs AoS kernel time — paper: SoA 13–32 % faster;
//! * **sort64** (III-D2): u64 radix sort vs pair comparison sort — ~5×;
//! * **loop** (III-D3): final (read-avoiding) vs preliminary merge — 36–48 %;
//! * **texcache** (III-D4): read-only cache on vs off — 17–66 %;
//! * **warpsize** (III-D5): warp split 2 vs 1 — helped an early kernel, not
//!   the final one;
//! * **fallback** (III-D6): CPU-preprocessing fallback vs full-GPU path on
//!   the same graph (fallback slower but capacity-halving);
//! * **context** (§IV): lazy context creation folds ~100 ms into the first
//!   allocation unless pre-initialized.

use tc_core::count::GpuOptions;
use tc_core::gpu::pipeline::run_gpu_pipeline;
use tc_core::gpu::preprocess::{fallback_path_peak_bytes, full_path_peak_bytes};
use tc_core::gpu::{EdgeLayout, LoopVariant};
use tc_gen::suite::{full_suite_seeded, GraphSpec};
use tc_graph::EdgeArray;
use tc_simt::primitives::{sort_pairs_baseline, sort_u64};
use tc_simt::{Device, DeviceConfig};

use crate::report::{ratio, Table};

use super::ExpConfig;

/// One ablation comparison on one graph.
#[derive(Clone, Debug)]
pub struct Row {
    pub ablation: &'static str,
    pub graph: String,
    /// Kernel/operation time with the optimization ON (the paper's default).
    pub optimized_ms: f64,
    /// Time with the optimization OFF.
    pub baseline_ms: f64,
}

impl Row {
    /// `baseline / optimized`: > 1 means the optimization helps.
    pub fn gain(&self) -> f64 {
        self.baseline_ms / self.optimized_ms
    }
}

/// The representative subset the kernel ablations run on.
fn subset(cfg: &ExpConfig) -> Vec<(String, EdgeArray)> {
    let wanted = [
        GraphSpec::LiveJournal,
        GraphSpec::Citeseer,
        GraphSpec::Kronecker(2),
        GraphSpec::BarabasiAlbert,
        GraphSpec::WattsStrogatz,
    ];
    full_suite_seeded(cfg.scale, cfg.seed)
        .into_iter()
        .filter(|row| wanted.contains(&row.spec))
        .map(|row| (row.name, row.graph))
        .collect()
}

fn kernel_ms(g: &EdgeArray, opts: &GpuOptions) -> f64 {
    run_gpu_pipeline(g, opts)
        .expect("ablation pipeline")
        .kernel
        .time_s
        * 1e3
}

/// Counting-kernel time of the §III-D7 virtual warp-centric variant.
fn warp_centric_kernel_ms(g: &EdgeArray, device: &DeviceConfig) -> f64 {
    use tc_core::gpu::preprocess::preprocess_full_gpu;
    use tc_core::gpu::warp_centric::{IntersectStrategy, WarpCentricKernel};
    let mut dev = Device::new(device.clone());
    dev.preinit_context();
    dev.reset_clock();
    let pre = preprocess_full_gpu(&mut dev, g, false).expect("preprocess");
    let lc = dev.config().paper_launch();
    let total = lc.active_threads(dev.config().warp_size);
    let result = dev.alloc::<u64>(total).expect("result buffer");
    dev.poke(&result, &vec![0u64; total]);
    let kernel = WarpCentricKernel {
        adj: pre.nbr,
        edge_u: pre.owner,
        edge_v: pre.nbr,
        node: pre.node,
        result,
        offset: 0,
        count: pre.m,
        virtual_warp: 4,
        use_texture_cache: true,
        strategy: IntersectStrategy::BinarySearch,
        scratch: None,
        shared_slots: 0,
    };
    let stats = dev.launch("warp-centric", lc, &kernel).expect("launch");
    stats.time_s * 1e3
}

/// Run every ablation.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let device = DeviceConfig::gtx_980().with_unlimited_memory();
    let mut rows = Vec::new();
    for (name, g) in subset(cfg) {
        let on = GpuOptions::new(device.clone());

        // III-D1: unzipping.
        let mut aos = GpuOptions::new(device.clone());
        aos.layout = EdgeLayout::AoS;
        rows.push(Row {
            ablation: "unzip (SoA vs AoS)",
            graph: name.clone(),
            optimized_ms: kernel_ms(&g, &on),
            baseline_ms: kernel_ms(&g, &aos),
        });

        // III-D2: sorting as 64-bit integers (device micro-benchmark on the
        // graph's own doubled arc array).
        let packed: Vec<u64> = g.arcs().iter().map(|e| e.as_u64_first_major()).collect();
        let mut dev = Device::new(device.clone());
        dev.preinit_context();
        dev.reset_clock();
        let buf = dev.htod_copy(&packed).unwrap();
        let t0 = dev.elapsed();
        sort_u64(&mut dev, &buf, packed.len()).unwrap();
        let fast = dev.elapsed() - t0;
        let buf2 = dev.htod_copy(&packed).unwrap();
        let t0 = dev.elapsed();
        sort_pairs_baseline(&mut dev, &buf2, packed.len()).unwrap();
        let slow = dev.elapsed() - t0;
        rows.push(Row {
            ablation: "sort edges as u64",
            graph: name.clone(),
            optimized_ms: fast * 1e3,
            baseline_ms: slow * 1e3,
        });

        // III-D3: read-avoiding merge loop.
        let mut prelim = GpuOptions::new(device.clone());
        prelim.kernel = LoopVariant::Preliminary;
        rows.push(Row {
            ablation: "read-avoiding loop",
            graph: name.clone(),
            optimized_ms: kernel_ms(&g, &on),
            baseline_ms: kernel_ms(&g, &prelim),
        });

        // III-D4: read-only data cache.
        let mut nocache = GpuOptions::new(device.clone());
        nocache.use_texture_cache = false;
        rows.push(Row {
            ablation: "texture cache",
            graph: name.clone(),
            optimized_ms: kernel_ms(&g, &on),
            baseline_ms: kernel_ms(&g, &nocache),
        });

        // III-D5: reduced warp size. For the *final* kernel the paper found
        // no benefit, so "optimized" here is the normal warp and gain ≈ 1.
        let mut split = GpuOptions::new(device.clone());
        split.warp_split = 2;
        rows.push(Row {
            ablation: "warp split 2 (no help expected)",
            graph: name.clone(),
            optimized_ms: kernel_ms(&g, &on),
            baseline_ms: kernel_ms(&g, &split),
        });

        // III-D7: the virtual warp-centric method — one of the paper's
        // *unsuccessful* attempts; the merge kernel should win or tie.
        rows.push(Row {
            ablation: "merge kernel (vs III-D7 warp-centric)",
            graph: name.clone(),
            optimized_ms: kernel_ms(&g, &on),
            baseline_ms: warp_centric_kernel_ms(&g, &device),
        });
    }

    // III-D6: the fallback path, on the livejournal analog: force it by
    // capacity and compare total time against the full-GPU path.
    if let Some((name, g)) = subset(cfg).into_iter().next() {
        let full = run_gpu_pipeline(&g, &GpuOptions::new(device.clone())).expect("full path");
        // Capacity between the two paths' planned peaks: halfway between
        // them, plus the node array and the result-array reserve that the
        // planner adds to both sides.
        let launch = DeviceConfig::gtx_980().paper_launch();
        let reserve = launch.active_threads(32) as u64 * 8;
        let node_bytes = (g.num_nodes() as u64 + 1) * 4;
        let window =
            (full_path_peak_bytes(&g) + fallback_path_peak_bytes(&g)) / 2 + reserve + node_bytes;
        let tight = DeviceConfig::gtx_980().with_memory_capacity(window);
        let fb = run_gpu_pipeline(&g, &GpuOptions::new(tight)).expect("fallback path");
        assert!(
            fb.used_cpu_fallback,
            "capacity window must force the fallback"
        );
        assert_eq!(fb.triangles, full.triangles);
        rows.push(Row {
            ablation: "full-GPU preprocessing (vs III-D6 fallback)",
            graph: name,
            optimized_ms: full.total_s * 1e3,
            baseline_ms: fb.total_s * 1e3,
        });
    }

    // §IV: context pre-initialization.
    {
        let mut lazy = Device::new(device.clone());
        let _ = lazy.alloc::<u32>(1024).unwrap();
        let lazy_cost = lazy.elapsed();
        let mut pre = Device::new(device);
        pre.preinit_context();
        pre.reset_clock();
        let _ = pre.alloc::<u32>(1024).unwrap();
        let pre_cost = pre.elapsed();
        rows.push(Row {
            ablation: "context pre-init (first malloc cost)",
            graph: "-".into(),
            optimized_ms: pre_cost * 1e3,
            baseline_ms: lazy_cost * 1e3,
        });
    }

    rows
}

pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Section III-D ablations (gain = baseline / optimized)",
        &[
            "ablation",
            "graph",
            "optimized [ms]",
            "baseline [ms]",
            "gain",
        ],
    );
    for r in rows {
        t.push(vec![
            r.ablation.to_string(),
            r.graph.clone(),
            format!("{:.4}", r.optimized_ms),
            format!("{:.4}", r.baseline_ms),
            // A ratio is meaningless when the optimized side is ~free (the
            // context pre-init row); report the saving instead.
            if r.optimized_ms < 1e-6 {
                format!("saves {:.0} ms", r.baseline_ms - r.optimized_ms)
            } else {
                ratio(r.gain())
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ablations_point_the_right_way() {
        let rows = run(&ExpConfig::smoke());
        // 5 graphs x 6 kernel ablations + fallback + context.
        assert_eq!(rows.len(), 32);
        for r in rows.iter().filter(|r| r.ablation == "sort edges as u64") {
            // At smoke scale launch overheads compress the gap; the ~5x
            // paper ratio appears at bench scale (see EXPERIMENTS.md).
            assert!(r.gain() > 1.2, "{}: sort gain {}", r.graph, r.gain());
        }
        for r in rows.iter().filter(|r| r.ablation == "texture cache") {
            assert!(r.gain() > 1.0, "{}: texcache gain {}", r.graph, r.gain());
        }
        let ctx = rows.last().unwrap();
        assert!(ctx.baseline_ms >= 100.0, "lazy context must cost ~100 ms");
    }
}
