//! Hash-intersection and degree-descending-reorder ablation.
//!
//! For every suite graph this experiment prepares the graph under three
//! GTX 980 configurations — the paper's thread-per-edge merge kernel, the
//! workload-balanced chunk-scan schedule, and the balanced schedule with
//! the hash-strategy heavy bin — each with degree-descending reordering
//! off and on (six pipelines per graph), and compares the modeled count
//! phases. Every cell must report the same triangle count: both the hash
//! kernel and the reorder pass are exact, so any disagreement is a bug,
//! not noise.
//!
//! Shape criterion (bench scale): on the skewed graphs (orkut,
//! livejournal, the Kronecker rungs, Barabási–Albert) the hash column
//! must beat chunk-scan — shared-memory probes replace repeated global
//! chunk walks over the hub lists — while on uniform-degree graphs the
//! tuner declines the hash bin and the columns coincide.

use tc_core::count::GpuOptions;
use tc_core::gpu::prepared::PreparedGraph;
use tc_gen::suite::full_suite_seeded;
use tc_simt::DeviceConfig;

use crate::report::{ratio, Table};

use super::ExpConfig;

/// One graph's strategy × reorder matrix (count phase, modeled ms).
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    /// Oriented arcs (= undirected edges).
    pub m: usize,
    /// Human-readable tuned plan of the hash configuration (`-` when the
    /// tuner declined the hash bin).
    pub plan: String,
    /// Thread-per-edge merge kernel.
    pub merge_ms: f64,
    /// Balanced schedule, chunk-scan heavy bins.
    pub chunk_ms: f64,
    /// Balanced schedule with the hash heavy bin.
    pub hash_ms: f64,
    /// The same three with degree-descending reordering.
    pub merge_reorder_ms: f64,
    pub chunk_reorder_ms: f64,
    pub hash_reorder_ms: f64,
    pub triangles: u64,
}

impl Row {
    /// `chunk / hash` count phase: > 1 means the hash bin helps.
    pub fn hash_speedup(&self) -> f64 {
        self.chunk_ms / self.hash_ms
    }

    /// Best reordered cell over best unreordered cell.
    pub fn reorder_ratio(&self) -> f64 {
        let plain = self.merge_ms.min(self.chunk_ms).min(self.hash_ms);
        let reordered = self
            .merge_reorder_ms
            .min(self.chunk_reorder_ms)
            .min(self.hash_reorder_ms);
        reordered / plain
    }
}

fn describe_plan(prepared: &PreparedGraph) -> String {
    match prepared.bin_plan() {
        None => "-".into(),
        Some(plan) => {
            let m = prepared.m_oriented().max(1);
            plan.occupied()
                .map(|b| {
                    let pct = 100.0 * b.len as f64 / m as f64;
                    let kind = if b.hash {
                        format!("hash{}", b.width)
                    } else if b.width == 1 {
                        "merge".into()
                    } else {
                        format!("warp{}", b.width)
                    };
                    format!("{kind} {pct:.1}%")
                })
                .collect::<Vec<_>>()
                .join(" | ")
        }
    }
}

/// Run the strategy × reorder matrix on every suite graph.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let device = DeviceConfig::gtx_980().with_unlimited_memory();
    full_suite_seeded(cfg.scale, cfg.seed)
        .into_iter()
        .map(|item| {
            let mut cells = [0.0f64; 6];
            let mut plan = "-".to_string();
            let mut triangles = None;
            let mut m = 0;
            for (i, (hash_bin, schedule_of)) in [
                (false, GpuOptions::new as fn(DeviceConfig) -> GpuOptions),
                (false, GpuOptions::balanced),
                (true, GpuOptions::balanced_hash),
            ]
            .into_iter()
            .enumerate()
            {
                for (j, reorder) in [false, true].into_iter().enumerate() {
                    let mut opts = schedule_of(device.clone());
                    opts.reorder = reorder;
                    let mut prepared = PreparedGraph::prepare(&item.graph, &opts)
                        .unwrap_or_else(|e| panic!("{}: {e}", item.name));
                    let counted = prepared
                        .count()
                        .unwrap_or_else(|e| panic!("{}: {e}", item.name));
                    if hash_bin && !reorder {
                        plan = describe_plan(&prepared);
                        m = prepared.m_oriented();
                    }
                    prepared.release().unwrap();
                    cells[i * 2 + j] = counted.count_s * 1e3;
                    match triangles {
                        None => triangles = Some(counted.triangles),
                        Some(t) => assert_eq!(
                            t, counted.triangles,
                            "{}: every strategy x reorder cell must agree",
                            item.name
                        ),
                    }
                }
            }
            Row {
                name: item.name,
                m,
                plan,
                merge_ms: cells[0],
                merge_reorder_ms: cells[1],
                chunk_ms: cells[2],
                chunk_reorder_ms: cells[3],
                hash_ms: cells[4],
                hash_reorder_ms: cells[5],
                triangles: triangles.unwrap_or(0),
            }
        })
        .collect()
}

pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Hash intersection x degree reordering (GTX 980 count phase, modeled ms)",
        &[
            "graph",
            "m",
            "hash plan",
            "merge",
            "chunk",
            "hash",
            "merge+r",
            "chunk+r",
            "hash+r",
            "chunk/hash",
            "reorder",
            "triangles",
        ],
    );
    for r in rows {
        t.push(vec![
            r.name.clone(),
            r.m.to_string(),
            r.plan.clone(),
            format!("{:.4}", r.merge_ms),
            format!("{:.4}", r.chunk_ms),
            format!("{:.4}", r.hash_ms),
            format!("{:.4}", r.merge_reorder_ms),
            format!("{:.4}", r.chunk_reorder_ms),
            format!("{:.4}", r.hash_reorder_ms),
            ratio(r.hash_speedup()),
            ratio(r.reorder_ratio()),
            r.triangles.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_is_exact_everywhere() {
        let rows = run(&ExpConfig::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            // `run` itself asserts all six cells agree on the count; here
            // we sanity-check the cells are populated.
            for ms in [
                r.merge_ms,
                r.chunk_ms,
                r.hash_ms,
                r.merge_reorder_ms,
                r.chunk_reorder_ms,
                r.hash_reorder_ms,
            ] {
                assert!(ms > 0.0, "{}: empty cell", r.name);
            }
        }
        // The smoke suite's tails are too thin for the hash tuner (it
        // needs ≥ 1% of edges above the work threshold), so the hash
        // column must degrade to exactly the chunk-scan plan — the
        // graceful-degradation guarantee. Bench scale is where the skewed
        // graphs earn hash bins (see EXPERIMENTS.md).
        for r in &rows {
            assert!(!r.plan.contains("hash"), "{}: {}", r.name, r.plan);
            assert_eq!(r.hash_ms, r.chunk_ms, "{}", r.name);
        }
    }
}
