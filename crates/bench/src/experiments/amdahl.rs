//! §III-E: the Amdahl analysis of the multi-GPU setup.
//!
//! For every suite graph: preprocessing fraction `f` of the single-GPU run,
//! the predicted 4-GPU ceiling `1 / (f + (1−f)/4)`, and the observed 4-GPU
//! speedup. Shape criteria: fractions spread over a wide band (paper:
//! 0.08–0.76), observed speedups below but tracking the ceiling, largest on
//! the triangle-dense Kronecker graphs.

use tc_core::count::GpuOptions;
use tc_core::gpu::multi::run_multi_gpu;
use tc_gen::suite::full_suite_seeded;
use tc_simt::DeviceConfig;

use crate::report::{ratio, Table};

use super::ExpConfig;

/// One graph's Amdahl row.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    pub preprocess_fraction: f64,
    pub predicted_max_speedup: f64,
    pub observed_speedup: f64,
    pub single_s: f64,
    pub quad_s: f64,
}

/// Run 1-GPU and 4-GPU on every graph.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
    full_suite_seeded(cfg.scale, cfg.seed)
        .iter()
        .map(|item| {
            let one = run_multi_gpu(&item.graph, &opts, 1).expect("1 gpu");
            let four = run_multi_gpu(&item.graph, &opts, 4).expect("4 gpus");
            assert_eq!(one.triangles, four.triangles, "{}", item.name);
            let f = one.preprocess_s / one.total_s;
            Row {
                name: item.name.clone(),
                preprocess_fraction: f,
                predicted_max_speedup: 1.0 / (f + (1.0 - f) / 4.0),
                observed_speedup: one.total_s / four.total_s,
                single_s: one.total_s,
                quad_s: four.total_s,
            }
        })
        .collect()
}

pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Section III-E: Amdahl analysis of the 4-GPU setup (Tesla C2050)",
        &[
            "graph",
            "preproc fraction",
            "amdahl ceiling",
            "observed speedup",
            "1gpu [ms]",
            "4gpu [ms]",
        ],
    );
    for r in rows {
        t.push(vec![
            r.name.clone(),
            format!("{:.2}", r.preprocess_fraction),
            ratio(r.predicted_max_speedup),
            ratio(r.observed_speedup),
            format!("{:.3}", r.single_s * 1e3),
            format!("{:.3}", r.quad_s * 1e3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_amdahl_is_consistent() {
        let rows = run(&ExpConfig::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.preprocess_fraction), "{}", r.name);
            assert!((1.0..=4.0).contains(&r.predicted_max_speedup));
            // Observed speedup cannot exceed 4 devices' worth by much; it can
            // be < 1 when broadcast overhead dominates tiny graphs.
            assert!(
                r.observed_speedup <= 4.2,
                "{}: {}",
                r.name,
                r.observed_speedup
            );
        }
    }
}
