//! §III-A: the input-format comparison that justifies the edge array.
//!
//! On the LiveJournal analog, the paper reports: the adjacency-list-
//! optimized CPU solution ≈ 12 s, the edge-array-optimized one only ~2 s
//! slower, while converting edge array → adjacency list costs ~7 s (and
//! adjacency list → edge array is a cheap single pass). Shape criteria: the
//! counting gap is small relative to the conversion cost, and the
//! edge→adjacency conversion clearly dominates the adjacency→edge one.

use tc_core::cpu::{count_forward, count_forward_adjacency};
use tc_gen::suite::GraphSpec;
use tc_graph::AdjacencyList;

use crate::report::{ms, Table};

use super::{time_host, ExpConfig};

/// The five §III-A measurements.
#[derive(Clone, Debug)]
pub struct Results {
    pub graph: String,
    pub count_from_adjacency_s: f64,
    pub count_from_edge_array_s: f64,
    pub convert_edge_to_adjacency_s: f64,
    pub convert_adjacency_to_edge_s: f64,
}

/// Run on the LiveJournal analog.
pub fn run(cfg: &ExpConfig) -> Results {
    let spec = GraphSpec::LiveJournal;
    let g = spec.generate(cfg.scale, cfg.seed);
    let adj = AdjacencyList::from_edge_array(&g);

    let mut sink = 0u64;
    let count_from_edge_array_s = time_host(cfg.repeats, || {
        sink = sink.wrapping_add(count_forward(&g).expect("valid graph"));
    });
    let count_from_adjacency_s = time_host(cfg.repeats, || {
        sink = sink.wrapping_add(count_forward_adjacency(&adj));
    });
    let convert_edge_to_adjacency_s = time_host(cfg.repeats, || {
        sink = sink.wrapping_add(AdjacencyList::from_edge_array(&g).num_arcs() as u64);
    });
    let convert_adjacency_to_edge_s = time_host(cfg.repeats, || {
        sink = sink.wrapping_add(adj.to_edge_array().num_arcs() as u64);
    });
    std::hint::black_box(sink);
    Results {
        graph: spec.name(cfg.scale),
        count_from_adjacency_s,
        count_from_edge_array_s,
        convert_edge_to_adjacency_s,
        convert_adjacency_to_edge_s,
    }
}

pub fn render(r: &Results) -> Table {
    let mut t = Table::new(
        format!("Section III-A: input-format comparison on {}", r.graph),
        &["operation", "time [ms]"],
    );
    t.push(vec![
        "count (adjacency-list input)".into(),
        ms(r.count_from_adjacency_s),
    ]);
    t.push(vec![
        "count (edge-array input)".into(),
        ms(r.count_from_edge_array_s),
    ]);
    t.push(vec![
        "convert edge array -> adjacency list".into(),
        ms(r.convert_edge_to_adjacency_s),
    ]);
    t.push(vec![
        "convert adjacency list -> edge array".into(),
        ms(r.convert_adjacency_to_edge_s),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_input_format_shape() {
        let r = run(&ExpConfig::smoke());
        assert!(r.count_from_adjacency_s > 0.0);
        assert!(r.count_from_edge_array_s > 0.0);
        // The expensive conversion direction must dominate the cheap one.
        assert!(
            r.convert_edge_to_adjacency_s > r.convert_adjacency_to_edge_s,
            "edge->adj {} !> adj->edge {}",
            r.convert_edge_to_adjacency_s,
            r.convert_adjacency_to_edge_s
        );
    }
}
