//! §III-C launch tuning: the paper's grid search over threads-per-block
//! (powers of two, 32…1024) and blocks-per-SM (1…16), concluding that
//! "64 threads per block and 8 blocks per multiprocessor" is optimal or
//! nearly optimal across graphs and devices, with other ~512-threads-per-SM
//! combinations matching on the GTX 980 but not on the older cards.

use tc_core::count::GpuOptions;
use tc_core::gpu::pipeline::run_gpu_pipeline;
use tc_gen::suite::GraphSpec;
use tc_simt::{DeviceConfig, LaunchConfig};

use crate::report::Table;

use super::ExpConfig;

/// One grid cell.
#[derive(Clone, Debug)]
pub struct Cell {
    pub device: &'static str,
    pub threads_per_block: u32,
    pub blocks_per_sm: u32,
    pub kernel_ms: f64,
}

/// The paper's tuned point.
pub const PAPER_THREADS: u32 = 64;
pub const PAPER_BLOCKS_PER_SM: u32 = 8;

/// Sweep the launch grid on the LiveJournal analog for the given device.
/// `thin` subsamples blocks-per-SM (1, 2, 4, 8, 16) to keep the smoke
/// configuration fast; the full 1..=16 sweep runs at bench scale.
pub fn run_device(cfg: &ExpConfig, device: &DeviceConfig, thin: bool) -> Vec<Cell> {
    let g = GraphSpec::LiveJournal.generate(cfg.scale, cfg.seed);
    let mut cells = Vec::new();
    let blocks_axis: Vec<u32> = if thin {
        vec![1, 2, 4, 8, 16]
    } else {
        (1..=16).collect()
    };
    for threads in [32u32, 64, 128, 256, 512, 1024] {
        if threads > device.max_threads_per_sm {
            continue;
        }
        for &bpsm in &blocks_axis {
            // Skip configurations the occupancy limits would clamp anyway
            // (they alias a smaller resident set and waste grid slots).
            if bpsm > device.resident_blocks(threads) {
                continue;
            }
            let mut opts = GpuOptions::new(device.clone().with_unlimited_memory());
            opts.launch = Some(LaunchConfig::new(bpsm * device.num_sms, threads));
            let report = run_gpu_pipeline(&g, &opts).expect("tuning pipeline");
            cells.push(Cell {
                device: device.name,
                threads_per_block: threads,
                blocks_per_sm: bpsm,
                kernel_ms: report.kernel.time_s * 1e3,
            });
        }
    }
    cells
}

/// Run the sweep on the GTX 980 and Tesla C2050 presets.
pub fn run(cfg: &ExpConfig) -> Vec<Cell> {
    let thin = cfg.scale == tc_gen::Scale::Smoke;
    let mut cells = run_device(cfg, &DeviceConfig::gtx_980(), thin);
    cells.extend(run_device(cfg, &DeviceConfig::tesla_c2050(), thin));
    cells
}

/// The best cell per device, plus how close the paper's 64×8 sits to it.
pub fn paper_point_gap(cells: &[Cell], device: &str) -> Option<(f64, f64)> {
    let best = cells
        .iter()
        .filter(|c| c.device == device)
        .map(|c| c.kernel_ms)
        .fold(f64::MAX, f64::min);
    let paper = cells
        .iter()
        .find(|c| {
            c.device == device
                && c.threads_per_block == PAPER_THREADS
                && c.blocks_per_sm == PAPER_BLOCKS_PER_SM
        })?
        .kernel_ms;
    Some((best, paper))
}

pub fn render(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Section III-C: launch-tuning grid (counting-kernel ms on the livejournal analog; * = paper's 64x8)",
        &["device", "threads/block", "blocks/SM", "kernel [ms]"],
    );
    for c in cells {
        let star = if c.threads_per_block == PAPER_THREADS && c.blocks_per_sm == PAPER_BLOCKS_PER_SM
        {
            " *"
        } else {
            ""
        };
        t.push(vec![
            c.device.to_string(),
            c.threads_per_block.to_string(),
            format!("{}{}", c.blocks_per_sm, star),
            format!("{:.4}", c.kernel_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_contains_paper_point_and_it_is_competitive() {
        let cfg = ExpConfig::smoke();
        let cells = run_device(&cfg, &DeviceConfig::gtx_980(), true);
        assert!(!cells.is_empty());
        let (best, paper) = paper_point_gap(&cells, "GTX 980").expect("64x8 in grid");
        // The paper's point must be within 2x of the grid optimum even at
        // smoke scale (at bench scale it is nearly optimal).
        assert!(paper <= 2.0 * best, "paper 64x8 {paper} vs best {best}");
        // Degenerate launches must be clearly worse than the best.
        let worst = cells.iter().map(|c| c.kernel_ms).fold(0.0f64, f64::max);
        assert!(worst > 1.2 * best, "grid should show real spread");
    }
}
