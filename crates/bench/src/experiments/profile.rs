//! `repro profile` — the nvprof view of the pipeline, reproducing Table
//! II's profiler columns from the simulator's hardware counters.
//!
//! For every suite graph, the counting kernel's span
//! (`count/count-kernel`) supplies the texture-cache hit rate and DRAM
//! throughput nvprof measured (Table II), plus the counters the paper
//! discusses qualitatively: divergence serialization (§III-D7), issue
//! stalls, and achieved occupancy. The per-phase breakdown of one
//! representative graph shows the eight §III-B preprocessing steps
//! individually.

use tc_core::count::GpuOptions;
use tc_core::gpu::pipeline::run_gpu_pipeline_profiled;
use tc_gen::suite::full_suite_seeded;
use tc_simt::profiler::ProfileReport;
use tc_simt::DeviceConfig;

use crate::report::{pct, Table};

use super::ExpConfig;

/// One profiled run.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    pub profile: ProfileReport,
}

/// Path of the counting kernel's span in the pipeline's phase tree.
pub const KERNEL_SPAN: &str = "count/count-kernel";

/// Profile the full pipeline on every suite graph (GTX 980 preset).
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let suite = full_suite_seeded(cfg.scale, cfg.seed);
    suite
        .iter()
        .map(|item| {
            let (_, trace) =
                run_gpu_pipeline_profiled(&item.graph, &GpuOptions::new(DeviceConfig::gtx_980()))
                    .expect("gtx980 pipeline");
            Row {
                name: item.name.clone(),
                profile: trace.profile,
            }
        })
        .collect()
}

/// Per-graph counting-kernel counters (the Table II columns plus the
/// §III-D diagnostics).
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Profile: counting-kernel counters on GTX 980 (cf. Table II)",
        &[
            "graph",
            "tex hit",
            "L2 hit",
            "BW [GB/s]",
            "DRAM [MB]",
            "serialized",
            "stall [cyc]",
            "occupancy",
            "kernel [ms]",
        ],
    );
    for r in rows {
        let span = r
            .profile
            .span(KERNEL_SPAN)
            .expect("pipeline records the counting-kernel span");
        let c = &span.counters;
        t.push(vec![
            r.name.clone(),
            pct(c.tex.hit_rate()),
            pct(c.l2.hit_rate()),
            format!("{:.2}", span.achieved_bandwidth_gbs()),
            format!("{:.2}", c.dram_bytes() as f64 / 1e6),
            c.serialized_groups.to_string(),
            format!("{:.0}", c.issue_stall_cycles),
            pct(c.occupancy()),
            format!("{:.3}", span.duration_s() * 1e3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_covers_the_suite_and_kernel_span() {
        let rows = run(&ExpConfig::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            let span = r.profile.span(KERNEL_SPAN).expect("kernel span");
            assert!(span.duration_s() > 0.0, "{}", r.name);
            assert!((0.0..=1.0).contains(&span.counters.tex.hit_rate()));
            // The pipeline's phase totals must cover the whole run.
            assert!(r.profile.total_s > 0.0);
        }
        let table = render(&rows);
        assert_eq!(table.rows.len(), 13);
    }
}
