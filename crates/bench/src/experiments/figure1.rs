//! Figure 1: log–log running time vs. node count on the Kronecker ladder,
//! four series — CPU, Tesla C2050, 4×C2050, GTX 980.
//!
//! Shape criteria: every series roughly linear on the log–log plot (time
//! grows by a constant factor per scale step), the GPU series below the CPU
//! series by an order of magnitude, the 4-GPU series below the 1-GPU series
//! with the gap widening as the triangle count grows.

use tc_core::count::GpuOptions;
use tc_core::cpu::count_forward;
use tc_core::gpu::multi::run_multi_gpu;
use tc_core::gpu::pipeline::run_gpu_pipeline;
use tc_gen::suite::kronecker_ladder;
use tc_simt::DeviceConfig;

use crate::report::{ms, Table};

use super::{time_host, ExpConfig};

/// One ladder point: times for all four series.
#[derive(Clone, Debug)]
pub struct Point {
    pub name: String,
    pub nodes: usize,
    pub edges: usize,
    pub cpu_s: f64,
    pub c2050_s: f64,
    pub quad_s: f64,
    pub gtx_s: f64,
}

/// Run the ladder.
pub fn run(cfg: &ExpConfig) -> Vec<Point> {
    kronecker_ladder(cfg.scale, cfg.seed)
        .iter()
        .map(|item| {
            let g = &item.graph;
            let mut triangles = 0;
            let cpu_s = time_host(cfg.repeats, || {
                triangles = count_forward(g).expect("valid suite graph");
            });
            let c2050 =
                run_gpu_pipeline(g, &GpuOptions::new(DeviceConfig::tesla_c2050())).expect("c2050");
            let quad = run_multi_gpu(g, &GpuOptions::new(DeviceConfig::tesla_c2050()), 4)
                .expect("4x c2050");
            let gtx =
                run_gpu_pipeline(g, &GpuOptions::new(DeviceConfig::gtx_980())).expect("gtx980");
            assert_eq!(c2050.triangles, triangles);
            assert_eq!(quad.triangles, triangles);
            assert_eq!(gtx.triangles, triangles);
            Point {
                name: item.name.clone(),
                nodes: g.num_nodes(),
                edges: g.num_edges(),
                cpu_s,
                c2050_s: c2050.total_s,
                quad_s: quad.total_s,
                gtx_s: gtx.total_s,
            }
        })
        .collect()
}

pub fn render(points: &[Point]) -> Table {
    let mut t = Table::new(
        "Figure 1: Kronecker ladder, time [ms] per series (log-log in the paper)",
        &[
            "graph", "nodes", "edges", "cpu", "c2050", "4xc2050", "gtx980",
        ],
    );
    for p in points {
        t.push(vec![
            p.name.clone(),
            p.nodes.to_string(),
            p.edges.to_string(),
            ms(p.cpu_s),
            ms(p.c2050_s),
            ms(p.quad_s),
            ms(p.gtx_s),
        ]);
    }
    t
}

/// A crude ASCII rendering of the log-log plot, for terminal inspection.
type SeriesAccessor = fn(&Point) -> f64;

pub fn ascii_plot(points: &[Point]) -> String {
    let series: [(char, SeriesAccessor); 4] = [
        ('c', |p| p.cpu_s),
        ('t', |p| p.c2050_s),
        ('4', |p| p.quad_s),
        ('g', |p| p.gtx_s),
    ];
    let all: Vec<f64> = points
        .iter()
        .flat_map(|p| series.iter().map(move |(_, f)| f(p)))
        .collect();
    let (lo, hi) = all
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let cols = 60usize;
    let mut out = String::new();
    out.push_str("time -> (log scale)\n");
    for p in points {
        out.push_str(&format!("{:>14} |", p.name));
        let mut line = vec![' '; cols + 1];
        for (label, f) in &series {
            let x = f(p);
            let frac = ((x / lo).ln() / (hi / lo).ln()).clamp(0.0, 1.0);
            let pos = (frac * cols as f64) as usize;
            line[pos] = *label;
        }
        out.extend(line);
        out.push('\n');
    }
    out.push_str("legend: c=cpu, t=c2050(tesla), 4=4xc2050, g=gtx980\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ladder_runs_and_grows() {
        let points = run(&ExpConfig::smoke());
        assert_eq!(points.len(), 6);
        // Node counts double along the ladder.
        for w in points.windows(2) {
            assert!(w[1].nodes > w[0].nodes);
        }
        let table = render(&points);
        assert_eq!(table.rows.len(), 6);
        let plot = ascii_plot(&points);
        assert!(plot.lines().count() >= 7);
    }
}
