//! Workload-balanced scheduling vs the paper's thread-per-edge mapping.
//!
//! For every suite graph this experiment prepares the graph twice on a
//! GTX 980 — once under the default §III-C schedule, once under the
//! auto-tuned `balanced` schedule — and compares:
//!
//! * **kernel speedup**: thread-per-edge count phase / balanced count
//!   phase (the per-request win a serving deployment sees after the plan
//!   is amortized);
//! * **prepare overhead**: the charged binning passes (work-estimate keys,
//!   radix sort, gather), paid once per prepared graph;
//! * **end-to-end ratio**: `(prepare + count)` balanced / baseline — the
//!   one-shot view where the binning cost must be recovered by a single
//!   count.
//!
//! Shape criterion (bench scale): ≥ 1.3× kernel speedup on the skewed
//! graphs (orkut, the large Kronecker rungs, Barabási–Albert) and ≤ 1.05×
//! end-to-end slowdown on the uniform Watts–Strogatz graph, where the
//! auto-tuner declines to build a plan at all.

use tc_core::count::GpuOptions;
use tc_core::gpu::prepared::PreparedGraph;
use tc_gen::suite::full_suite_seeded;
use tc_simt::DeviceConfig;

use crate::report::{ratio, Table};

use super::ExpConfig;

/// One graph's balanced-vs-baseline comparison.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    /// Oriented arcs (= undirected edges).
    pub m: usize,
    /// Human-readable tuned plan (`-` when the tuner declined).
    pub plan: String,
    /// Thread-per-edge count phase (kernel + reduce), modeled ms.
    pub baseline_count_ms: f64,
    /// Balanced count phase, modeled ms.
    pub balanced_count_ms: f64,
    /// Charged binning overhead in the balanced prepare, modeled ms.
    pub schedule_overhead_ms: f64,
    /// Balanced / baseline full window (prepare + one count).
    pub end_to_end_ratio: f64,
    pub triangles: u64,
}

impl Row {
    /// `baseline / balanced` count phase: > 1 means balancing helps.
    pub fn kernel_speedup(&self) -> f64 {
        self.baseline_count_ms / self.balanced_count_ms
    }
}

fn describe_plan(prepared: &PreparedGraph) -> String {
    match prepared.bin_plan() {
        None => "-".into(),
        Some(plan) => {
            let m = prepared.m_oriented().max(1);
            plan.occupied()
                .map(|b| {
                    let pct = 100.0 * b.len as f64 / m as f64;
                    if b.width == 1 {
                        format!("merge {pct:.1}%")
                    } else {
                        format!("warp{} {pct:.1}%", b.width)
                    }
                })
                .collect::<Vec<_>>()
                .join(" | ")
        }
    }
}

/// Compare the two schedules on every suite graph.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let device = DeviceConfig::gtx_980().with_unlimited_memory();
    full_suite_seeded(cfg.scale, cfg.seed)
        .into_iter()
        .map(|item| {
            let baseline_opts = GpuOptions::new(device.clone());
            let mut base = PreparedGraph::prepare(&item.graph, &baseline_opts)
                .unwrap_or_else(|e| panic!("{}: {e}", item.name));
            let base_count = base.count().unwrap();
            let base_prepare_s = base.prepare_s();
            base.release().unwrap();

            let balanced_opts = GpuOptions::balanced(device.clone());
            let mut bal = PreparedGraph::prepare(&item.graph, &balanced_opts)
                .unwrap_or_else(|e| panic!("{}: {e}", item.name));
            let bal_count = bal.count().unwrap();
            let bal_prepare_s = bal.prepare_s();
            assert_eq!(
                bal_count.triangles, base_count.triangles,
                "{}: balanced count must match",
                item.name
            );
            let row = Row {
                name: item.name,
                m: bal.m_oriented(),
                plan: describe_plan(&bal),
                baseline_count_ms: base_count.count_s * 1e3,
                balanced_count_ms: bal_count.count_s * 1e3,
                schedule_overhead_ms: (bal_prepare_s - base_prepare_s) * 1e3,
                end_to_end_ratio: (bal_prepare_s + bal_count.count_s)
                    / (base_prepare_s + base_count.count_s),
                triangles: bal_count.triangles,
            };
            bal.release().unwrap();
            row
        })
        .collect()
}

pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Balanced scheduling vs thread-per-edge (GTX 980, modeled)",
        &[
            "graph",
            "edges",
            "tuned plan",
            "tpe count [ms]",
            "balanced count [ms]",
            "kernel speedup",
            "bin overhead [ms]",
            "end-to-end",
        ],
    );
    for r in rows {
        t.push(vec![
            r.name.clone(),
            r.m.to_string(),
            r.plan.clone(),
            format!("{:.4}", r.baseline_count_ms),
            format!("{:.4}", r.balanced_count_ms),
            ratio(r.kernel_speedup()),
            format!("{:.4}", r.schedule_overhead_ms),
            ratio(r.end_to_end_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_balance_counts_match_and_uniform_graphs_opt_out() {
        let rows = run(&ExpConfig::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!(r.balanced_count_ms > 0.0, "{}", r.name);
            assert!(r.end_to_end_ratio > 0.0, "{}", r.name);
        }
        let ws = rows
            .iter()
            .find(|r| r.name.contains("watts"))
            .expect("watts-strogatz in suite");
        // Uniform degrees: the auto-tuner declines, so the balanced run is
        // byte-identical to the baseline — zero overhead, ratio exactly 1.
        assert_eq!(ws.plan, "-", "{}", ws.plan);
        assert!(ws.schedule_overhead_ms.abs() < 1e-12);
        assert!((ws.end_to_end_ratio - 1.0).abs() < 1e-12);
        assert!((ws.kernel_speedup() - 1.0).abs() < 1e-12);
    }
}
