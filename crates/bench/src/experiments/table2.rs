//! Table II: counting-kernel profile on the GTX 980 — texture-cache hit
//! rate and achieved DRAM bandwidth per graph.
//!
//! Shape criteria: hit rates in the paper's 60–85 % band, the regular/low-
//! locality synthetic graphs at the bottom of the range, bandwidth a
//! substantial fraction of the card's 224 GB/s peak but well below it
//! ("about half", §IV).
//!
//! The columns come from the profiler subsystem — the counting kernel's
//! `count/count-kernel` span delta — the same path `tcount --profile` and
//! `repro profile` report, mirroring how the paper's numbers came from
//! nvprof rather than in-kernel instrumentation.

use tc_core::count::GpuOptions;
use tc_core::gpu::pipeline::run_gpu_pipeline_profiled;
use tc_gen::suite::full_suite_seeded;
use tc_simt::DeviceConfig;

use crate::report::{pct, Table};

use super::ExpConfig;

/// One row of Table II.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    pub tex_hit_rate: f64,
    pub bandwidth_gbs: f64,
    pub dram_bytes: u64,
    pub kernel_ms: f64,
}

/// Profile the counting kernel on every suite graph (GTX 980 preset).
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let suite = full_suite_seeded(cfg.scale, cfg.seed);
    suite
        .iter()
        .map(|item| {
            let (_, trace) =
                run_gpu_pipeline_profiled(&item.graph, &GpuOptions::new(DeviceConfig::gtx_980()))
                    .expect("gtx980 pipeline");
            let span = trace
                .profile
                .span(super::profile::KERNEL_SPAN)
                .expect("pipeline records the counting-kernel span");
            Row {
                name: item.name.clone(),
                tex_hit_rate: span.counters.tex.hit_rate(),
                bandwidth_gbs: span.achieved_bandwidth_gbs(),
                dram_bytes: span.counters.dram_bytes(),
                kernel_ms: span.duration_s() * 1e3,
            }
        })
        .collect()
}

pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table II: profiling results on GTX 980",
        &["graph", "cache hit rate", "bandwidth [GB/s]", "kernel [ms]"],
    );
    for r in rows {
        t.push(vec![
            r.name.clone(),
            pct(r.tex_hit_rate),
            format!("{:.2}", r.bandwidth_gbs),
            format!("{:.3}", r.kernel_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table2_reports_plausible_rates() {
        let rows = run(&ExpConfig::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!(
                (0.0..=1.0).contains(&r.tex_hit_rate),
                "{}: {}",
                r.name,
                r.tex_hit_rate
            );
            assert!(r.bandwidth_gbs >= 0.0);
            assert!(r.kernel_ms > 0.0);
        }
    }
}
