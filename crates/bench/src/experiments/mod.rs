//! One module per paper experiment. Each exposes `run(&ExpConfig)`
//! returning typed rows and `render(...)` producing a printable
//! [`crate::report::Table`].

pub mod ablations;
pub mod amdahl;
pub mod approx_comparison;
pub mod balance;
pub mod bench_json;
pub mod cluster;
pub mod figure1;
pub mod hash;
pub mod input_format;
pub mod profile;
pub mod table1;
pub mod table2;
pub mod throughput;
pub mod tuning;

use tc_gen::{Scale, Seed};

/// Shared experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Graph suite scale (see [`tc_gen::suite`]).
    pub scale: Scale,
    /// Repetitions for host-measured timings; the paper runs each
    /// experiment five times and reports means.
    pub repeats: usize,
    /// Suite seed.
    pub seed: Seed,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: Scale::Bench,
            repeats: 3,
            seed: tc_gen::suite::SUITE_SEED,
        }
    }
}

impl ExpConfig {
    pub fn smoke() -> Self {
        ExpConfig {
            scale: Scale::Smoke,
            repeats: 1,
            ..Default::default()
        }
    }
}

/// Mean host seconds of `f` over `repeats` runs (first run warms caches and
/// is *included*, like the paper's mean-of-five protocol).
pub(crate) fn time_host<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    let repeats = repeats.max(1);
    let start = std::time::Instant::now();
    for _ in 0..repeats {
        f();
    }
    start.elapsed().as_secs_f64() / repeats as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_host_averages() {
        let mut runs = 0;
        let t = time_host(4, || {
            runs += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert_eq!(runs, 4);
        assert!(t >= 0.002, "{t}");
        assert!(t < 0.05);
    }
}
