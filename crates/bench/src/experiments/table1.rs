//! Table I: per-graph CPU time, Tesla C2050 time/speedup, 4×C2050
//! time/speedup, GTX 980 time/speedup.
//!
//! Shape criteria vs the paper: every GPU speedup ≫ 1; the GTX-980 column
//! roughly doubles the C2050 column; the † capacity-fallback marker appears
//! on the Orkut and top-Kronecker analogs (C2050 only); the 4-GPU column
//! helps most on triangle-dense graphs.

use tc_core::count::GpuOptions;
use tc_core::cpu::count_forward;
use tc_core::gpu::multi::run_multi_gpu;
use tc_core::gpu::pipeline::run_gpu_pipeline;
use tc_gen::suite::full_suite_seeded;
use tc_simt::DeviceConfig;

use crate::report::{ms, ratio, Table};

use super::{time_host, ExpConfig};

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    pub nodes: usize,
    pub edges: usize,
    pub triangles: u64,
    pub cpu_s: f64,
    pub c2050_s: f64,
    pub c2050_dagger: bool,
    pub quad_s: f64,
    pub quad_dagger: bool,
    pub gtx_s: f64,
}

impl Row {
    pub fn c2050_speedup(&self) -> f64 {
        self.cpu_s / self.c2050_s
    }
    /// The paper's second speedup column: 4 GPUs over 1 GPU.
    pub fn quad_speedup(&self) -> f64 {
        self.c2050_s / self.quad_s
    }
    pub fn gtx_speedup(&self) -> f64 {
        self.cpu_s / self.gtx_s
    }
}

/// Run the full Table I experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let suite = full_suite_seeded(cfg.scale, cfg.seed);
    let mut rows = Vec::with_capacity(suite.len());
    for item in &suite {
        let g = &item.graph;
        let mut triangles = 0u64;
        let cpu_s = time_host(cfg.repeats, || {
            triangles = count_forward(g).expect("suite graphs are valid");
        });

        let c2050 = run_gpu_pipeline(g, &GpuOptions::new(DeviceConfig::tesla_c2050()))
            .expect("c2050 pipeline");
        assert_eq!(c2050.triangles, triangles, "{}: c2050 disagrees", item.name);

        let quad =
            run_multi_gpu(g, &GpuOptions::new(DeviceConfig::tesla_c2050()), 4).expect("4x c2050");
        assert_eq!(
            quad.triangles, triangles,
            "{}: 4xc2050 disagrees",
            item.name
        );

        let gtx = run_gpu_pipeline(g, &GpuOptions::new(DeviceConfig::gtx_980()))
            .expect("gtx980 pipeline");
        assert_eq!(gtx.triangles, triangles, "{}: gtx980 disagrees", item.name);

        rows.push(Row {
            name: item.name.clone(),
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            triangles,
            cpu_s,
            c2050_s: c2050.total_s,
            c2050_dagger: c2050.used_cpu_fallback,
            quad_s: quad.total_s,
            quad_dagger: quad.used_cpu_fallback,
            gtx_s: gtx.total_s,
        });
    }
    rows
}

/// Paper-style rendering.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table I: experimental results (times in ms; dagger = CPU-preprocessing fallback)",
        &[
            "graph",
            "nodes",
            "edges",
            "triangles",
            "cpu",
            "c2050",
            "speedup",
            "4xc2050",
            "speedup4",
            "gtx980",
            "speedupG",
        ],
    );
    for r in rows {
        t.push(vec![
            r.name.clone(),
            r.nodes.to_string(),
            r.edges.to_string(),
            r.triangles.to_string(),
            ms(r.cpu_s),
            format!("{}{}", if r.c2050_dagger { "+" } else { "" }, ms(r.c2050_s)),
            ratio(r.c2050_speedup()),
            format!("{}{}", if r.quad_dagger { "+" } else { "" }, ms(r.quad_s)),
            ratio(r.quad_speedup()),
            ms(r.gtx_s),
            ratio(r.gtx_speedup()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table1_has_thirteen_consistent_rows() {
        let rows = run(&ExpConfig::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!(r.cpu_s > 0.0, "{}", r.name);
            assert!(r.c2050_s > 0.0);
            assert!(r.quad_s > 0.0);
            assert!(r.gtx_s > 0.0);
        }
        let table = render(&rows);
        assert_eq!(table.rows.len(), 13);
    }
}
