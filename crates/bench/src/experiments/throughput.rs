//! Serving throughput: the engine's preprocess-once/count-many sessions
//! against one-shot counting.
//!
//! The paper's protocol (§IV) pays context bring-up, the host-to-device
//! copy, and the eight preprocessing steps on *every* run. A serving
//! deployment answering N requests for the same graph only needs the
//! counting kernel per request: `tc-engine` keeps the prepared session
//! device-resident (context bring-up per pooled device, preprocessing per
//! distinct graph) and each further request is charged kernel phases only.
//!
//! For every suite graph this experiment pushes N identical GPU jobs
//! through a fresh engine and compares modeled serving cost:
//!
//! * one-shot: `N × (context_init + prepare + count)` — each request
//!   brings up its own device and runs the full pipeline;
//! * engine:   `devices_created × context_init + prepare + N × count`.
//!
//! Two speedups are reported: the *window* speedup (full measured window
//! vs kernel-only, what the PreparedGraph cache alone buys — bounded by
//! the §III-E preprocessing fraction) and the *serving* speedup (including
//! per-request context bring-up, which the device pool amortizes — the
//! paper itself notes the ~100 ms `cudaFree(NULL)` exceeds many counting
//! runs). Shape criterion: serving speedup ≥ 5× for every graph at smoke
//! scale and ≥ 5× suite geomean at every scale — the ceiling per graph is
//! `(context_init + window) / count`, so graphs whose kernel dominates the
//! window (orkut, the largest Kronecker rungs) sit near it.

use std::sync::Arc;

use tc_core::count::GpuOptions;
use tc_core::Backend;
use tc_engine::{Engine, EngineConfig, Job};
use tc_gen::suite::full_suite_seeded;
use tc_simt::DeviceConfig;

use crate::report::{ratio, Table};

use super::ExpConfig;

/// Requests per graph; enough for the amortization to converge.
pub const JOBS_PER_GRAPH: usize = 16;

/// One graph's serving-throughput row.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    pub jobs: usize,
    /// Modeled cost of one one-shot request (context init + full window).
    pub oneshot_job_s: f64,
    /// Modeled engine cost per request, bring-up and prepare amortized.
    pub engine_job_s: f64,
    /// Full-window / kernel-only — the cache's own win.
    pub window_speedup: f64,
    /// One-shot serving / engine serving — the headline.
    pub serving_speedup: f64,
    /// Modeled requests per second the engine sustains on this graph.
    pub jobs_per_s: f64,
}

/// Push N identical jobs per suite graph through a fresh engine.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let device = DeviceConfig::gtx_980().with_unlimited_memory();
    let context_init_s = device.context_init_ms / 1e3;
    let backend = Backend::Gpu(GpuOptions::new(device));
    full_suite_seeded(cfg.scale, cfg.seed)
        .into_iter()
        .map(|item| {
            let graph = Arc::new(item.graph);
            let engine = Engine::new(EngineConfig::default());
            let jobs: Vec<Job> = (0..JOBS_PER_GRAPH)
                .map(|i| {
                    Job::new(
                        format!("{}#{i}", item.name),
                        Arc::clone(&graph),
                        backend.clone(),
                    )
                })
                .collect();
            let report = engine.run_batch(jobs);
            let mut window_s = 0.0; // prepare + count: the paper's window
            let mut count_s = 0.0; // kernel phases only
            let mut engine_total_s = report.devices_created as f64 * context_init_s;
            for job in &report.jobs {
                let r = job
                    .result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{}: {e}", item.name));
                engine_total_s += r.seconds;
                if r.cache_hit {
                    count_s = r.count_s;
                } else {
                    window_s = r.seconds;
                }
            }
            assert_eq!(report.cache_hits, JOBS_PER_GRAPH - 1, "{}", item.name);
            let oneshot_job_s = context_init_s + window_s;
            let engine_job_s = engine_total_s / JOBS_PER_GRAPH as f64;
            Row {
                name: item.name,
                jobs: JOBS_PER_GRAPH,
                oneshot_job_s,
                engine_job_s,
                window_speedup: window_s / count_s,
                serving_speedup: oneshot_job_s / engine_job_s,
                jobs_per_s: JOBS_PER_GRAPH as f64 / engine_total_s,
            }
        })
        .collect()
}

/// Suite-level headline: geometric mean of the per-graph serving speedups.
pub fn geomean_serving_speedup(rows: &[Row]) -> f64 {
    let log_sum: f64 = rows.iter().map(|r| r.serving_speedup.ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Serving throughput: prepared sessions + device pool vs one-shot (GTX 980)",
        &[
            "graph",
            "jobs",
            "oneshot [ms/job]",
            "engine [ms/job]",
            "window speedup",
            "serving speedup",
            "jobs/s",
        ],
    );
    for r in rows {
        t.push(vec![
            r.name.clone(),
            r.jobs.to_string(),
            format!("{:.3}", r.oneshot_job_s * 1e3),
            format!("{:.3}", r.engine_job_s * 1e3),
            ratio(r.window_speedup),
            ratio(r.serving_speedup),
            format!("{:.1}", r.jobs_per_s),
        ]);
    }
    t.push(vec![
        "suite geomean".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        ratio(geomean_serving_speedup(rows)),
        String::new(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_throughput_amortizes_preprocessing() {
        let rows = run(&ExpConfig::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            // The cache's own win: repeated counts skip preprocessing.
            assert!(r.window_speedup > 1.0, "{}: {}", r.name, r.window_speedup);
            // The acceptance bar: serving a repeated graph through the
            // engine is at least 5× cheaper than one-shot serving.
            assert!(
                r.serving_speedup >= 5.0,
                "{}: serving speedup {}",
                r.name,
                r.serving_speedup
            );
            assert!(r.engine_job_s < r.oneshot_job_s);
            assert!(r.jobs_per_s > 0.0);
        }
        let geomean = geomean_serving_speedup(&rows);
        assert!(geomean >= 5.0, "suite geomean {geomean}");
    }
}
