//! §V comparison: exact counting vs. the approximation family the paper
//! cites (\[6\] DOULION, \[7\] wedge sampling). The paper's claim: the
//! approximations "provide good speedups and usually need little memory,
//! but … the approximate triangle count can differ from the actual count
//! usually by a few percent".

use tc_core::approx::{doulion, wedge_sampling};
use tc_core::cpu::count_forward;
use tc_gen::suite::{full_suite_seeded, GraphSpec};

use crate::report::Table;

use super::{time_host, ExpConfig};

/// One graph's exact-vs-approximate row.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    pub exact: u64,
    pub exact_s: f64,
    pub doulion_estimate: f64,
    pub doulion_s: f64,
    pub wedge_estimate: f64,
    pub wedge_s: f64,
}

impl Row {
    pub fn doulion_error(&self) -> f64 {
        (self.doulion_estimate - self.exact as f64).abs() / self.exact.max(1) as f64
    }
    pub fn wedge_error(&self) -> f64 {
        (self.wedge_estimate - self.exact as f64).abs() / self.exact.max(1) as f64
    }
}

const DOULION_P: f64 = 0.3;
const WEDGE_SAMPLES: usize = 50_000;

/// Run on a triangle-rich subset (estimators are meaningless on rows with
/// a handful of triangles).
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let wanted = [
        GraphSpec::LiveJournal,
        GraphSpec::Orkut,
        GraphSpec::Citeseer,
        GraphSpec::Kronecker(2),
        GraphSpec::WattsStrogatz,
    ];
    full_suite_seeded(cfg.scale, cfg.seed)
        .into_iter()
        .filter(|r| wanted.contains(&r.spec))
        .map(|item| {
            let g = &item.graph;
            let mut exact = 0u64;
            let exact_s = time_host(cfg.repeats, || {
                exact = count_forward(g).expect("valid graph");
            });
            let mut doulion_estimate = 0.0;
            let doulion_s = time_host(cfg.repeats, || {
                doulion_estimate = doulion(g, DOULION_P, cfg.seed.0).expect("doulion");
            });
            let mut wedge_estimate = 0.0;
            let wedge_s = time_host(cfg.repeats, || {
                wedge_estimate =
                    wedge_sampling(g, WEDGE_SAMPLES, cfg.seed.0).expect("wedge sampling");
            });
            Row {
                name: item.name,
                exact,
                exact_s,
                doulion_estimate,
                doulion_s,
                wedge_estimate,
                wedge_s,
            }
        })
        .collect()
}

pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        format!(
            "Section V: exact vs approximate (doulion p={DOULION_P}, wedge samples={WEDGE_SAMPLES})"
        ),
        &[
            "graph",
            "exact",
            "exact [ms]",
            "doulion",
            "err",
            "doulion [ms]",
            "wedge",
            "err",
            "wedge [ms]",
        ],
    );
    for r in rows {
        t.push(vec![
            r.name.clone(),
            r.exact.to_string(),
            format!("{:.2}", r.exact_s * 1e3),
            format!("{:.0}", r.doulion_estimate),
            format!("{:.1}%", r.doulion_error() * 100.0),
            format!("{:.2}", r.doulion_s * 1e3),
            format!("{:.0}", r.wedge_estimate),
            format!("{:.1}%", r.wedge_error() * 100.0),
            format!("{:.2}", r.wedge_s * 1e3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_estimates_are_in_the_ballpark() {
        let rows = run(&ExpConfig::smoke());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.exact > 0, "{}", r.name);
            // Smoke graphs are small, so allow generous error bands; the
            // bench-scale run lands within a few percent.
            assert!(
                r.doulion_error() < 0.5,
                "{}: doulion err {}",
                r.name,
                r.doulion_error()
            );
            assert!(
                r.wedge_error() < 0.25,
                "{}: wedge err {}",
                r.name,
                r.wedge_error()
            );
        }
    }
}
