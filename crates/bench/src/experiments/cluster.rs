//! Cluster-sharding ablation: topology × partition scheme.
//!
//! For every suite graph this experiment runs the sharded cluster engine
//! on GTX 980 grids of growing size — 1×1 (the single-device analog),
//! 2×2, and 4×2 — under both the 1D owner-range partition and the 2D
//! owner × target grid, with the workload-balanced schedule on every
//! shard. Each cell reports the modeled wall time, the per-device peak
//! resident bytes, and the shard-work imbalance.
//!
//! Exactness criterion: the orientation happens once, host-side, before
//! any shard exists, so every topology × partition cell counts the same
//! oriented arc multiset — `run` asserts every cell's triangle count is
//! byte-identical to a single-device [`PreparedGraph`] run.
//!
//! Shape criterion: sharding exists to shrink the per-card footprint. On
//! every graph big enough for the boundary replication to amortize
//! (≥ [`PEAK_ASSERT_MIN_ARCS`] oriented arcs), the per-device peak must
//! *strictly decrease* along 1×1 → 2×2 → 4×2. Smaller graphs keep their
//! cells in the table but skip the monotonicity assert: replicated
//! boundary rows can dominate a tiny shard.

use tc_core::count::GpuOptions;
use tc_core::gpu::cluster::run_cluster;
use tc_core::gpu::prepared::PreparedGraph;
use tc_core::ClusterPartition;
use tc_gen::suite::full_suite_seeded;
use tc_simt::{ClusterTopology, DeviceConfig};

use crate::report::{ratio, Table};

use super::ExpConfig;

/// Below this many oriented arcs the strict peak-shrink assert is skipped
/// (boundary replication can dominate a tiny shard).
pub const PEAK_ASSERT_MIN_ARCS: usize = 4096;

/// The topology ladder every graph climbs.
const TOPOLOGIES: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 2)];

/// One graph × topology × partition cell.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    /// Oriented arcs (= undirected edges).
    pub m: usize,
    pub nodes: usize,
    pub devices_per_node: usize,
    /// `"1d"` or `"2d"`.
    pub partition: String,
    pub triangles: u64,
    /// Modeled wall time: shard-partition + slowest shard's count window.
    pub total_ms: f64,
    /// The slowest shard's count window alone.
    pub count_ms: f64,
    /// Largest shard, in oriented arcs.
    pub max_shard_arcs: usize,
    /// Largest per-device peak resident bytes — the per-card capacity
    /// this topology needs.
    pub max_resident_bytes: u64,
    /// Max shard work over mean shard work (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl Row {
    pub fn topology(&self) -> String {
        format!("{}x{}", self.nodes, self.devices_per_node)
    }
}

/// Run the topology × partition ladder on every suite graph. Panics if
/// any cell's count disagrees with the single-device run, or if the
/// per-device peak fails to shrink on a graph past the assert threshold.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let device = DeviceConfig::gtx_980().with_unlimited_memory();
    let mut rows = Vec::new();
    for item in full_suite_seeded(cfg.scale, cfg.seed) {
        let opts = GpuOptions::balanced(device.clone());

        // Single-device golden: same schedule, no sharding.
        let mut prepared = PreparedGraph::prepare(&item.graph, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", item.name));
        let golden = prepared
            .count()
            .unwrap_or_else(|e| panic!("{}: {e}", item.name))
            .triangles;
        let m = prepared.m_oriented();
        prepared.release().unwrap();

        let mut peaks_1d = Vec::new();
        for (nodes, devices_per_node) in TOPOLOGIES {
            for partition in [ClusterPartition::OneD, ClusterPartition::TwoD] {
                if (nodes, devices_per_node) == (1, 1) && partition == ClusterPartition::TwoD {
                    // One shard: 1D and 2D coincide; keep one cell.
                    continue;
                }
                let report = run_cluster(
                    &item.graph,
                    &opts,
                    ClusterTopology::new(nodes, devices_per_node),
                    partition,
                )
                .unwrap_or_else(|e| panic!("{}: {e}", item.name));
                assert_eq!(
                    report.triangles, golden,
                    "{}: {nodes}x{devices_per_node} {partition} disagrees with single-device",
                    item.name
                );
                if partition == ClusterPartition::OneD {
                    peaks_1d.push(report.max_resident_bytes);
                }
                rows.push(Row {
                    name: item.name.clone(),
                    m,
                    nodes,
                    devices_per_node,
                    partition: report.partition.label().to_string(),
                    triangles: report.triangles,
                    total_ms: report.total_s * 1e3,
                    count_ms: report.count_s * 1e3,
                    max_shard_arcs: report.per_shard_arcs.iter().copied().max().unwrap_or(0),
                    max_resident_bytes: report.max_resident_bytes,
                    imbalance: report.imbalance,
                });
            }
        }
        if m >= PEAK_ASSERT_MIN_ARCS {
            for pair in peaks_1d.windows(2) {
                assert!(
                    pair[1] < pair[0],
                    "{}: per-device peak must shrink as the grid grows ({:?})",
                    item.name,
                    peaks_1d
                );
            }
        }
    }
    rows
}

pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Cluster sharding (GTX 980 grid, balanced schedule, modeled ms)",
        &[
            "graph",
            "m",
            "grid",
            "part",
            "total",
            "count",
            "max shard arcs",
            "peak MiB/device",
            "imbalance",
            "triangles",
        ],
    );
    for r in rows {
        t.push(vec![
            r.name.clone(),
            r.m.to_string(),
            r.topology(),
            r.partition.clone(),
            format!("{:.4}", r.total_ms),
            format!("{:.4}", r.count_ms),
            r.max_shard_arcs.to_string(),
            format!("{:.3}", r.max_resident_bytes as f64 / (1024.0 * 1024.0)),
            ratio(r.imbalance),
            r.triangles.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ladder_is_exact_everywhere() {
        let rows = run(&ExpConfig::smoke());
        // 13 suite graphs × (1x1 + {2x2, 4x2} × {1d, 2d}) = 13 × 5 cells;
        // `run` itself asserts every cell equals the single-device count.
        assert_eq!(rows.len(), 13 * 5);
        for r in &rows {
            assert!(r.total_ms > 0.0, "{}: empty cell", r.name);
            assert!(r.imbalance >= 1.0, "{}", r.name);
            assert!(r.max_shard_arcs <= r.m, "{}", r.name);
        }
        // The 4x2 grid must never need more arcs per shard than 2x2.
        for w in rows.chunks(5) {
            let by = |n: usize, m: usize, p: &str| {
                w.iter()
                    .find(|r| r.nodes == n && r.devices_per_node == m && r.partition == p)
                    .unwrap()
            };
            assert!(
                by(4, 2, "1d").max_shard_arcs <= by(2, 2, "1d").max_shard_arcs,
                "{}",
                w[0].name
            );
        }
    }
}
