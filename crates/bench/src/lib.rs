//! Benchmark harness: code that regenerates every table and figure of the
//! paper's evaluation (§IV), plus the §III optimization ablations.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p tc-bench --release --bin repro`)
//!   prints paper-style tables and optionally CSV files;
//! * the **Criterion benches** (`cargo bench -p tc-bench`) give
//!   statistically robust timings for the same experiments.
//!
//! Experiment-to-paper mapping lives in DESIGN.md §4; paper-vs-measured
//! results are recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod profile;
pub mod report;

pub use experiments::{
    ablations, amdahl, approx_comparison, figure1, input_format, table1, table2, tuning,
};
