//! Criterion bench for Figure 1: CPU vs simulated GPU along the Kronecker
//! ladder (the scaling series of the paper's log–log plot).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tc_core::count::{Backend, CountRequest, GpuOptions};
use tc_gen::suite::kronecker_ladder;
use tc_graph::EdgeArray;
use tc_simt::DeviceConfig;

fn count(g: &EdgeArray, backend: Backend) -> u64 {
    CountRequest::new(backend).run(g).unwrap().triangles
}

fn bench_figure1(c: &mut Criterion) {
    let ladder = kronecker_ladder(common::scale(), common::seed());
    let mut group = c.benchmark_group("figure1");
    group.sample_size(10);
    for item in &ladder {
        group.bench_with_input(
            BenchmarkId::new("cpu-forward", &item.name),
            &item.graph,
            |b, g| b.iter(|| count(g, Backend::CpuForward)),
        );
        group.bench_with_input(
            BenchmarkId::new("sim-gtx980", &item.name),
            &item.graph,
            |b, g| {
                b.iter(|| {
                    count(
                        g,
                        Backend::Gpu(GpuOptions::new(
                            DeviceConfig::gtx_980().with_unlimited_memory(),
                        )),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
