//! Criterion bench for §III-A: counting from each input format, plus the
//! two conversion directions.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use tc_core::cpu::{count_forward, count_forward_adjacency};
use tc_gen::suite::GraphSpec;
use tc_graph::AdjacencyList;

fn bench_input_format(c: &mut Criterion) {
    let g = GraphSpec::LiveJournal.generate(common::scale(), common::seed());
    let adj = AdjacencyList::from_edge_array(&g);
    let mut group = c.benchmark_group("input-format");
    group.sample_size(10);
    group.bench_function("count-from-edge-array", |b| {
        b.iter(|| count_forward(&g).unwrap())
    });
    group.bench_function("count-from-adjacency", |b| {
        b.iter(|| count_forward_adjacency(&adj))
    });
    group.bench_function("convert-edge-to-adjacency", |b| {
        b.iter(|| AdjacencyList::from_edge_array(&g).num_arcs())
    });
    group.bench_function("convert-adjacency-to-edge", |b| {
        b.iter(|| adj.to_edge_array().num_arcs())
    });
    group.finish();
}

criterion_group!(benches, bench_input_format);
criterion_main!(benches);
