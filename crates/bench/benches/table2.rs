//! Criterion bench for Table II: the counting kernel alone (preprocessing
//! excluded) on the GTX 980 preset — the quantity whose profile the paper's
//! Table II reports.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tc_core::count::GpuOptions;
use tc_core::gpu::count_kernel::{CountKernel, KernelArrays};
use tc_core::gpu::preprocess::preprocess_full_gpu;
use tc_gen::suite::GraphSpec;
use tc_simt::{Device, DeviceConfig};

fn bench_counting_kernel(c: &mut Criterion) {
    let scale = common::scale();
    let seed = common::seed();
    let mut group = c.benchmark_group("table2-kernel");
    group.sample_size(10);
    for spec in [
        GraphSpec::LiveJournal,
        GraphSpec::BarabasiAlbert,
        GraphSpec::WattsStrogatz,
        GraphSpec::Kronecker(2),
    ] {
        let g = spec.generate(scale, seed);
        let name = spec.name(scale);
        // Preprocess once outside the measurement, like a profiler session.
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        dev.reset_clock();
        let pre = preprocess_full_gpu(&mut dev, &g, false).unwrap();
        let opts = GpuOptions::new(DeviceConfig::gtx_980());
        let lc = dev.config().paper_launch();
        let total = lc.active_threads(dev.config().warp_size);
        let result = dev.alloc::<u64>(total).unwrap();
        group.bench_function(BenchmarkId::new("simulate", &name), |b| {
            b.iter(|| {
                let kernel = CountKernel {
                    arrays: KernelArrays::SoA {
                        nbr: pre.nbr,
                        owner: pre.owner,
                    },
                    node: pre.node,
                    result,
                    offset: 0,
                    count: pre.m,
                    variant: opts.kernel,
                    use_texture_cache: true,
                };
                dev.launch("CountTriangles", lc, &kernel).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counting_kernel);
criterion_main!(benches);
