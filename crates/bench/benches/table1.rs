//! Criterion bench for Table I: every backend on a representative subset of
//! the suite (the full 13-row sweep is the `repro table1` binary).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tc_core::count::{Backend, CountRequest, GpuOptions};
use tc_gen::suite::GraphSpec;
use tc_graph::EdgeArray;
use tc_simt::DeviceConfig;

fn count(g: &EdgeArray, backend: Backend) -> u64 {
    CountRequest::new(backend).run(g).unwrap().triangles
}

fn bench_table1(c: &mut Criterion) {
    let scale = common::scale();
    let seed = common::seed();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for spec in [
        GraphSpec::LiveJournal,
        GraphSpec::Kronecker(2),
        GraphSpec::Citeseer,
    ] {
        let g = spec.generate(scale, seed);
        let name = spec.name(scale);
        group.bench_with_input(BenchmarkId::new("cpu-forward", &name), &g, |b, g| {
            b.iter(|| count(g, Backend::CpuForward))
        });
        group.bench_with_input(BenchmarkId::new("cpu-parallel", &name), &g, |b, g| {
            b.iter(|| count(g, Backend::CpuParallel))
        });
        group.bench_with_input(BenchmarkId::new("sim-c2050", &name), &g, |b, g| {
            b.iter(|| {
                count(
                    g,
                    Backend::Gpu(GpuOptions::new(
                        DeviceConfig::tesla_c2050().with_unlimited_memory(),
                    )),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sim-gtx980", &name), &g, |b, g| {
            b.iter(|| {
                count(
                    g,
                    Backend::Gpu(GpuOptions::new(
                        DeviceConfig::gtx_980().with_unlimited_memory(),
                    )),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
