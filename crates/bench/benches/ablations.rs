//! Criterion bench for the §III-D ablations: each optimization toggle on
//! the LiveJournal analog, measured as host time of the simulated pipeline.
//! (The modeled device-time ratios are the `repro ablations` output.)

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use tc_core::count::GpuOptions;
use tc_core::gpu::pipeline::run_gpu_pipeline;
use tc_core::gpu::{EdgeLayout, LoopVariant};
use tc_gen::suite::GraphSpec;
use tc_simt::DeviceConfig;

fn bench_ablations(c: &mut Criterion) {
    let g = GraphSpec::LiveJournal.generate(common::scale(), common::seed());
    let device = DeviceConfig::gtx_980().with_unlimited_memory();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    let variants: Vec<(&str, GpuOptions)> = {
        let base = GpuOptions::new(device.clone());
        let mut aos = base.clone();
        aos.layout = EdgeLayout::AoS;
        let mut prelim = base.clone();
        prelim.kernel = LoopVariant::Preliminary;
        let mut nocache = base.clone();
        nocache.use_texture_cache = false;
        let mut split = base.clone();
        split.warp_split = 2;
        vec![
            ("published", base),
            ("aos-layout", aos),
            ("preliminary-loop", prelim),
            ("no-texture-cache", nocache),
            ("warp-split-2", split),
        ]
    };
    for (name, opts) in variants {
        group.bench_function(name, |b| {
            b.iter(|| run_gpu_pipeline(&g, &opts).unwrap().triangles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
