//! Shared helpers for the Criterion benches.
//!
//! Criterion measures *host* wall time. For the CPU backends that is the
//! paper's measurement; for the simulated-GPU backends it measures the
//! simulator (the modeled device time lives in the pipeline reports and is
//! what the `repro` binary prints). Benches therefore default to the smoke
//! suite so `cargo bench` completes quickly; set `TC_BENCH_SCALE=bench` for
//! the full-size suite.

use tc_gen::suite::SUITE_SEED;
use tc_gen::{Scale, Seed};

pub fn scale() -> Scale {
    match std::env::var("TC_BENCH_SCALE").as_deref() {
        Ok("bench") => Scale::Bench,
        Ok("large") => Scale::Large,
        _ => Scale::Smoke,
    }
}

pub fn seed() -> Seed {
    SUITE_SEED
}
