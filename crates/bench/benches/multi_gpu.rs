//! Criterion bench for §III-E: the multi-GPU pipeline at 1, 2, and 4
//! simulated Tesla C2050s.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tc_core::count::GpuOptions;
use tc_core::gpu::multi::run_multi_gpu;
use tc_gen::suite::GraphSpec;
use tc_simt::DeviceConfig;

fn bench_multi_gpu(c: &mut Criterion) {
    let g = GraphSpec::Kronecker(2).generate(common::scale(), common::seed());
    let opts = GpuOptions::new(DeviceConfig::tesla_c2050().with_unlimited_memory());
    let mut group = c.benchmark_group("multi-gpu");
    group.sample_size(10);
    for devices in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(devices), &devices, |b, &d| {
            b.iter(|| run_multi_gpu(&g, &opts, d).unwrap().triangles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_gpu);
criterion_main!(benches);
