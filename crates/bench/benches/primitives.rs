//! Criterion bench for the building blocks: the two-pointer merge variants
//! (§III-D3, host-side) and the Thrust-substitute device primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tc_core::cpu::merge::{intersect_count, intersect_count_preliminary};
use tc_simt::primitives::{exclusive_scan_u32, reduce_sum_u64, sort_u64};
use tc_simt::{Device, DeviceConfig};

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    for len in [64usize, 1024, 16384] {
        let a: Vec<u32> = (0..len as u32).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..len as u32).map(|x| x * 3).collect();
        group.bench_with_input(BenchmarkId::new("final", len), &len, |bch, _| {
            bch.iter(|| intersect_count(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("preliminary", len), &len, |bch, _| {
            bch.iter(|| intersect_count_preliminary(&a, &b))
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("device-primitives");
    group.sample_size(10);
    let n = 100_000usize;
    group.bench_function("sort_u64", |b| {
        b.iter_with_setup(
            || {
                let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
                dev.preinit_context();
                let data: Vec<u64> = (0..n as u64).rev().collect();
                let buf = dev.htod_copy(&data).unwrap();
                (dev, buf)
            },
            |(mut dev, buf)| {
                sort_u64(&mut dev, &buf, n).unwrap();
                dev.elapsed()
            },
        )
    });
    group.bench_function("reduce_sum_u64", |b| {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        let data: Vec<u64> = (0..n as u64).collect();
        let buf = dev.htod_copy(&data).unwrap();
        b.iter(|| reduce_sum_u64(&mut dev, &buf))
    });
    group.bench_function("exclusive_scan_u32", |b| {
        let mut dev = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        dev.preinit_context();
        let data: Vec<u32> = vec![1; n];
        let buf = dev.htod_copy(&data).unwrap();
        b.iter(|| exclusive_scan_u32(&mut dev, &buf, n))
    });
    group.finish();
}

criterion_group!(benches, bench_merge, bench_primitives);
criterion_main!(benches);
