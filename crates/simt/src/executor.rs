//! Cycle-level SIMT execution: warps in lockstep, divergence serialization,
//! per-SM issue and memory pipelines, latency hiding across resident warps.
//!
//! ## Timing model
//!
//! Each SM owns two pipelines and a set of resident warps:
//!
//! * the **issue pipeline** starts `issue_width` instruction groups per
//!   cycle; a warp step whose lanes diverge into `g` distinct effect kinds
//!   occupies `g` issue slots (SIMT serialization);
//! * the **memory pipeline** starts `mem_txn_per_cycle` line transactions
//!   per cycle; a warp's loads are coalesced into line transactions first;
//! * a warp that issued a step may not issue again until the step's
//!   **latency** (worst transaction latency, or the compute latency) has
//!   elapsed — but *other* resident warps may issue meanwhile. That is the
//!   latency hiding that makes occupancy matter and is what the paper's
//!   §III-D5 warp-size experiment manipulates.
//!
//! SMs share nothing but DRAM: the per-SM texture cache is private and the
//! device L2 is address-sliced, so SMs simulate in parallel (tc-par scoped
//! threads) and the kernel's time is the slowest SM's cycle count — then
//! clamped from below by total DRAM traffic over peak DRAM bandwidth (a
//! bandwidth-saturation model).

use crate::arena::Arena;
use crate::cache::{Cache, CacheStats};
use crate::coalesce::coalesce_into;
use crate::config::DeviceConfig;
use crate::error::SimtError;
use crate::kernel::{Effect, Kernel, Lane, MemView};
use crate::verifier::Access;

/// Grid dimensions for a launch, in the paper's terms (§III-C): number of
/// blocks and threads per block. `warp_split` simulates the reduced-warp
/// trick of §III-D5: with split `s`, only `warp_size / s` lanes of each
/// warp do real work (the caller launches `s`× more blocks to compensate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    pub blocks: u32,
    pub threads_per_block: u32,
    pub warp_split: u32,
}

impl LaunchConfig {
    pub fn new(blocks: u32, threads_per_block: u32) -> Self {
        LaunchConfig {
            blocks,
            threads_per_block,
            warp_split: 1,
        }
    }

    /// Active (working) threads in the grid.
    pub fn active_threads(&self, warp_size: u32) -> usize {
        let warps = self.blocks as usize * (self.threads_per_block / warp_size) as usize;
        warps * (warp_size / self.warp_split) as usize
    }

    pub(crate) fn validate(&self, cfg: &DeviceConfig) -> Result<(), SimtError> {
        if self.blocks == 0 || self.threads_per_block == 0 {
            return Err(SimtError::BadLaunch {
                message: "zero blocks or threads",
            });
        }
        if !self.threads_per_block.is_multiple_of(cfg.warp_size) {
            return Err(SimtError::BadLaunch {
                message: "threads per block must be a multiple of the warp size",
            });
        }
        if self.warp_split == 0 || !cfg.warp_size.is_multiple_of(self.warp_split) {
            return Err(SimtError::BadLaunch {
                message: "warp split must divide the warp size",
            });
        }
        if self.threads_per_block > cfg.max_threads_per_sm {
            return Err(SimtError::BadLaunch {
                message: "block exceeds SM thread capacity",
            });
        }
        Ok(())
    }
}

/// A store buffered during simulation, committed after the kernel retires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingWrite {
    pub addr: u64,
    pub bytes: u32,
    pub value: u64,
}

/// Aggregated observable results of one kernel launch — the quantities
/// Table II reports, plus enough detail for the ablation benches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Slowest SM's pipeline time in cycles.
    pub sm_cycles: f64,
    /// Wall-clock seconds the launch took on the simulated device
    /// (pipeline time vs. DRAM-bandwidth bound, plus launch overhead).
    pub time_s: f64,
    /// Lane steps executed (≈ dynamic instruction count).
    pub lane_steps: u64,
    /// Warp scheduling events.
    pub warp_steps: u64,
    /// Warp steps whose lanes diverged into more than one effect group.
    pub divergent_steps: u64,
    /// Issue slots consumed (one per distinct effect kind per warp step).
    pub issue_groups: u64,
    /// Extra issue slots forced by divergence: Σ (groups − 1) over
    /// divergent warp steps — nvprof's "divergent serialization" analog.
    pub serialized_groups: u64,
    /// Cycles (summed over SMs) the issue pipeline sat idle waiting on
    /// memory/compute latency: `end_cycle − issue_groups / issue_width`.
    pub issue_stall_cycles: f64,
    /// Achieved occupancy: resident threads per SM over the SM's thread
    /// capacity (0..=1).
    pub occupancy: f64,
    /// Read-only (texture) cache statistics — Table II's "cache hit rate".
    pub tex: CacheStats,
    /// L2 slice statistics.
    pub l2: CacheStats,
    /// Line transactions issued to the memory pipeline.
    pub transactions: u64,
    /// Bytes that had to come from / go to DRAM
    /// (`dram_read_bytes + dram_write_bytes`).
    pub dram_bytes: u64,
    /// Bytes fetched from DRAM on cache misses.
    pub dram_read_bytes: u64,
    /// Bytes stored to DRAM (write-through stores).
    pub dram_write_bytes: u64,
    /// `dram_bytes / time_s` — Table II's "bandwidth" column.
    pub achieved_bandwidth_gbs: f64,
    /// On-chip shared-memory requests (hash-table probes and inserts that
    /// did not spill to global scratch).
    pub shared_accesses: u64,
    /// Replay cycles charged for shared-memory bank conflicts:
    /// Σ (conflict degree − 1) × `shared_latency` over warp steps.
    pub shared_conflict_cycles: f64,
}

/// Simulate a kernel launch against an arena snapshot. Returns the stats and
/// the buffered stores; the caller (the [`crate::Device`]) commits the
/// stores and advances the device clock.
pub fn simulate<K: Kernel>(
    cfg: &DeviceConfig,
    arena: &Arena,
    lc: LaunchConfig,
    kernel: &K,
) -> Result<(KernelStats, Vec<PendingWrite>), SimtError> {
    let (stats, writes, _) = simulate_traced(cfg, arena, lc, kernel, false)?;
    Ok((stats, writes))
}

/// [`simulate`], optionally recording every lane memory access for the
/// sanitizer. The access log is deterministic: per-SM streams are merged
/// in SM index order, and each SM's stream follows its (deterministic)
/// warp schedule. With `trace` off, no accesses are recorded and the
/// returned log is empty.
pub(crate) fn simulate_traced<K: Kernel>(
    cfg: &DeviceConfig,
    arena: &Arena,
    lc: LaunchConfig,
    kernel: &K,
    trace: bool,
) -> Result<(KernelStats, Vec<PendingWrite>, Vec<Access>), SimtError> {
    lc.validate(cfg)?;
    let warps_per_block = lc.threads_per_block / cfg.warp_size;
    let lanes_per_warp = (cfg.warp_size / lc.warp_split) as usize;
    let total_active = lc.active_threads(cfg.warp_size);
    let resident_blocks = cfg.resident_blocks(lc.threads_per_block);

    // Round-robin block → SM assignment.
    let num_sms = cfg.num_sms as usize;
    let mut sm_blocks: Vec<Vec<u32>> = vec![Vec::new(); num_sms];
    for b in 0..lc.blocks {
        sm_blocks[(b as usize) % num_sms].push(b);
    }

    let mem = MemView::new(arena.bytes());
    let results: Vec<SmResult> = tc_par::map_slice(&sm_blocks, |blocks| {
        simulate_sm(
            cfg,
            mem,
            kernel,
            blocks,
            warps_per_block,
            lanes_per_warp,
            total_active,
            resident_blocks as usize,
            trace,
        )
    });

    let mut stats = KernelStats::default();
    let mut writes = Vec::new();
    let mut accesses = Vec::new();
    for r in results {
        stats.sm_cycles = stats.sm_cycles.max(r.end_cycle);
        stats.lane_steps += r.lane_steps;
        stats.warp_steps += r.warp_steps;
        stats.divergent_steps += r.divergent_steps;
        stats.issue_groups += r.issue_groups;
        stats.serialized_groups += r.serialized_groups;
        stats.issue_stall_cycles +=
            (r.end_cycle - r.issue_groups as f64 / cfg.issue_width as f64).max(0.0);
        stats.transactions += r.transactions;
        stats.dram_read_bytes += r.dram_read_bytes;
        stats.dram_write_bytes += r.dram_write_bytes;
        stats.shared_accesses += r.shared_accesses;
        stats.shared_conflict_cycles += r.shared_conflict_cycles;
        stats.tex.merge(r.tex);
        stats.l2.merge(r.l2);
        writes.extend(r.writes);
        accesses.extend(r.accesses);
    }
    stats.dram_bytes = stats.dram_read_bytes + stats.dram_write_bytes;
    // Achieved occupancy of the resident set: blocks actually co-resident
    // on the busiest SM times block width, over SM thread capacity.
    let busiest = lc.blocks.div_ceil(cfg.num_sms);
    let co_resident = resident_blocks.min(busiest);
    stats.occupancy = (co_resident * lc.threads_per_block) as f64 / cfg.max_threads_per_sm as f64;
    let pipeline_time = stats.sm_cycles * cfg.cycle_seconds();
    let dram_time = stats.dram_bytes as f64 / (cfg.dram_bandwidth_gbs * 1e9);
    stats.time_s = pipeline_time.max(dram_time) + cfg.launch_overhead_us * 1e-6;
    stats.achieved_bandwidth_gbs = stats.dram_bytes as f64 / stats.time_s / 1e9;
    Ok((stats, writes, accesses))
}

struct SmResult {
    end_cycle: f64,
    lane_steps: u64,
    warp_steps: u64,
    divergent_steps: u64,
    issue_groups: u64,
    serialized_groups: u64,
    transactions: u64,
    dram_read_bytes: u64,
    dram_write_bytes: u64,
    shared_accesses: u64,
    shared_conflict_cycles: f64,
    tex: CacheStats,
    l2: CacheStats,
    writes: Vec<PendingWrite>,
    /// Lane-attributed access log (empty unless tracing).
    accesses: Vec<Access>,
}

struct WarpSim<L> {
    lanes: Vec<L>,
    active: Vec<bool>,
    live: usize,
    ready_at: f64,
    block_slot: usize,
    /// Global thread id of lane 0 of this warp (sanitizer attribution).
    tid_base: usize,
}

#[allow(clippy::too_many_arguments)]
fn simulate_sm<K: Kernel>(
    cfg: &DeviceConfig,
    mem: MemView<'_>,
    kernel: &K,
    blocks: &[u32],
    warps_per_block: u32,
    lanes_per_warp: usize,
    total_active: usize,
    resident_blocks: usize,
    trace: bool,
) -> SmResult {
    let mut tex = Cache::new(cfg.tex_cache_bytes, cfg.tex_cache_ways, cfg.line_bytes);
    let l2_slice = (cfg.l2_cache_bytes / cfg.num_sms).max(cfg.line_bytes * cfg.l2_cache_ways);
    let mut l2 = Cache::new(l2_slice, cfg.l2_cache_ways, cfg.line_bytes);

    let spawn_block = |block: u32, at: f64, slot: usize| -> Vec<WarpSim<K::Lane>> {
        (0..warps_per_block)
            .map(|w| {
                let global_warp = block as usize * warps_per_block as usize + w as usize;
                let lanes: Vec<K::Lane> = (0..lanes_per_warp)
                    .map(|l| kernel.spawn(global_warp * lanes_per_warp + l, total_active))
                    .collect();
                WarpSim {
                    active: vec![true; lanes.len()],
                    live: lanes.len(),
                    lanes,
                    ready_at: at,
                    block_slot: slot,
                    tid_base: global_warp * lanes_per_warp,
                }
            })
            .collect()
    };

    // Admit the initial resident set.
    let mut next_block = 0usize;
    let mut warps: Vec<WarpSim<K::Lane>> = Vec::new();
    let mut block_live_warps: Vec<u32> = Vec::new();
    while next_block < blocks.len() && block_live_warps.len() < resident_blocks {
        let slot = block_live_warps.len();
        warps.extend(spawn_block(blocks[next_block], 0.0, slot));
        block_live_warps.push(warps_per_block);
        next_block += 1;
    }

    let mut alu_clock = 0f64;
    let mut mem_clock = 0f64;
    let mut end_cycle = 0f64;
    let mut lane_steps = 0u64;
    let mut warp_steps = 0u64;
    let mut divergent_steps = 0u64;
    let mut issue_groups = 0u64;
    let mut serialized_groups = 0u64;
    let mut transactions = 0u64;
    let mut dram_read_bytes = 0u64;
    let mut dram_write_bytes = 0u64;
    let mut shared_accesses = 0u64;
    let mut shared_conflict_cycles = 0f64;
    let mut writes: Vec<PendingWrite> = Vec::new();
    let mut accesses: Vec<Access> = Vec::new();

    let mut effects: Vec<Effect> = Vec::with_capacity(lanes_per_warp);
    let mut reads_cached: Vec<(u64, u32)> = Vec::with_capacity(lanes_per_warp);
    let mut reads_uncached: Vec<(u64, u32)> = Vec::with_capacity(lanes_per_warp);
    let mut lines: Vec<u64> = Vec::with_capacity(lanes_per_warp * 2);
    let mut shared_words: Vec<u64> = Vec::with_capacity(lanes_per_warp * 4);
    let mut bank_counts: Vec<u32> = vec![0; cfg.shared_banks.max(1) as usize];

    loop {
        // Pick the ready warp with the earliest ready time (stable tie-break
        // on index keeps the simulation deterministic).
        let mut chosen: Option<usize> = None;
        for (i, w) in warps.iter().enumerate() {
            if w.live > 0 && chosen.is_none_or(|c| w.ready_at < warps[c].ready_at) {
                chosen = Some(i);
            }
        }
        let Some(wi) = chosen else {
            break; // every admitted warp retired, and admission is eager
        };

        let now = warps[wi].ready_at.max(alu_clock);
        warp_steps += 1;

        // Lockstep: step every active lane once.
        effects.clear();
        reads_cached.clear();
        reads_uncached.clear();
        shared_words.clear();
        let mut write_txns = 0u64;
        let mut compute_latency = 0u32;
        let mut kinds_seen = [false; 7];
        {
            let w = &mut warps[wi];
            for li in 0..w.lanes.len() {
                if !w.active[li] {
                    continue;
                }
                let eff = w.lanes[li].step(&mem);
                lane_steps += 1;
                kinds_seen[eff.kind() as usize] = true;
                match eff {
                    Effect::Read {
                        addr,
                        bytes,
                        cached,
                    } => {
                        if trace {
                            accesses.push(Access {
                                lane: (w.tid_base + li) as u32,
                                addr,
                                bytes,
                                write: false,
                                scratch: false,
                                spilled: false,
                            });
                        }
                        if cached {
                            reads_cached.push((addr, bytes));
                        } else {
                            reads_uncached.push((addr, bytes));
                        }
                    }
                    Effect::Write { addr, bytes, value } => {
                        if trace {
                            accesses.push(Access {
                                lane: (w.tid_base + li) as u32,
                                addr,
                                bytes,
                                write: true,
                                scratch: false,
                                spilled: false,
                            });
                        }
                        writes.push(PendingWrite { addr, bytes, value });
                        write_txns += 1;
                        dram_write_bytes += bytes as u64; // write-through
                    }
                    Effect::SharedRead {
                        addr,
                        bytes,
                        spilled,
                    } => {
                        if trace {
                            accesses.push(Access {
                                lane: (w.tid_base + li) as u32,
                                addr,
                                bytes,
                                write: false,
                                scratch: true,
                                spilled,
                            });
                        }
                        if spilled {
                            // Table overflowed shared memory: the chain walk
                            // reads global scratch through L2/DRAM.
                            reads_uncached.push((addr, bytes));
                        } else {
                            shared_accesses += 1;
                            push_shared_words(&mut shared_words, addr, bytes);
                        }
                    }
                    Effect::SharedWrite {
                        addr,
                        bytes,
                        value,
                        spilled,
                    } => {
                        if trace {
                            accesses.push(Access {
                                lane: (w.tid_base + li) as u32,
                                addr,
                                bytes,
                                write: true,
                                scratch: true,
                                spilled,
                            });
                        }
                        writes.push(PendingWrite { addr, bytes, value });
                        if spilled {
                            write_txns += 1;
                            dram_write_bytes += bytes as u64; // write-through
                        } else {
                            shared_accesses += 1;
                            push_shared_words(&mut shared_words, addr, bytes);
                        }
                    }
                    Effect::Compute { cycles } => {
                        compute_latency = compute_latency.max(cycles);
                    }
                    Effect::Done => {
                        w.active[li] = false;
                        w.live -= 1;
                    }
                }
            }
        }

        // Issue cost: one slot per distinct effect kind (Done issues nothing).
        let groups = kinds_seen[..6].iter().filter(|&&k| k).count() as u32;
        issue_groups += groups as u64;
        if groups > 1 {
            divergent_steps += 1;
            serialized_groups += (groups - 1) as u64;
        }
        alu_clock = now + groups as f64 / cfg.issue_width as f64;

        // Shared-memory cost: no cache or memory-pipeline traffic, just
        // load-to-use latency replayed once per serialized bank conflict.
        let mut latency = compute_latency as f64;
        if !shared_words.is_empty() {
            let degree = bank_conflict_degree(&mut shared_words, &mut bank_counts);
            latency = latency.max((degree as u64 * cfg.shared_latency as u64) as f64);
            shared_conflict_cycles +=
                ((degree.saturating_sub(1)) as u64 * cfg.shared_latency as u64) as f64;
        }

        // Memory cost: coalesce, probe caches, charge the memory pipeline.
        let mut txns = write_txns;
        if !reads_cached.is_empty() {
            coalesce_into(&reads_cached, cfg.line_bytes, &mut lines);
            txns += lines.len() as u64;
            for &line in &lines {
                let lat = if tex.access(line) {
                    cfg.tex_hit_latency
                } else if l2.access(line) {
                    cfg.l2_hit_latency
                } else {
                    dram_read_bytes += cfg.dram_fetch_bytes as u64;
                    cfg.dram_latency
                };
                latency = latency.max(lat as f64);
            }
        }
        if !reads_uncached.is_empty() {
            coalesce_into(&reads_uncached, cfg.line_bytes, &mut lines);
            txns += lines.len() as u64;
            for &line in &lines {
                let lat = if l2.access(line) {
                    cfg.l2_hit_latency
                } else {
                    dram_read_bytes += cfg.dram_fetch_bytes as u64;
                    cfg.dram_latency
                };
                latency = latency.max(lat as f64);
            }
        }
        transactions += txns;

        let mut completion = alu_clock;
        if txns > 0 {
            mem_clock = mem_clock.max(now) + txns as f64 / cfg.mem_txn_per_cycle;
            completion = completion.max(mem_clock);
        }
        completion += latency;
        end_cycle = end_cycle.max(completion);

        // Retire and admit.
        if warps[wi].live == 0 {
            let slot = warps[wi].block_slot;
            block_live_warps[slot] -= 1;
            if block_live_warps[slot] == 0 && next_block < blocks.len() {
                warps.extend(spawn_block(blocks[next_block], completion, slot));
                block_live_warps[slot] = warps_per_block;
                next_block += 1;
            }
        } else {
            warps[wi].ready_at = completion;
        }
    }

    SmResult {
        end_cycle: end_cycle.max(alu_clock).max(mem_clock),
        lane_steps,
        warp_steps,
        divergent_steps,
        issue_groups,
        serialized_groups,
        transactions,
        dram_read_bytes,
        dram_write_bytes,
        shared_accesses,
        shared_conflict_cycles,
        tex: tex.stats(),
        l2: l2.stats(),
        writes,
        accesses,
    }
}

/// Expand one shared access into the 4-byte words it touches. A multi-word
/// access models a linear chain walk over consecutive slots, so every slot
/// counts toward the warp's bank pressure.
fn push_shared_words(words: &mut Vec<u64>, addr: u64, bytes: u32) {
    let first = addr / 4;
    let last = (addr + bytes.max(1) as u64 - 1) / 4;
    words.extend(first..=last);
}

/// Worst per-bank count of *distinct* words across one warp step's shared
/// accesses — the number of serialized replays the step needs. Duplicate
/// words from different lanes broadcast for free.
fn bank_conflict_degree(words: &mut Vec<u64>, counts: &mut [u32]) -> u32 {
    words.sort_unstable();
    words.dedup();
    counts.iter_mut().for_each(|c| *c = 0);
    let banks = counts.len() as u64;
    let mut degree = 0u32;
    for &w in words.iter() {
        let b = (w % banks) as usize;
        counts[b] += 1;
        degree = degree.max(counts[b]);
    }
    degree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::DeviceBuffer;

    /// Kernel: each lane reads `input[tid]`, doubles it, writes `output[tid]`.
    struct DoubleKernel {
        input: DeviceBuffer<u32>,
        output: DeviceBuffer<u32>,
        n: usize,
    }

    enum DoubleState {
        Load,
        Store(u32),
        Finished,
    }

    struct DoubleLane {
        stride: usize,
        i: usize,
        n: usize,
        input: DeviceBuffer<u32>,
        output: DeviceBuffer<u32>,
        state: DoubleState,
        pending: u32,
    }

    impl Lane for DoubleLane {
        fn step(&mut self, mem: &MemView<'_>) -> Effect {
            match self.state {
                DoubleState::Load => {
                    if self.i >= self.n {
                        self.state = DoubleState::Finished;
                        return Effect::Done;
                    }
                    let addr = self.input.addr_of(self.i);
                    self.pending = mem.read_u32(addr);
                    self.state = DoubleState::Store(self.pending * 2);
                    Effect::Read {
                        addr,
                        bytes: 4,
                        cached: true,
                    }
                }
                DoubleState::Store(v) => {
                    let addr = self.output.addr_of(self.i);
                    self.i += self.stride;
                    self.state = DoubleState::Load;
                    Effect::Write {
                        addr,
                        bytes: 4,
                        value: v as u64,
                    }
                }
                DoubleState::Finished => Effect::Done,
            }
        }
    }

    impl Kernel for DoubleKernel {
        type Lane = DoubleLane;
        fn spawn(&self, tid: usize, total: usize) -> DoubleLane {
            DoubleLane {
                stride: total,
                i: tid,
                n: self.n,
                input: self.input,
                output: self.output,
                state: DoubleState::Load,
                pending: 0,
            }
        }
    }

    fn setup(n: usize) -> (DeviceConfig, Arena, DeviceBuffer<u32>, DeviceBuffer<u32>) {
        let cfg = DeviceConfig::gtx_980().with_unlimited_memory();
        let mut arena = Arena::new(u64::MAX);
        let in_addr = arena.alloc((n * 4) as u64).unwrap();
        let out_addr = arena.alloc((n * 4) as u64).unwrap();
        let input = DeviceBuffer::<u32>::new(in_addr, n);
        let output = DeviceBuffer::<u32>::new(out_addr, n);
        let data: Vec<u32> = (0..n as u32).collect();
        arena.write_slice(&input, &data);
        (cfg, arena, input, output)
    }

    fn run_double(n: usize, lc: LaunchConfig) -> (KernelStats, Vec<u32>) {
        let (cfg, mut arena, input, output) = setup(n);
        let kernel = DoubleKernel { input, output, n };
        let (stats, writes) = simulate(&cfg, &arena, lc, &kernel).unwrap();
        for w in writes {
            let i = ((w.addr - output.addr()) / 4) as usize;
            arena.write_at(&output, i, w.value as u32);
        }
        (stats, arena.read_slice(&output))
    }

    #[test]
    fn functional_result_is_exact() {
        let (stats, out) = run_double(1000, LaunchConfig::new(8, 64));
        assert_eq!(out, (0..1000u32).map(|x| x * 2).collect::<Vec<_>>());
        assert!(stats.lane_steps >= 2000, "{}", stats.lane_steps);
        assert!(stats.time_s > 0.0);
        assert!(stats.sm_cycles > 0.0);
    }

    #[test]
    fn grid_stride_handles_more_threads_than_work() {
        let (_, out) = run_double(10, LaunchConfig::new(64, 256));
        assert_eq!(out, (0..10u32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn coalesced_streaming_kernel_has_few_transactions_and_no_reuse() {
        let (stats, _) = run_double(100_000, LaunchConfig::new(128, 64));
        // Consecutive lanes read consecutive words, so a warp's 32 loads
        // coalesce into 4 line transactions — but a pure streaming sweep
        // never revisits a line, so the cache hit rate is ~0. (High hit
        // rates come from *walk* patterns; see the counting-kernel tests in
        // tc-core.)
        assert!(
            stats.tex.hit_rate() < 0.05,
            "hit rate {}",
            stats.tex.hit_rate()
        );
        let loads = stats.tex.accesses;
        // ~1/8 of the per-lane u32 loads become transactions.
        assert!(
            loads as f64 <= 0.15 * stats.lane_steps as f64,
            "{loads} transactions for {} lane steps",
            stats.lane_steps
        );
        assert!(stats.dram_bytes > 0);
        assert!(stats.achieved_bandwidth_gbs > 0.0);
    }

    #[test]
    fn stats_are_deterministic() {
        let (a, _) = run_double(5000, LaunchConfig::new(32, 64));
        let (b, _) = run_double(5000, LaunchConfig::new(32, 64));
        assert_eq!(a.sm_cycles, b.sm_cycles);
        assert_eq!(a.dram_bytes, b.dram_bytes);
        assert_eq!(a.tex, b.tex);
    }

    #[test]
    fn more_blocks_spread_work() {
        // Same total work on 1 block vs 128 blocks: the wide launch must be
        // far faster in simulated cycles.
        let (narrow, _) = run_double(100_000, LaunchConfig::new(1, 64));
        let (wide, _) = run_double(100_000, LaunchConfig::new(128, 64));
        assert!(
            narrow.sm_cycles > 4.0 * wide.sm_cycles,
            "narrow {} vs wide {}",
            narrow.sm_cycles,
            wide.sm_cycles
        );
    }

    #[test]
    fn warp_split_halves_active_lanes() {
        let lc = LaunchConfig {
            blocks: 8,
            threads_per_block: 64,
            warp_split: 2,
        };
        let cfg = DeviceConfig::gtx_980();
        assert_eq!(lc.active_threads(cfg.warp_size), 8 * 2 * 16);
        let (_, out) = run_double(777, lc);
        assert_eq!(out, (0..777u32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn bad_launches_are_rejected() {
        let cfg = DeviceConfig::gtx_980();
        let arena = Arena::new(1024);
        let kernel = DoubleKernel {
            input: DeviceBuffer::new(0, 0),
            output: DeviceBuffer::new(0, 0),
            n: 0,
        };
        for lc in [
            LaunchConfig::new(0, 64),
            LaunchConfig::new(8, 48),
            LaunchConfig {
                blocks: 8,
                threads_per_block: 64,
                warp_split: 5,
            },
            LaunchConfig::new(1, 4096),
        ] {
            assert!(simulate(&cfg, &arena, lc, &kernel).is_err(), "{lc:?}");
        }
    }

    #[test]
    fn latency_hiding_occupancy_helps() {
        // Same work split over 1 warp/block vs 8 warps/block on a single
        // block-slot-limited device: more resident warps hide memory
        // latency, so 64 blocks x 64 threads should beat 256 blocks x 32
        // threads... Simplest robust comparison: one block of 32 vs one
        // block of 512 threads covering the same array; per-thread work
        // shrinks 16x but cycles must shrink far less than 16x without
        // latency hiding — assert they shrink at least 4x (hiding works).
        let (cfg, arena, input, output) = setup(65536);
        let kernel = DoubleKernel {
            input,
            output,
            n: 65536,
        };
        let (narrow, _) = simulate(&cfg, &arena, LaunchConfig::new(1, 32), &kernel).unwrap();
        let (wide, _) = simulate(&cfg, &arena, LaunchConfig::new(1, 512), &kernel).unwrap();
        assert!(
            wide.sm_cycles * 4.0 < narrow.sm_cycles,
            "wide {} vs narrow {}",
            wide.sm_cycles,
            narrow.sm_cycles
        );
    }

    #[test]
    fn divergence_is_detected_and_serialized() {
        /// Lanes alternate: even lanes compute, odd lanes read — permanent
        /// two-way divergence.
        struct DivergentKernel {
            input: DeviceBuffer<u32>,
        }
        struct DivergentLane {
            even: bool,
            remaining: u32,
            addr: u64,
        }
        impl Lane for DivergentLane {
            fn step(&mut self, _mem: &MemView<'_>) -> Effect {
                if self.remaining == 0 {
                    return Effect::Done;
                }
                self.remaining -= 1;
                if self.even {
                    Effect::Compute { cycles: 2 }
                } else {
                    Effect::Read {
                        addr: self.addr,
                        bytes: 4,
                        cached: true,
                    }
                }
            }
        }
        impl Kernel for DivergentKernel {
            type Lane = DivergentLane;
            fn spawn(&self, tid: usize, _total: usize) -> DivergentLane {
                DivergentLane {
                    even: tid.is_multiple_of(2),
                    remaining: 16,
                    addr: self.input.addr_of(tid % self.input.len()),
                }
            }
        }
        let (cfg, arena, input, _) = setup(1024);
        let kernel = DivergentKernel { input };
        let (stats, _) = simulate(&cfg, &arena, LaunchConfig::new(2, 64), &kernel).unwrap();
        // Every working step has two effect groups.
        assert!(
            stats.divergent_steps as f64 > 0.8 * stats.warp_steps as f64,
            "{} divergent of {}",
            stats.divergent_steps,
            stats.warp_steps
        );
    }

    #[test]
    fn uniform_kernel_does_not_diverge() {
        let (cfg, arena, input, output) = setup(4096);
        let kernel = DoubleKernel {
            input,
            output,
            n: 4096,
        };
        let (stats, _) = simulate(&cfg, &arena, LaunchConfig::new(8, 64), &kernel).unwrap();
        // Lanes stay in lockstep through identical phases; divergence only
        // appears at the ragged tail when some lanes run out of work.
        assert!(
            (stats.divergent_steps as f64) < 0.2 * stats.warp_steps as f64,
            "{} divergent of {}",
            stats.divergent_steps,
            stats.warp_steps
        );
    }

    #[test]
    fn shared_accesses_charge_bank_conflicts_not_dram() {
        /// Every lane issues `reps` shared reads: either all to distinct
        /// banks (word stride 1) or all to one bank (word stride = bank
        /// count), the textbook 32-way conflict.
        struct SharedKernel {
            base: u64,
            word_stride: u64,
        }
        struct SharedLane {
            addr: u64,
            left: u32,
        }
        impl Lane for SharedLane {
            fn step(&mut self, _mem: &MemView<'_>) -> Effect {
                if self.left == 0 {
                    return Effect::Done;
                }
                self.left -= 1;
                Effect::SharedRead {
                    addr: self.addr,
                    bytes: 4,
                    spilled: false,
                }
            }
        }
        impl Kernel for SharedKernel {
            type Lane = SharedLane;
            fn spawn(&self, tid: usize, _total: usize) -> SharedLane {
                SharedLane {
                    addr: self.base + tid as u64 * self.word_stride * 4,
                    left: 64,
                }
            }
        }
        let (cfg, arena, input, _) = setup(64 * 1024);
        let lc = LaunchConfig::new(1, 32);
        let run = |word_stride| {
            let kernel = SharedKernel {
                base: input.addr(),
                word_stride,
            };
            simulate(&cfg, &arena, lc, &kernel).unwrap().0
        };
        let clean = run(1);
        let conflicted = run(cfg.shared_banks as u64);
        // Shared traffic never touches caches, DRAM, or the mem pipeline.
        for s in [&clean, &conflicted] {
            assert_eq!(s.transactions, 0);
            assert_eq!(s.dram_bytes, 0);
            assert_eq!(s.tex.accesses, 0);
            assert_eq!(s.shared_accesses, 64 * 32);
        }
        assert_eq!(clean.shared_conflict_cycles, 0.0);
        assert!(conflicted.shared_conflict_cycles > 0.0);
        assert!(
            conflicted.sm_cycles > 4.0 * clean.sm_cycles,
            "conflicted {} vs clean {}",
            conflicted.sm_cycles,
            clean.sm_cycles
        );
    }

    #[test]
    fn zero_work_kernel_costs_only_overhead() {
        let (cfg, arena, input, output) = setup(0);
        let kernel = DoubleKernel {
            input,
            output,
            n: 0,
        };
        let (stats, writes) = simulate(&cfg, &arena, LaunchConfig::new(8, 64), &kernel).unwrap();
        assert!(writes.is_empty());
        assert_eq!(stats.dram_bytes, 0);
        assert!(stats.time_s >= cfg.launch_overhead_us * 1e-6);
    }
}
