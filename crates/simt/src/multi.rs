//! Multi-device groups (paper §III-E).
//!
//! The paper's multi-GPU scheme: preprocess on one device, copy the edge
//! and node arrays to the rest, let each device count its stripe of edges,
//! and sum. [`DeviceGroup`] provides the device collection and the
//! broadcast; the orchestration lives in `tc-core::gpu::multi`.

use crate::arena::{DeviceBuffer, DeviceScalar};
use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::SimtError;

/// A set of simulated devices on one host.
#[derive(Debug)]
pub struct DeviceGroup {
    devices: Vec<Device>,
}

impl DeviceGroup {
    /// `count` identical devices.
    pub fn homogeneous(cfg: &DeviceConfig, count: usize) -> Self {
        assert!(count >= 1);
        DeviceGroup {
            devices: (0..count).map(|_| Device::new(cfg.clone())).collect(),
        }
    }

    pub fn heterogeneous(cfgs: Vec<DeviceConfig>) -> Self {
        assert!(!cfgs.is_empty());
        DeviceGroup {
            devices: cfgs.into_iter().map(Device::new).collect(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    #[inline]
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    #[inline]
    pub fn device_mut(&mut self, i: usize) -> &mut Device {
        &mut self.devices[i]
    }

    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Pre-create every context (done before the measured window, like the
    /// paper's `cudaFree(NULL)`).
    pub fn preinit_all(&mut self) {
        for d in &mut self.devices {
            d.preinit_context();
        }
    }

    pub fn reset_clocks(&mut self) {
        for d in &mut self.devices {
            d.reset_clock();
        }
    }

    /// Copy `buf` on device `from` to every other device. Returns one buffer
    /// handle per device (`result[from]` is the original). Transfers to
    /// distinct devices ride distinct PCIe links, so each target is charged
    /// its own copy time; the group-level wall clock is the max of the
    /// per-device clocks.
    pub fn broadcast<T: DeviceScalar>(
        &mut self,
        from: usize,
        buf: &DeviceBuffer<T>,
    ) -> Result<Vec<DeviceBuffer<T>>, SimtError> {
        let data = self.devices[from].peek(buf);
        let mut out = Vec::with_capacity(self.devices.len());
        for (i, dev) in self.devices.iter_mut().enumerate() {
            if i == from {
                out.push(*buf);
            } else {
                out.push(dev.htod_copy(&data)?);
            }
        }
        Ok(out)
    }

    /// The group's wall-clock: the slowest device.
    pub fn elapsed_max(&self) -> f64 {
        self.devices.iter().map(Device::elapsed).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_replicates_data() {
        let mut group =
            DeviceGroup::homogeneous(&DeviceConfig::tesla_c2050().with_unlimited_memory(), 4);
        group.preinit_all();
        group.reset_clocks();
        let data: Vec<u32> = (0..256).collect();
        let src = group.device_mut(0).htod_copy(&data).unwrap();
        let bufs = group.broadcast(0, &src).unwrap();
        assert_eq!(bufs.len(), 4);
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(group.device(i).peek(b), data, "device {i}");
        }
        // Targets were charged copy time; the source only its own upload.
        assert!(group.device(1).elapsed() > 0.0);
        assert!(group.elapsed_max() >= group.device(0).elapsed());
    }

    #[test]
    fn heterogeneous_groups() {
        let group =
            DeviceGroup::heterogeneous(vec![DeviceConfig::gtx_980(), DeviceConfig::tesla_c2050()]);
        assert_eq!(group.len(), 2);
        assert_eq!(group.device(0).config().name, "GTX 980");
        assert_eq!(group.device(1).config().name, "Tesla C2050");
    }

    #[test]
    fn broadcast_propagates_oom() {
        let tiny = DeviceConfig::tesla_c2050().with_memory_capacity(64);
        let roomy = DeviceConfig::tesla_c2050().with_unlimited_memory();
        let mut group = DeviceGroup::heterogeneous(vec![roomy, tiny]);
        group.preinit_all();
        let data: Vec<u32> = (0..256).collect();
        let src = group.device_mut(0).htod_copy(&data).unwrap();
        assert!(matches!(
            group.broadcast(0, &src),
            Err(SimtError::OutOfMemory { .. })
        ));
    }
}
