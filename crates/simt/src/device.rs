//! The simulated device: arena + clock + launch front-end.
//!
//! A [`Device`] owns its memory arena and a simulated wall clock. Every
//! operation — context creation, host↔device copies, primitive calls,
//! kernel launches — advances the clock by the modeled cost and appends to
//! a time log, which is how the end-to-end pipeline reproduces the paper's
//! measurement protocol ("we started each measurement just before the edge
//! array is copied … finished right after the final result was copied back
//! and the GPU memory was freed", §IV).

use crate::arena::{Arena, DeviceBuffer, DeviceScalar};
use crate::config::DeviceConfig;
use crate::error::SimtError;
use crate::executor::{simulate, simulate_traced, KernelStats, LaunchConfig};
use crate::kernel::Kernel;
use crate::profiler::{Counters, OpenSpan, ProfileReport, Span};
use crate::sanitizer::{check_launch, Finding, Lint, SanitizerMode, SanitizerReport};
use crate::verifier::{self, Interval, VerifierFinding, VerifierReport};

/// One entry of the device time log.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedOp {
    pub label: String,
    /// Device-clock start of the op, seconds (real timestamp, so traces
    /// and spans nest correctly).
    pub start_s: f64,
    pub seconds: f64,
}

impl TimedOp {
    /// Convenience constructor for tests and synthetic logs: an op that
    /// starts at `start_s` and lasts `seconds`.
    pub fn new(label: impl Into<String>, start_s: f64, seconds: f64) -> Self {
        TimedOp {
            label: label.into(),
            start_s,
            seconds,
        }
    }

    #[inline]
    pub fn end_s(&self) -> f64 {
        self.start_s + self.seconds
    }
}

/// A simulated GPU.
///
/// ```
/// use tc_simt::{Device, DeviceConfig};
/// let mut dev = Device::new(DeviceConfig::gtx_980());
/// dev.preinit_context();           // the paper's cudaFree(NULL) trick
/// dev.reset_clock();
/// let buf = dev.htod_copy(&[1u32, 2, 3]).unwrap();
/// assert_eq!(dev.dtoh(&buf), vec![1, 2, 3]);
/// assert!(dev.elapsed() > 0.0);    // PCIe transfers cost simulated time
/// ```
#[derive(Debug)]
pub struct Device {
    cfg: DeviceConfig,
    arena: Arena,
    now_s: f64,
    context_ready: bool,
    log: Vec<TimedOp>,
    counters: Counters,
    span_stack: Vec<OpenSpan>,
    spans: Vec<Span>,
    findings: Vec<Finding>,
    lints: Vec<Lint>,
    /// Static launch verifier on/off (host-side only — never charges
    /// modeled time).
    verifier: bool,
    vfindings: Vec<VerifierFinding>,
    launches_checked: u64,
    launches_proven: u64,
    racechecks_skipped: u64,
    passes_checked: u64,
}

impl Device {
    pub fn new(cfg: DeviceConfig) -> Self {
        let mut arena = Arena::new(cfg.memory_capacity);
        arena.set_sanitizer(cfg.sanitizer);
        Device {
            verifier: cfg.verifier,
            cfg,
            arena,
            now_s: 0.0,
            context_ready: false,
            log: Vec::new(),
            counters: Counters::default(),
            span_stack: Vec::new(),
            spans: Vec::new(),
            findings: Vec::new(),
            lints: Vec::new(),
            vfindings: Vec::new(),
            launches_checked: 0,
            launches_proven: 0,
            racechecks_skipped: 0,
            passes_checked: 0,
        }
    }

    /// Switch the sanitizer on or off for this device's next session.
    /// Installing a shadow adopts live allocations (contents treated as
    /// initialized); any previously accumulated findings and lints are
    /// discarded either way.
    pub fn set_sanitizer_mode(&mut self, mode: SanitizerMode) {
        self.arena.set_sanitizer(mode);
        self.findings.clear();
        self.lints.clear();
    }

    /// The sanitizer mode currently active on this device.
    #[inline]
    pub fn sanitizer_mode(&self) -> SanitizerMode {
        self.arena.sanitizer_mode()
    }

    /// Switch the static launch verifier on or off. Any accumulated
    /// verifier findings and counters are discarded either way. The
    /// verifier is purely host-side: it never charges modeled time.
    pub fn set_verifier(&mut self, on: bool) {
        self.verifier = on;
        self.vfindings.clear();
        self.launches_checked = 0;
        self.launches_proven = 0;
        self.racechecks_skipped = 0;
        self.passes_checked = 0;
    }

    /// Whether the static launch verifier is currently active.
    #[inline]
    pub fn verifier_enabled(&self) -> bool {
        self.verifier
    }

    /// Snapshot the static verifier's report so far. `None` when the
    /// verifier is off.
    pub fn verifier_report(&self) -> Option<VerifierReport> {
        if !self.verifier {
            return None;
        }
        Some(VerifierReport {
            device: self.cfg.name.to_string(),
            launches_checked: self.launches_checked,
            launches_proven: self.launches_proven,
            racechecks_skipped: self.racechecks_skipped,
            passes_checked: self.passes_checked,
            findings: self.vfindings.clone(),
        })
    }

    /// Statically check an analytic host pass (the primitives family peeks,
    /// computes on the host, and pokes results back) against the live
    /// allocation map. Declared read intervals tolerate the arena's guard
    /// bytes; write intervals do not. Infallible: findings are recorded in
    /// the verifier report rather than failing the pass, because analytic
    /// passes have already modeled their cost when this runs. No-op when
    /// the verifier is off.
    pub fn verify_pass(&mut self, label: &str, reads: &[Interval], writes: &[Interval]) {
        if !self.verifier {
            return;
        }
        self.passes_checked += 1;
        let phase = self.current_phase();
        self.vfindings.extend(verifier::check_host_pass(
            &self.arena,
            label,
            &phase,
            reads,
            writes,
        ));
    }

    /// Snapshot the sanitizer's findings and lints so far. `None` when the
    /// sanitizer is off. Violations recorded by untimed host reads
    /// ([`Device::peek`]) that no timed op has attributed yet are included
    /// under the op label `"host"`.
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        let mode = self.arena.sanitizer_mode();
        if !mode.is_on() {
            return None;
        }
        let mut findings = self.findings.clone();
        let phase = self.current_phase();
        findings.extend(
            self.arena
                .pending_violations()
                .into_iter()
                .map(|r| r.into_finding("host", &phase)),
        );
        Some(SanitizerReport {
            mode,
            device: self.cfg.name.to_string(),
            findings,
            lints: self.lints.clone(),
        })
    }

    fn current_phase(&self) -> String {
        self.span_stack
            .last()
            .map(|s| s.path.clone())
            .unwrap_or_default()
    }

    /// Attribute raw violations queued by host-side arena ops to the op
    /// label that produced them and the currently open phase.
    fn drain_violations(&mut self, label: &str) {
        if self.arena.sanitizer_mode().is_on() {
            let raws = self.arena.take_violations();
            if !raws.is_empty() {
                let phase = self.current_phase();
                self.findings
                    .extend(raws.into_iter().map(|r| r.into_finding(label, &phase)));
            }
        }
    }

    #[inline]
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Simulated seconds elapsed since construction or the last
    /// [`Device::reset_clock`].
    #[inline]
    pub fn elapsed(&self) -> f64 {
        self.now_s
    }

    /// Zero the clock, the time log, the counters, and the recorded spans
    /// (the paper resets its stopwatch after pre-initializing the context).
    pub fn reset_clock(&mut self) {
        self.now_s = 0.0;
        self.log.clear();
        self.counters = Counters::default();
        self.span_stack.clear();
        self.spans.clear();
    }

    /// Prepare a (warm) device for a fresh measured session: zero the clock
    /// and profiler state like [`Device::reset_clock`], and — when no
    /// allocations are live — rewind the arena so the session allocates the
    /// same addresses a cold device would. The context stays warm, which is
    /// the point of recycling. Returns whether the arena rewind happened.
    pub fn recycle(&mut self) -> bool {
        self.reset_clock();
        self.arena.reset_unused()
    }

    /// The operations charged so far.
    pub fn time_log(&self) -> &[TimedOp] {
        &self.log
    }

    /// Whole-run hardware-counter totals since the last reset.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Closed profiling spans, in completion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Open a named profiling phase. Phases nest: a push while another
    /// phase is open records a child span whose path is
    /// `"parent/child"`. Every charged op between push and pop — copies,
    /// primitive passes, kernel launches — is attributed to the phase via
    /// counter snapshot-and-delta.
    pub fn push_phase(&mut self, name: &str) {
        let path = match self.span_stack.last() {
            Some(parent) => format!("{}/{}", parent.path, name),
            None => name.to_string(),
        };
        self.span_stack.push(OpenSpan {
            path,
            depth: self.span_stack.len(),
            start_s: self.now_s,
            first_op: self.log.len(),
            snapshot: self.counters,
        });
    }

    /// Close the innermost open phase, recording its [`Span`].
    ///
    /// # Panics
    /// Panics if no phase is open (push/pop mismatch is a programming
    /// error in the pipeline, not a runtime condition).
    pub fn pop_phase(&mut self) {
        let open = self.span_stack.pop().expect("pop_phase with no open phase");
        self.spans.push(Span {
            path: open.path,
            depth: open.depth,
            start_s: open.start_s,
            end_s: self.now_s,
            first_op: open.first_op,
            end_op: self.log.len(),
            counters: self.counters.delta(&open.snapshot),
        });
    }

    /// Run `f` inside a named phase (push/pop bracketed even on early
    /// return of a value).
    pub fn with_phase<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_phase(name);
        let out = f(self);
        self.pop_phase();
        out
    }

    /// Snapshot the run so far as a [`ProfileReport`].
    pub fn profile(&self) -> ProfileReport {
        ProfileReport {
            device: self.cfg.name.to_string(),
            peak_bandwidth_gbs: self.cfg.dram_bandwidth_gbs,
            devices: 1,
            total_s: self.now_s,
            totals: self.counters,
            spans: self.spans.clone(),
        }
    }

    /// Pre-create the CUDA context (the paper's `cudaFree(NULL)` trick):
    /// pays the ~100 ms once, so the first real allocation doesn't.
    pub fn preinit_context(&mut self) {
        if !self.context_ready {
            let cost = self.cfg.context_init_ms * 1e-3;
            self.advance("context-init", cost);
            self.context_ready = true;
        }
    }

    fn ensure_context(&mut self) {
        if !self.context_ready {
            let cost = self.cfg.context_init_ms * 1e-3;
            self.advance("context-init (lazy, first malloc)", cost);
            self.context_ready = true;
        }
    }

    pub(crate) fn advance(&mut self, label: &str, seconds: f64) {
        self.drain_violations(label);
        self.log.push(TimedOp {
            label: label.to_string(),
            start_s: self.now_s,
            seconds,
        });
        self.now_s += seconds;
    }

    /// Charge an analytic streaming pass and attribute its counters
    /// (used by the Thrust-style primitives).
    pub(crate) fn charge_stream_pass(
        &mut self,
        label: &str,
        seconds: f64,
        read_bytes: u64,
        write_bytes: u64,
    ) {
        self.counters
            .absorb_stream_pass(seconds, read_bytes, write_bytes, self.cfg.line_bytes);
        self.advance(label, seconds);
    }

    /// Allocate a typed device buffer (`cudaMalloc`).
    pub fn alloc<T: DeviceScalar>(&mut self, len: usize) -> Result<DeviceBuffer<T>, SimtError> {
        self.ensure_context();
        let addr = self.arena.alloc((len * T::BYTES) as u64)?;
        Ok(DeviceBuffer::new(addr, len))
    }

    /// Free a buffer (`cudaFree`).
    pub fn free<T: DeviceScalar>(&mut self, buf: DeviceBuffer<T>) -> Result<(), SimtError> {
        let out = self.arena.free(buf.addr());
        self.drain_violations("free");
        out
    }

    /// Allocate and fill from host data, charging the PCIe transfer.
    pub fn htod_copy<T: DeviceScalar>(&mut self, src: &[T]) -> Result<DeviceBuffer<T>, SimtError> {
        let buf = self.alloc::<T>(src.len())?;
        self.htod_write(&buf, src)?;
        Ok(buf)
    }

    /// Overwrite an existing buffer from host data, charging PCIe time.
    pub fn htod_write<T: DeviceScalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        src: &[T],
    ) -> Result<(), SimtError> {
        if src.len() != buf.len() {
            return Err(SimtError::LengthMismatch {
                expected: buf.len(),
                got: src.len(),
            });
        }
        self.arena.write_slice(buf, src);
        let secs = buf.byte_len() as f64 / (self.cfg.pcie_bandwidth_gbs * 1e9);
        self.counters.htod_bytes += buf.byte_len();
        self.advance("htod", secs);
        Ok(())
    }

    /// Copy a buffer back to the host, charging PCIe time.
    pub fn dtoh<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let out = self.arena.read_slice(buf);
        let secs = buf.byte_len() as f64 / (self.cfg.pcie_bandwidth_gbs * 1e9);
        self.counters.dtoh_bytes += buf.byte_len();
        self.advance("dtoh", secs);
        out
    }

    /// Host-side debug read without timing (not part of the measured
    /// protocol; tests use it to inspect device state).
    pub fn peek<T: DeviceScalar>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        self.arena.read_slice(buf)
    }

    /// Host-side debug write without timing.
    pub fn poke<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, src: &[T]) {
        self.arena.write_slice(buf, src);
        self.drain_violations("poke");
    }

    /// Launch a kernel under cycle simulation; commits its stores and
    /// advances the clock by the simulated kernel time. With the sanitizer
    /// on, the launch's lane accesses are recorded and checked (memcheck,
    /// initcheck, racecheck, access-pattern lints) before the stores
    /// commit; stores the shadow rejects are skipped so the run survives
    /// to report them.
    pub fn launch<K: Kernel>(
        &mut self,
        label: &str,
        lc: LaunchConfig,
        kernel: &K,
    ) -> Result<KernelStats, SimtError> {
        self.ensure_context();
        // Pre-launch static verification: prove the declared footprint
        // in-bounds and race-free against the live allocation map before
        // any lane runs. Host-side only — charges no modeled time.
        let mut contract = None;
        let mut proven_race_free = false;
        if self.verifier {
            let total = lc.active_threads(self.cfg.warp_size);
            contract = kernel.contract(lc, total);
            let phase = self.current_phase();
            let check = verifier::check_launch_static(
                contract.as_ref(),
                lc,
                &self.cfg,
                &self.arena,
                label,
                &phase,
            );
            self.launches_checked += 1;
            if !check.findings.is_empty() {
                let n = check.findings.len();
                self.vfindings.extend(check.findings);
                return Err(SimtError::VerifierRejected { findings: n });
            }
            proven_race_free = check.race_free;
            if proven_race_free {
                self.launches_proven += 1;
            }
        }
        if self.arena.sanitizer_mode().is_on() {
            let (stats, writes, accesses) =
                simulate_traced(&self.cfg, &self.arena, lc, kernel, true)?;
            let phase = self.current_phase();
            // A statically proven launch needs no dynamic race sweep in
            // Check mode; Paranoid still sweeps (and cross-validates the
            // contract against the observed trace below).
            let skip_racecheck =
                proven_race_free && self.arena.sanitizer_mode() == SanitizerMode::Check;
            if skip_racecheck {
                self.racechecks_skipped += 1;
            }
            let (findings, lints) = check_launch(
                self.arena.shadow().expect("sanitizer is on"),
                &accesses,
                &stats,
                label,
                &phase,
                skip_racecheck,
            );
            self.findings.extend(findings);
            self.lints.extend(lints);
            if self.verifier && self.arena.sanitizer_mode() >= SanitizerMode::Paranoid {
                if let Some(c) = contract.as_ref() {
                    let total = lc.active_threads(self.cfg.warp_size);
                    self.vfindings.extend(verifier::check_trace_containment(
                        c, &accesses, lc, total, label, &phase,
                    ));
                }
            }
            for w in writes {
                self.arena.commit_store(w.addr, w.bytes, w.value);
            }
            self.counters.absorb_kernel(&stats);
            self.advance(label, stats.time_s);
            return Ok(stats);
        }
        let (stats, writes) = simulate(&self.cfg, &self.arena, lc, kernel)?;
        for w in writes {
            self.arena.commit_store(w.addr, w.bytes, w.value);
        }
        self.counters.absorb_kernel(&stats);
        self.advance(label, stats.time_s);
        Ok(stats)
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> u64 {
        self.arena.used()
    }

    /// Peak allocation high-water mark.
    pub fn mem_peak(&self) -> u64 {
        self.arena.peak()
    }

    pub fn mem_capacity(&self) -> u64 {
        self.arena.capacity()
    }

    /// Would `bytes` more fit right now? (§III-D6 capacity planning.)
    pub fn fits(&self, bytes: u64) -> bool {
        self.arena.fits(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_roundtrip_and_charge_time() {
        let mut dev = Device::new(DeviceConfig::gtx_980());
        dev.preinit_context();
        dev.reset_clock();
        let data: Vec<u32> = (0..1000).collect();
        let buf = dev.htod_copy(&data).unwrap();
        let t_after_up = dev.elapsed();
        assert!(t_after_up > 0.0);
        let back = dev.dtoh(&buf);
        assert_eq!(back, data);
        assert!(dev.elapsed() > t_after_up);
        assert_eq!(dev.time_log().len(), 2);
    }

    #[test]
    fn lazy_context_init_charges_100ms_once() {
        let mut dev = Device::new(DeviceConfig::gtx_980());
        let _ = dev.alloc::<u32>(16).unwrap();
        assert!(dev.elapsed() >= 0.1, "first malloc must pay context init");
        let t = dev.elapsed();
        let _ = dev.alloc::<u32>(16).unwrap();
        assert_eq!(dev.elapsed(), t, "second malloc is free of context cost");
    }

    #[test]
    fn preinit_moves_cost_out_of_the_measured_window() {
        let mut dev = Device::new(DeviceConfig::gtx_980());
        dev.preinit_context();
        dev.reset_clock();
        let _ = dev.alloc::<u32>(16).unwrap();
        assert!(dev.elapsed() < 1e-3);
    }

    #[test]
    fn capacity_is_enforced() {
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(1024);
        let mut dev = Device::new(cfg);
        assert!(dev.alloc::<u32>(200).is_ok());
        assert!(matches!(
            dev.alloc::<u32>(200),
            Err(SimtError::OutOfMemory { .. })
        ));
        assert!(dev.fits(100));
        assert!(!dev.fits(1000));
    }

    #[test]
    fn free_returns_budget() {
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(1024);
        let mut dev = Device::new(cfg);
        let b = dev.alloc::<u32>(200).unwrap();
        dev.free(b).unwrap();
        assert!(dev.alloc::<u32>(200).is_ok());
        assert_eq!(dev.mem_peak(), 800);
    }

    #[test]
    fn mismatched_write_is_rejected() {
        let mut dev = Device::new(DeviceConfig::gtx_980());
        let buf = dev.alloc::<u32>(4).unwrap();
        assert!(matches!(
            dev.htod_write(&buf, &[1, 2, 3]),
            Err(SimtError::LengthMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn peek_and_poke_do_not_advance_clock() {
        let mut dev = Device::new(DeviceConfig::gtx_980());
        dev.preinit_context();
        dev.reset_clock();
        let buf = dev.alloc::<u32>(4).unwrap();
        dev.poke(&buf, &[9, 8, 7, 6]);
        assert_eq!(dev.peek(&buf), vec![9, 8, 7, 6]);
        assert_eq!(dev.elapsed(), 0.0);
    }
}
