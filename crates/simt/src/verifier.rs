//! Static kernel-launch verification: per-kernel access contracts proven
//! against the live allocation map *before* a single lane steps.
//!
//! PR 5's compute-sanitizer ([`crate::sanitizer`]) finds memory and race
//! bugs dynamically — only on the inputs a run happens to exercise, and
//! only by paying a per-access shadow cost. The paper's kernels, though,
//! have access patterns that are simple affine functions of `(tid, total)`
//! and the bound buffers — exactly the class a GPUVerify-style launch-time
//! checker can verify exhaustively. This module gives the simulator that
//! static side:
//!
//! * every shipped kernel declares an [`AccessContract`] — symbolic
//!   read/write footprints as affine ranges over the launch parameters and
//!   bound buffers, a per-lane write-set disjointness claim, and a
//!   shared-memory budget;
//! * a pre-launch checker (`check_launch_static`) validates the contract
//!   against the live [`crate::arena::Arena`] allocation map and the
//!   [`DeviceConfig`]: footprints in-bounds, write sets pairwise disjoint
//!   across lanes (⇒ static WW/RW race-freedom), shared budget within the
//!   device limit, grid config sane. Bad launches are *rejected* — the
//!   launch returns [`crate::SimtError::VerifierRejected`] and the finding
//!   lands in a deterministic [`VerifierReport`];
//! * contracts are cross-validated against reality: under
//!   [`crate::SanitizerMode::Paranoid`] the sanitizer's lane-access trace
//!   is checked for containment in the declared footprint
//!   (`check_trace_containment`), so a dishonest contract is itself a
//!   hard finding; under `Check`, launches with statically proven
//!   race-freedom skip the dynamic racecheck sweep entirely — sound
//!   precisely because Paranoid containment (and the [`selftest`] seeded
//!   lies) police contract honesty.
//!
//! Verification is host-side: it charges no modeled cycles, so modeled
//! perf is byte-identical with the verifier on or off.

use std::collections::BTreeMap;
use std::fmt;

use crate::arena::Arena;
use crate::config::DeviceConfig;
use crate::executor::LaunchConfig;
use crate::profiler::json_string;
use crate::sanitizer::GUARD_BYTES;

/// One recorded kernel memory access (read or write), with the issuing
/// lane's global thread id. The executor records these per launch when the
/// sanitizer is on; the stream is deterministic (SM-index merge order).
/// This is the *shared* access record: the sanitizer's dynamic checks and
/// the verifier's containment check both consume it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Global thread id of the issuing lane.
    pub lane: u32,
    pub addr: u64,
    pub bytes: u32,
    pub write: bool,
    /// Shared-memory-modeled scratch access (hash-table build/probe,
    /// including spilled tables). Memcheck bounds apply, but initcheck and
    /// racecheck do not: the kernel initializes its table in-launch behind
    /// a modeled barrier between the build and probe phases, which the
    /// pre-launch shadow and the orderless access log cannot represent.
    pub scratch: bool,
    /// Scratch access whose table overflowed the shared budget and lives
    /// in global scratch instead. Spilled accesses do not count against
    /// the contract's declared shared-memory budget.
    pub spilled: bool,
}

/// A half-open byte range `[start, end)` of device memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interval {
    pub start: u64,
    pub end: u64,
}

impl Interval {
    /// The interval of `len` bytes starting at `start`.
    #[inline]
    pub fn bytes(start: u64, len: u64) -> Self {
        Interval {
            start,
            end: start + len,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    #[inline]
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the two (non-empty) intervals share any byte.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Whether an access of `bytes` at `addr` lies fully inside.
    #[inline]
    pub fn contains(&self, addr: u64, bytes: u64) -> bool {
        addr >= self.start && addr + bytes <= self.end
    }
}

/// A symbolic per-lane-group footprint: group `g` (lanes
/// `[g·lanes_per_group, (g+1)·lanes_per_group)`) owns the window
/// `[base + g·stride, base + g·stride + span)`. With `lanes_per_group = 1`
/// and `stride = span` this is the classic "lane `tid` writes slot `tid`"
/// pattern; the hash kernel's per-virtual-warp scratch tables use wider
/// groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AffineFootprint {
    /// Window base of group 0.
    pub base: u64,
    /// Byte distance between consecutive group windows.
    pub stride: u64,
    /// Bytes each group may touch within its window.
    pub span: u64,
    /// Number of groups (0 ⇒ the footprint is empty).
    pub groups: u64,
    /// Lanes sharing one window (≥ 1).
    pub lanes_per_group: u32,
    /// The kernel's claim that distinct groups never touch each other's
    /// windows. The checker only *accepts* the claim when it is
    /// structurally provable (`stride ≥ span`); Paranoid containment then
    /// polices that lanes actually stay inside their own window.
    pub disjoint: bool,
}

impl AffineFootprint {
    /// The "lane `tid` owns slot `tid`" footprint: `lanes` windows of
    /// `span` bytes, one lane each, disjoint by construction.
    pub fn per_lane(base: u64, span: u64, lanes: u64) -> Self {
        AffineFootprint {
            base,
            stride: span,
            span,
            groups: lanes,
            lanes_per_group: 1,
            disjoint: true,
        }
    }

    /// Group `g`'s window.
    #[inline]
    pub fn window(&self, group: u64) -> Interval {
        Interval::bytes(self.base + group * self.stride, self.span)
    }

    /// The group owning `lane`.
    #[inline]
    pub fn group_of(&self, lane: u32) -> u64 {
        lane as u64 / self.lanes_per_group.max(1) as u64
    }

    /// The convex hull of every window: the whole footprint's byte range.
    pub fn hull(&self) -> Interval {
        if self.groups == 0 || self.span == 0 {
            return Interval::default();
        }
        Interval {
            start: self.base,
            end: self.base + (self.groups - 1) * self.stride + self.span,
        }
    }

    /// Whether group-disjointness holds structurally: windows spaced at
    /// least a span apart can never overlap.
    #[inline]
    pub fn proven_disjoint(&self) -> bool {
        self.stride >= self.span
    }

    /// Whether an access of `bytes` at `addr` by `lane` lies inside the
    /// lane's *own* group window.
    pub fn contains_lane(&self, lane: u32, addr: u64, bytes: u64) -> bool {
        let g = self.group_of(lane);
        g < self.groups && self.window(g).contains(addr, bytes)
    }
}

/// A kernel's declared memory behaviour, as a function of the launch
/// (`total` active threads, block geometry) and its bound buffers.
///
/// *Reads* are plain intervals — data-dependent gather loads (adjacency
/// walks) are declared as the whole bound buffer, which is still a proof
/// obligation (the buffer must be live and the interval in-bounds).
/// *Writes* and *scratch* are per-lane-group affine footprints so the
/// checker can prove write-set disjointness, which is what static WW/RW
/// race-freedom rests on. Scratch footprints are exempt from the
/// race-freedom argument (the kernel synchronizes its tables in-launch,
/// mirroring the sanitizer's racecheck exemption).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccessContract {
    pub reads: Vec<Interval>,
    pub writes: Vec<AffineFootprint>,
    pub scratch: Vec<AffineFootprint>,
    /// On-chip shared memory the kernel claims one block needs, in bytes.
    /// Checked against [`DeviceConfig::shared_mem_per_block_bytes`]
    /// statically, and against the observed non-spilled scratch extent
    /// under Paranoid containment.
    pub shared_bytes_per_block: u64,
}

/// The kind of a verifier finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifierFindingKind {
    /// The launch geometry is degenerate (zero blocks, non-multiple block
    /// size, warp split that does not divide the warp, …).
    GridInvalid,
    /// The verifier is on but the kernel declares no contract.
    MissingContract,
    /// A declared read interval leaves the logical bytes (+ guard window)
    /// of every live allocation.
    OobRead,
    /// A declared write/scratch footprint hull leaves the logical bytes of
    /// every live allocation.
    OobWrite,
    /// A footprint claims group-disjointness the checker cannot prove
    /// structurally (`stride < span`).
    UnprovenDisjointness,
    /// The declared shared budget exceeds the device's per-block limit.
    SharedBudgetExceeded,
    /// Paranoid containment: a traced read left the declared footprint.
    UndeclaredRead,
    /// Paranoid containment: a traced write left the declared footprint
    /// (or left the issuing lane's own window — a disjointness lie).
    UndeclaredWrite,
    /// Paranoid containment: observed non-spilled scratch use exceeds the
    /// declared per-block shared budget.
    SharedBudgetUnderstated,
}

impl VerifierFindingKind {
    /// Canonical kebab-case token (JSON `kind` field).
    pub fn token(self) -> &'static str {
        match self {
            VerifierFindingKind::GridInvalid => "grid-invalid",
            VerifierFindingKind::MissingContract => "missing-contract",
            VerifierFindingKind::OobRead => "oob-read",
            VerifierFindingKind::OobWrite => "oob-write",
            VerifierFindingKind::UnprovenDisjointness => "unproven-disjointness",
            VerifierFindingKind::SharedBudgetExceeded => "shared-budget-exceeded",
            VerifierFindingKind::UndeclaredRead => "undeclared-read",
            VerifierFindingKind::UndeclaredWrite => "undeclared-write",
            VerifierFindingKind::SharedBudgetUnderstated => "shared-budget-understated",
        }
    }
}

impl fmt::Display for VerifierFindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One verifier finding, fully attributed.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifierFinding {
    pub kind: VerifierFindingKind,
    /// Offending device address (footprint start, or access address).
    pub addr: u64,
    /// Byte extent of the offending range (0 when not meaningful).
    pub bytes: u64,
    /// Issuing lane for containment findings (`None` for static ones).
    pub lane: Option<u32>,
    /// Launch label (or host-pass label) being verified.
    pub kernel: String,
    /// Profiler span path active at check time (`""` outside any phase).
    pub phase: String,
    /// Human-readable specifics (which bound was violated, by how much).
    pub detail: String,
}

/// Deterministic aggregate of everything the verifier observed on one
/// device: proof statistics plus every finding.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifierReport {
    /// Device preset name.
    pub device: String,
    /// Kernel launches statically checked.
    pub launches_checked: u64,
    /// Launches whose contract proved static WW/RW race-freedom.
    pub launches_proven: u64,
    /// Dynamic racecheck sweeps skipped because race-freedom was already
    /// proven (Check-mode sanitizer only).
    pub racechecks_skipped: u64,
    /// Analytic host-side primitive passes interval-checked.
    pub passes_checked: u64,
    pub findings: Vec<VerifierFinding>,
}

impl VerifierReport {
    /// No findings.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Merge per-device reports (multi-GPU striping / cluster shards) in
    /// device-index order.
    pub fn merged(reports: &[VerifierReport]) -> VerifierReport {
        let mut out = VerifierReport {
            device: reports
                .first()
                .map(|r| r.device.clone())
                .unwrap_or_default(),
            ..VerifierReport::default()
        };
        for r in reports {
            out.launches_checked += r.launches_checked;
            out.launches_proven += r.launches_proven;
            out.racechecks_skipped += r.racechecks_skipped;
            out.passes_checked += r.passes_checked;
            out.findings.extend(r.findings.iter().cloned());
        }
        out
    }

    /// Serialize to JSON (hand-rolled, no serde; deterministic key order —
    /// same style as [`crate::SanitizerReport::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 192 * self.findings.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"device\": {},\n", json_string(&self.device)));
        out.push_str(&format!(
            "  \"launches_checked\": {},\n",
            self.launches_checked
        ));
        out.push_str(&format!(
            "  \"launches_proven\": {},\n",
            self.launches_proven
        ));
        out.push_str(&format!(
            "  \"racechecks_skipped\": {},\n",
            self.racechecks_skipped
        ));
        out.push_str(&format!("  \"passes_checked\": {},\n", self.passes_checked));
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"kind\": {},\n",
                json_string(f.kind.token())
            ));
            out.push_str(&format!("      \"addr\": {},\n", f.addr));
            out.push_str(&format!("      \"bytes\": {},\n", f.bytes));
            match f.lane {
                Some(l) => out.push_str(&format!("      \"lane\": {l},\n")),
                None => out.push_str("      \"lane\": null,\n"),
            }
            out.push_str(&format!("      \"kernel\": {},\n", json_string(&f.kernel)));
            out.push_str(&format!("      \"phase\": {},\n", json_string(&f.phase)));
            out.push_str(&format!("      \"detail\": {}\n", json_string(&f.detail)));
            out.push_str("    }");
            if i + 1 != self.findings.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Result of the pre-launch static check.
#[derive(Clone, Debug)]
pub(crate) struct StaticCheck {
    pub(crate) findings: Vec<VerifierFinding>,
    /// Whether the contract proves static WW/RW race-freedom: every write
    /// footprint claims *and* structurally proves group-disjointness, the
    /// write hulls are pairwise disjoint, and no (guard-extended) read
    /// interval overlaps a write hull.
    pub(crate) race_free: bool,
}

fn finding(
    kind: VerifierFindingKind,
    addr: u64,
    bytes: u64,
    label: &str,
    phase: &str,
    detail: String,
) -> VerifierFinding {
    VerifierFinding {
        kind,
        addr,
        bytes,
        lane: None,
        kernel: label.to_string(),
        phase: phase.to_string(),
        detail,
    }
}

/// Check one declared interval against the live allocation map. `guard`
/// is the read tolerance past an allocation's logical end (the benign
/// one-past-the-end pattern); writes pass 0.
fn check_interval_bounds(
    arena: &Arena,
    iv: Interval,
    guard: u64,
    kind: VerifierFindingKind,
    label: &str,
    phase: &str,
    what: &str,
) -> Option<VerifierFinding> {
    if iv.is_empty() {
        return None;
    }
    match arena.live_alloc_below(iv.start) {
        Some((base, bytes))
            if iv.start < base + bytes + guard && iv.end <= base + bytes + guard =>
        {
            None
        }
        Some((base, bytes)) => Some(finding(
            kind,
            iv.start,
            iv.len(),
            label,
            phase,
            format!(
                "{what} [{}, {}) leaves allocation [{base}, {})",
                iv.start,
                iv.end,
                base + bytes
            ),
        )),
        None => Some(finding(
            kind,
            iv.start,
            iv.len(),
            label,
            phase,
            format!(
                "{what} [{}, {}) is inside no live allocation",
                iv.start, iv.end
            ),
        )),
    }
}

/// Validate a launch's contract against the live allocation map and the
/// device limits — the pre-launch static proof. Never touches the modeled
/// clock. A `None` contract with the verifier on is itself a finding.
pub(crate) fn check_launch_static(
    contract: Option<&AccessContract>,
    lc: LaunchConfig,
    cfg: &DeviceConfig,
    arena: &Arena,
    label: &str,
    phase: &str,
) -> StaticCheck {
    let mut findings = Vec::new();
    if let Err(e) = lc.validate(cfg) {
        findings.push(finding(
            VerifierFindingKind::GridInvalid,
            0,
            0,
            label,
            phase,
            e.to_string(),
        ));
        return StaticCheck {
            findings,
            race_free: false,
        };
    }
    let Some(c) = contract else {
        findings.push(finding(
            VerifierFindingKind::MissingContract,
            0,
            0,
            label,
            phase,
            "kernel declares no access contract".to_string(),
        ));
        return StaticCheck {
            findings,
            race_free: false,
        };
    };
    for iv in &c.reads {
        findings.extend(check_interval_bounds(
            arena,
            *iv,
            GUARD_BYTES,
            VerifierFindingKind::OobRead,
            label,
            phase,
            "read footprint",
        ));
    }
    for (fps, what) in [
        (&c.writes, "write footprint"),
        (&c.scratch, "scratch footprint"),
    ] {
        for fp in fps.iter() {
            findings.extend(check_interval_bounds(
                arena,
                fp.hull(),
                0,
                VerifierFindingKind::OobWrite,
                label,
                phase,
                what,
            ));
            if fp.disjoint && !fp.hull().is_empty() && !fp.proven_disjoint() {
                findings.push(finding(
                    VerifierFindingKind::UnprovenDisjointness,
                    fp.base,
                    fp.span,
                    label,
                    phase,
                    format!(
                        "{what} claims disjoint groups but stride {} < span {}",
                        fp.stride, fp.span
                    ),
                ));
            }
        }
    }
    if c.shared_bytes_per_block > cfg.shared_mem_per_block_bytes as u64 {
        findings.push(finding(
            VerifierFindingKind::SharedBudgetExceeded,
            0,
            c.shared_bytes_per_block,
            label,
            phase,
            format!(
                "declared shared budget {} B exceeds the device's {} B per block",
                c.shared_bytes_per_block, cfg.shared_mem_per_block_bytes
            ),
        ));
    }
    let race_free = findings.is_empty() && proves_race_freedom(c);
    StaticCheck {
        findings,
        race_free,
    }
}

/// Whether a (bounds-clean) contract proves static WW/RW race-freedom.
fn proves_race_freedom(c: &AccessContract) -> bool {
    let mut hulls: Vec<Interval> = Vec::new();
    for fp in &c.writes {
        let hull = fp.hull();
        if hull.is_empty() {
            continue;
        }
        // Every non-empty write footprint must claim disjoint lanes *and*
        // prove the claim structurally.
        if !(fp.disjoint && fp.proven_disjoint()) {
            return false;
        }
        hulls.push(hull);
    }
    // Distinct write footprints must not overlap each other (two proven-
    // disjoint footprints over the same buffer still race across lanes).
    for (i, a) in hulls.iter().enumerate() {
        for b in &hulls[i + 1..] {
            if a.overlaps(b) {
                return false;
            }
        }
    }
    // Reads must not overlap any write hull. Exact declared intervals,
    // no guard extension: the arena's 256 B alignment routinely places a
    // write buffer flush against a read buffer's end, and a guard-zone
    // over-read into a write hull is policed dynamically instead — the
    // Paranoid containment check refuses the guard tolerance wherever it
    // would intersect a write footprint.
    for iv in &c.reads {
        if iv.is_empty() {
            continue;
        }
        if hulls.iter().any(|h| iv.overlaps(h)) {
            return false;
        }
    }
    true
}

/// Paranoid cross-validation: every traced access must be contained in the
/// declared footprint — reads in a declared read interval (guard-extended)
/// or the lane's own write window, writes in the lane's *own* write
/// window (so a false disjointness claim is caught), scratch accesses in
/// the lane's own scratch window. Also audits the shared budget: observed
/// per-block non-spilled scratch extent must not exceed the declaration.
/// At most one finding per kind is reported (the trace is deterministic,
/// so the first violation is stable).
pub(crate) fn check_trace_containment(
    contract: &AccessContract,
    accesses: &[Access],
    lc: LaunchConfig,
    total: usize,
    label: &str,
    phase: &str,
) -> Vec<VerifierFinding> {
    let mut out = Vec::new();
    let mut seen_read = false;
    let mut seen_write = false;
    // (scratch-footprint index, group) → max observed extent from the
    // window base, non-spilled accesses only.
    let mut extents: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    for a in accesses {
        let bytes = a.bytes as u64;
        if a.scratch {
            let fp_idx = contract
                .scratch
                .iter()
                .position(|fp| fp.contains_lane(a.lane, a.addr, bytes));
            match fp_idx {
                Some(i) => {
                    if !a.spilled {
                        let fp = &contract.scratch[i];
                        let g = fp.group_of(a.lane);
                        let extent = a.addr + bytes - fp.window(g).start;
                        let e = extents.entry((i, g)).or_insert(0);
                        *e = (*e).max(extent);
                    }
                }
                None => {
                    let (seen, kind) = if a.write {
                        (&mut seen_write, VerifierFindingKind::UndeclaredWrite)
                    } else {
                        (&mut seen_read, VerifierFindingKind::UndeclaredRead)
                    };
                    if !*seen {
                        *seen = true;
                        out.push(VerifierFinding {
                            kind,
                            addr: a.addr,
                            bytes,
                            lane: Some(a.lane),
                            kernel: label.to_string(),
                            phase: phase.to_string(),
                            detail: "scratch access outside the lane's declared scratch window"
                                .to_string(),
                        });
                    }
                }
            }
        } else if a.write {
            if !contract
                .writes
                .iter()
                .any(|fp| fp.contains_lane(a.lane, a.addr, bytes))
                && !seen_write
            {
                seen_write = true;
                out.push(VerifierFinding {
                    kind: VerifierFindingKind::UndeclaredWrite,
                    addr: a.addr,
                    bytes,
                    lane: Some(a.lane),
                    kernel: label.to_string(),
                    phase: phase.to_string(),
                    detail: "store outside the lane's own declared write window".to_string(),
                });
            }
        } else {
            let exact = contract
                .reads
                .iter()
                .any(|iv| a.addr >= iv.start && a.addr + bytes <= iv.end);
            let own_window = contract
                .writes
                .iter()
                .any(|fp| fp.contains_lane(a.lane, a.addr, bytes));
            // The guard tolerance (benign one-past-the-end loads) stops
            // at any write hull: the static race proof uses exact read
            // intervals, so a guard-zone read inside a write footprint
            // would be an unproven RW pair — flag it.
            let span = Interval::bytes(a.addr, bytes);
            let guarded = !exact
                && contract
                    .reads
                    .iter()
                    .any(|iv| a.addr >= iv.start && a.addr + bytes <= iv.end + GUARD_BYTES)
                && !contract.writes.iter().any(|fp| span.overlaps(&fp.hull()));
            let declared = exact || own_window || guarded;
            if !declared && !seen_read {
                seen_read = true;
                out.push(VerifierFinding {
                    kind: VerifierFindingKind::UndeclaredRead,
                    addr: a.addr,
                    bytes,
                    lane: Some(a.lane),
                    kernel: label.to_string(),
                    phase: phase.to_string(),
                    detail: "load outside every declared read interval and write window"
                        .to_string(),
                });
            }
        }
    }
    // Shared-budget honesty: sum each block's group extents.
    if !extents.is_empty() {
        let per_block = (total / (lc.blocks as usize).max(1)).max(1) as u64;
        let mut block_usage: BTreeMap<u64, u64> = BTreeMap::new();
        for (&(i, g), &extent) in &extents {
            let first_lane = g * contract.scratch[i].lanes_per_group.max(1) as u64;
            *block_usage.entry(first_lane / per_block).or_insert(0) += extent;
        }
        if let Some((&block, &used)) = block_usage
            .iter()
            .find(|&(_, &used)| used > contract.shared_bytes_per_block)
        {
            out.push(VerifierFinding {
                kind: VerifierFindingKind::SharedBudgetUnderstated,
                addr: 0,
                bytes: used,
                lane: None,
                kernel: label.to_string(),
                phase: phase.to_string(),
                detail: format!(
                    "block {block} uses {used} B of shared scratch, contract declares {}",
                    contract.shared_bytes_per_block
                ),
            });
        }
    }
    out
}

/// Interval-check an analytic host-side primitive pass (scan / sort /
/// reduce / compact / transform) against the live allocation map. These
/// passes never go through `Device::launch`, so this is their whole
/// verification: concrete byte ranges, no lanes. Reads get the usual
/// guard tolerance; writes none.
pub(crate) fn check_host_pass(
    arena: &Arena,
    label: &str,
    phase: &str,
    reads: &[Interval],
    writes: &[Interval],
) -> Vec<VerifierFinding> {
    let mut out = Vec::new();
    for iv in reads {
        out.extend(check_interval_bounds(
            arena,
            *iv,
            GUARD_BYTES,
            VerifierFindingKind::OobRead,
            label,
            phase,
            "pass read",
        ));
    }
    for iv in writes {
        out.extend(check_interval_bounds(
            arena,
            *iv,
            0,
            VerifierFindingKind::OobWrite,
            label,
            phase,
            "pass write",
        ));
    }
    out
}

/// Seeded dishonest-contract self-test: kernels whose *contracts lie* —
/// a footprint narrower than the accesses, a false disjointness claim,
/// an understated shared budget, and a statically-out-of-bounds footprint
/// — each of which the verifier must catch. CI runs this
/// (`tcount verify-selftest`) to prove the static checker and the
/// Paranoid containment check are alive, the mirror image of proving the
/// real suite's contracts honest.
pub mod selftest {
    use super::{AccessContract, AffineFootprint, Interval, VerifierFindingKind, VerifierReport};
    use crate::arena::DeviceBuffer;
    use crate::config::DeviceConfig;
    use crate::device::Device;
    use crate::executor::LaunchConfig;
    use crate::kernel::{Effect, Kernel, Lane, MemView};
    use crate::sanitizer::SanitizerMode;

    /// Outcome of one seeded-lie kernel.
    #[derive(Clone, Debug)]
    pub struct SeededLie {
        /// Lie name (`"footprint-too-narrow"`, `"false-disjointness"`, …).
        pub name: &'static str,
        /// The finding kind the lie is seeded to produce.
        pub expected: VerifierFindingKind,
        /// Whether the verifier produced at least one finding of that kind.
        pub detected: bool,
        /// Whether the launch was statically rejected (static lies only).
        pub rejected: bool,
        /// The full verifier report of the seeded run.
        pub report: VerifierReport,
    }

    /// One-shot lane: returns a fixed effect on its first step, `Done`
    /// after.
    struct OneShotLane {
        effect: Option<Effect>,
    }

    impl Lane for OneShotLane {
        fn step(&mut self, _mem: &MemView<'_>) -> Effect {
            self.effect.take().unwrap_or(Effect::Done)
        }
    }

    /// Lane 0 reads the buffer's last element, but the contract only
    /// declares the first quarter — a footprint narrower than reality.
    struct NarrowFootprintKernel {
        data: DeviceBuffer<u32>,
    }

    impl Kernel for NarrowFootprintKernel {
        type Lane = OneShotLane;
        fn spawn(&self, tid: usize, _total: usize) -> OneShotLane {
            OneShotLane {
                effect: (tid == 0).then_some(Effect::Read {
                    addr: self.data.addr_of(self.data.len() - 1),
                    bytes: 4,
                    cached: true,
                }),
            }
        }
        fn contract(&self, _lc: LaunchConfig, _total: usize) -> Option<AccessContract> {
            Some(AccessContract {
                reads: vec![Interval::bytes(self.data.addr(), self.data.byte_len() / 4)],
                ..AccessContract::default()
            })
        }
    }

    /// Every lane stores to slot 0, but the contract claims the classic
    /// lane-private per-lane footprint — a structurally provable (and
    /// false) disjointness claim that only trace containment can catch.
    struct FalseDisjointKernel {
        result: DeviceBuffer<u64>,
    }

    impl Kernel for FalseDisjointKernel {
        type Lane = OneShotLane;
        fn spawn(&self, tid: usize, _total: usize) -> OneShotLane {
            OneShotLane {
                effect: Some(Effect::Write {
                    addr: self.result.addr(),
                    bytes: 8,
                    value: tid as u64,
                }),
            }
        }
        fn contract(&self, _lc: LaunchConfig, total: usize) -> Option<AccessContract> {
            Some(AccessContract {
                writes: vec![AffineFootprint::per_lane(
                    self.result.addr(),
                    8,
                    total as u64,
                )],
                ..AccessContract::default()
            })
        }
    }

    /// Lane 0 touches 132 B of its (honestly declared) scratch window,
    /// but the contract declares a 16 B shared budget.
    struct BudgetLieKernel {
        table: DeviceBuffer<u32>,
    }

    impl Kernel for BudgetLieKernel {
        type Lane = OneShotLane;
        fn spawn(&self, tid: usize, _total: usize) -> OneShotLane {
            OneShotLane {
                effect: (tid == 0).then_some(Effect::SharedWrite {
                    addr: self.table.addr() + 128,
                    bytes: 4,
                    value: 7,
                    spilled: false,
                }),
            }
        }
        fn contract(&self, _lc: LaunchConfig, total: usize) -> Option<AccessContract> {
            Some(AccessContract {
                scratch: vec![AffineFootprint {
                    base: self.table.addr(),
                    stride: self.table.byte_len(),
                    span: self.table.byte_len(),
                    groups: 1,
                    lanes_per_group: total as u32,
                    disjoint: false,
                }],
                shared_bytes_per_block: 16,
                ..AccessContract::default()
            })
        }
    }

    /// The contract's read interval runs 1 KB past a 64 B allocation —
    /// statically out of bounds, so the launch must be *rejected* before
    /// a single lane steps.
    struct StaticOobKernel {
        data: DeviceBuffer<u32>,
    }

    impl Kernel for StaticOobKernel {
        type Lane = OneShotLane;
        fn spawn(&self, tid: usize, _total: usize) -> OneShotLane {
            OneShotLane {
                effect: (tid == 0).then_some(Effect::Read {
                    addr: self.data.addr(),
                    bytes: 4,
                    cached: true,
                }),
            }
        }
        fn contract(&self, _lc: LaunchConfig, _total: usize) -> Option<AccessContract> {
            Some(AccessContract {
                reads: vec![Interval::bytes(self.data.addr(), 1024)],
                ..AccessContract::default()
            })
        }
    }

    /// A fresh device with the verifier on and the sanitizer in Paranoid
    /// mode: the containment check needs the dynamic lane-access trace.
    fn seeded_device() -> Device {
        let cfg = DeviceConfig::nvs_5200m()
            .with_unlimited_memory()
            .with_sanitizer(SanitizerMode::Paranoid)
            .with_verifier(true);
        let mut dev = Device::new(cfg);
        dev.preinit_context();
        dev.reset_clock();
        dev
    }

    fn outcome(
        name: &'static str,
        expected: VerifierFindingKind,
        rejected: bool,
        dev: &Device,
    ) -> SeededLie {
        let report = dev
            .verifier_report()
            .expect("seeded device runs with the verifier on");
        SeededLie {
            name,
            expected,
            detected: report.findings.iter().any(|f| f.kind == expected),
            rejected,
            report,
        }
    }

    /// Run the four seeded-lie kernels, each on a fresh verified device.
    pub fn run() -> Vec<SeededLie> {
        let lc = LaunchConfig::new(1, 64);
        let mut out = Vec::with_capacity(4);

        let mut dev = seeded_device();
        let data = dev.alloc::<u32>(64).unwrap();
        dev.poke(&data, &[7u32; 64]);
        let kernel = NarrowFootprintKernel { data };
        dev.with_phase("verify-selftest", |d| {
            d.launch("SeededNarrowFootprint", lc, &kernel)
        })
        .unwrap();
        out.push(outcome(
            "footprint-too-narrow",
            VerifierFindingKind::UndeclaredRead,
            false,
            &dev,
        ));

        let mut dev = seeded_device();
        let result = dev.alloc::<u64>(64).unwrap();
        dev.poke(&result, &[0u64; 64]);
        let kernel = FalseDisjointKernel { result };
        dev.with_phase("verify-selftest", |d| {
            d.launch("SeededFalseDisjoint", lc, &kernel)
        })
        .unwrap();
        out.push(outcome(
            "false-disjointness",
            VerifierFindingKind::UndeclaredWrite,
            false,
            &dev,
        ));

        let mut dev = seeded_device();
        let table = dev.alloc::<u32>(64).unwrap();
        let kernel = BudgetLieKernel { table };
        dev.with_phase("verify-selftest", |d| {
            d.launch("SeededBudgetLie", lc, &kernel)
        })
        .unwrap();
        out.push(outcome(
            "shared-budget-understated",
            VerifierFindingKind::SharedBudgetUnderstated,
            false,
            &dev,
        ));

        let mut dev = seeded_device();
        let data = dev.alloc::<u32>(16).unwrap();
        dev.poke(&data, &[1u32; 16]);
        let kernel = StaticOobKernel { data };
        let err = dev
            .with_phase("verify-selftest", |d| {
                d.launch("SeededStaticOob", lc, &kernel)
            })
            .is_err();
        out.push(outcome(
            "static-oob-footprint",
            VerifierFindingKind::OobRead,
            err,
            &dev,
        ));

        out
    }

    /// Whether every seeded lie was detected.
    pub fn all_detected(lies: &[SeededLie]) -> bool {
        !lies.is_empty() && lies.iter().all(|l| l.detected)
    }

    /// Deterministic JSON for the whole self-test (CI gate artifact).
    pub fn to_json(lies: &[SeededLie]) -> String {
        let mut out = String::from("{\n  \"seeded_lies\": [\n");
        for (i, l) in lies.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", l.name));
            out.push_str(&format!(
                "      \"expected\": \"{}\",\n",
                l.expected.token()
            ));
            out.push_str(&format!("      \"detected\": {},\n", l.detected));
            out.push_str(&format!("      \"rejected\": {},\n", l.rejected));
            out.push_str("      \"report\": ");
            let nested = l.report.to_json();
            let nested = nested.trim_end().replace('\n', "\n      ");
            out.push_str(&nested);
            out.push_str("\n    }");
            if i + 1 != lies.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  ],\n  \"all_detected\": {}\n}}\n",
            all_detected(lies)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_and_footprints_compose() {
        let iv = Interval::bytes(256, 64);
        assert_eq!(iv.len(), 64);
        assert!(iv.contains(256, 64));
        assert!(!iv.contains(300, 64));
        assert!(iv.overlaps(&Interval::bytes(300, 100)));
        assert!(!iv.overlaps(&Interval::bytes(320, 100)));
        assert!(
            !iv.overlaps(&Interval::bytes(300, 0)),
            "empty never overlaps"
        );

        let fp = AffineFootprint::per_lane(1024, 8, 4);
        assert!(fp.proven_disjoint());
        assert_eq!(fp.window(2), Interval::bytes(1040, 8));
        assert_eq!(fp.hull(), Interval::bytes(1024, 32));
        assert!(fp.contains_lane(3, 1048, 8));
        assert!(!fp.contains_lane(3, 1040, 8), "lane 3 owns window 3 only");
        assert!(!fp.contains_lane(9, 1024, 8), "lane past the group count");

        let wide = AffineFootprint {
            base: 0,
            stride: 4,
            span: 16,
            groups: 4,
            lanes_per_group: 32,
            disjoint: true,
        };
        assert!(!wide.proven_disjoint(), "stride < span is not provable");
        assert_eq!(wide.group_of(63), 1);

        let empty = AffineFootprint::per_lane(64, 8, 0);
        assert!(empty.hull().is_empty());
    }

    #[test]
    fn race_freedom_needs_disjoint_writes_and_separate_reads() {
        let clean = AccessContract {
            reads: vec![Interval::bytes(0, 256)],
            writes: vec![AffineFootprint::per_lane(1024, 8, 16)],
            ..AccessContract::default()
        };
        assert!(proves_race_freedom(&clean));

        // An unproven disjointness claim defeats the proof.
        let mut c = clean.clone();
        c.writes[0].stride = 4;
        assert!(!proves_race_freedom(&c));

        // An unclaimed footprint defeats it too.
        let mut c = clean.clone();
        c.writes[0].disjoint = false;
        assert!(!proves_race_freedom(&c));

        // Overlapping write hulls across footprints defeat it.
        let mut c = clean.clone();
        c.writes.push(AffineFootprint::per_lane(1024 + 64, 8, 16));
        assert!(!proves_race_freedom(&c));
        c.writes[1].base = 2048;
        assert!(proves_race_freedom(&c));

        // A read overlapping a write hull defeats it.
        let mut c = clean;
        c.reads.push(Interval::bytes(1000, 30));
        assert!(!proves_race_freedom(&c));
    }

    #[test]
    fn adjacent_read_and_write_buffers_still_prove() {
        // Read ends exactly where the write hull begins — the common
        // layout under the arena's 256 B alignment. Exact intervals
        // don't overlap, so the proof holds; guard-zone over-reads into
        // the hull are the Paranoid containment check's job.
        let c = AccessContract {
            reads: vec![Interval::bytes(0, 1024)],
            writes: vec![AffineFootprint::per_lane(1024, 8, 16)],
            ..AccessContract::default()
        };
        assert!(proves_race_freedom(&c));
    }

    #[test]
    fn guard_tolerance_stops_at_write_hulls() {
        // Read buffer ends exactly where the write hull begins (adjacent
        // allocations). The static proof accepted this layout on exact
        // intervals, so the dynamic guard tolerance must not quietly
        // admit an over-read into the hull — that would be the unproven
        // RW pair the skipped racecheck can no longer catch.
        let contract = AccessContract {
            reads: vec![Interval::bytes(768, 256)],
            writes: vec![AffineFootprint::per_lane(1024, 8, 16)],
            ..AccessContract::default()
        };
        let lc = LaunchConfig::new(1, 64);
        let over_read = vec![Access {
            lane: 5,
            addr: 1024,
            bytes: 4,
            write: false,
            scratch: false,
            spilled: false,
        }];
        let f = check_trace_containment(&contract, &over_read, lc, 16, "k", "p");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, VerifierFindingKind::UndeclaredRead);
        // Lane 0 reading its own window at the same address is fine.
        let own = vec![Access {
            lane: 0,
            addr: 1024,
            bytes: 4,
            write: false,
            scratch: false,
            spilled: false,
        }];
        assert!(check_trace_containment(&contract, &own, lc, 16, "k", "p").is_empty());
        // And with the hull elsewhere, the same over-read is the benign
        // one-past-the-end pattern the guard exists for.
        let mut clear = contract;
        clear.writes[0].base = 4096;
        let f = check_trace_containment(&clear, &over_read, lc, 16, "k", "p");
        assert!(f.is_empty());
    }

    #[test]
    fn containment_accepts_honest_traces_and_flags_lies() {
        let contract = AccessContract {
            reads: vec![Interval::bytes(0, 256)],
            writes: vec![AffineFootprint::per_lane(1024, 8, 16)],
            scratch: vec![AffineFootprint {
                base: 4096,
                stride: 64,
                span: 64,
                groups: 2,
                lanes_per_group: 8,
                disjoint: true,
            }],
            shared_bytes_per_block: 128,
        };
        let lc = LaunchConfig::new(1, 64);
        let honest = vec![
            Access {
                lane: 3,
                addr: 100,
                bytes: 4,
                write: false,
                scratch: false,
                spilled: false,
            },
            // Guard-window read one past the declared interval.
            Access {
                lane: 3,
                addr: 256,
                bytes: 4,
                write: false,
                scratch: false,
                spilled: false,
            },
            Access {
                lane: 3,
                addr: 1024 + 24,
                bytes: 8,
                write: true,
                scratch: false,
                spilled: false,
            },
            // Lane 3 may read back its own write window.
            Access {
                lane: 3,
                addr: 1024 + 24,
                bytes: 8,
                write: false,
                scratch: false,
                spilled: false,
            },
            // Lane 9 is in scratch group 1 (window 4160..4224).
            Access {
                lane: 9,
                addr: 4160 + 32,
                bytes: 4,
                write: true,
                scratch: true,
                spilled: false,
            },
        ];
        assert!(check_trace_containment(&contract, &honest, lc, 16, "k", "p").is_empty());

        // Lane 3 writing lane 2's slot: a disjointness lie.
        let lying_write = vec![Access {
            lane: 3,
            addr: 1024 + 16,
            bytes: 8,
            write: true,
            scratch: false,
            spilled: false,
        }];
        let f = check_trace_containment(&contract, &lying_write, lc, 16, "k", "p");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, VerifierFindingKind::UndeclaredWrite);
        assert_eq!(f[0].lane, Some(3));

        // A read far outside every declared range.
        let lying_read = vec![
            Access {
                lane: 0,
                addr: 9000,
                bytes: 4,
                write: false,
                scratch: false,
                spilled: false,
            },
            Access {
                lane: 1,
                addr: 9004,
                bytes: 4,
                write: false,
                scratch: false,
                spilled: false,
            },
        ];
        let f = check_trace_containment(&contract, &lying_read, lc, 16, "k", "p");
        assert_eq!(f.len(), 1, "at most one finding per kind");
        assert_eq!(f[0].kind, VerifierFindingKind::UndeclaredRead);

        // Budget honesty: two groups of one block summing past the budget.
        let hungry = vec![
            Access {
                lane: 0,
                addr: 4096 + 60,
                bytes: 4,
                write: true,
                scratch: true,
                spilled: false,
            },
            Access {
                lane: 9,
                addr: 4160 + 60,
                bytes: 4,
                write: true,
                scratch: true,
                spilled: false,
            },
        ];
        let mut tight = contract;
        tight.shared_bytes_per_block = 100; // observed: 64 + 64 = 128
        let f = check_trace_containment(&tight, &hungry, lc, 16, "k", "p");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, VerifierFindingKind::SharedBudgetUnderstated);
        assert_eq!(f[0].bytes, 128);
        // Spilled accesses don't count against the budget.
        let spilled: Vec<Access> = hungry
            .iter()
            .map(|a| Access {
                spilled: true,
                ..*a
            })
            .collect();
        assert!(check_trace_containment(&tight, &spilled, lc, 16, "k", "p").is_empty());
    }

    #[test]
    fn report_json_is_deterministic_and_balanced() {
        let report = VerifierReport {
            device: "GTX 980".into(),
            launches_checked: 5,
            launches_proven: 4,
            racechecks_skipped: 3,
            passes_checked: 7,
            findings: vec![VerifierFinding {
                kind: VerifierFindingKind::UnprovenDisjointness,
                addr: 4096,
                bytes: 16,
                lane: None,
                kernel: "CountTriangles".into(),
                phase: "count/count-kernel".into(),
                detail: "stride 4 < span 16".into(),
            }],
        };
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"kind\": \"unproven-disjointness\""));
        assert!(json.contains("\"launches_proven\": 4"));
        assert!(json.contains("\"racechecks_skipped\": 3"));
        assert!(json.contains("\"lane\": null"));
    }

    #[test]
    fn merged_reports_sum_counters_and_concatenate() {
        let mk = |addr| VerifierReport {
            device: "C2050".into(),
            launches_checked: 2,
            launches_proven: 1,
            racechecks_skipped: 1,
            passes_checked: 3,
            findings: vec![VerifierFinding {
                kind: VerifierFindingKind::OobWrite,
                addr,
                bytes: 8,
                lane: None,
                kernel: "k".into(),
                phase: String::new(),
                detail: String::new(),
            }],
        };
        let m = VerifierReport::merged(&[mk(1), mk(2)]);
        assert_eq!(m.launches_checked, 4);
        assert_eq!(m.launches_proven, 2);
        assert_eq!(m.passes_checked, 6);
        assert_eq!(m.findings.len(), 2);
        assert_eq!(m.findings[0].addr, 1);
        assert_eq!(m.findings[1].addr, 2);
        assert!(!m.is_clean());
        assert!(
            VerifierReport::merged(&[]).is_clean(),
            "empty merge is clean"
        );
    }

    #[test]
    fn selftest_detects_all_four_seeded_lies() {
        let lies = selftest::run();
        assert_eq!(lies.len(), 4);
        for l in &lies {
            assert!(l.detected, "{} must be detected", l.name);
        }
        assert!(selftest::all_detected(&lies));
        // The static lie is rejected before any lane steps; the dynamic
        // lies need the trace, so their launches run to completion.
        assert!(lies.iter().any(|l| l.rejected));
        assert_eq!(
            lies.iter().filter(|l| l.rejected).count(),
            1,
            "only the static-oob lie is rejected pre-launch"
        );
        // Deterministic, byte-identical JSON across runs.
        let a = selftest::to_json(&lies);
        let b = selftest::to_json(&selftest::run());
        assert_eq!(a, b);
        assert!(a.contains("\"all_detected\": true"));
    }
}
