//! Set-associative LRU cache model.
//!
//! Used for both the per-SM read-only (texture) cache — the §III-D4
//! optimization — and the per-SM slice of the device L2. Tracks the hit/miss
//! statistics reported in Table II. The model is a plain tag array: no MSHRs
//! or sector states; one probe per line-sized transaction.

/// Hit/miss counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
}

impl CacheStats {
    #[inline]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    pub fn merge(&mut self, other: CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Monotone per-access stamps for LRU.
    stamps: Vec<u64>,
    sets: u32,
    ways: u32,
    line_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache of `capacity_bytes` with the given associativity and
    /// line size. Capacity must be a multiple of `ways * line_bytes`; the
    /// set count is rounded down to a power of two (hardware-style index
    /// extraction).
    pub fn new(capacity_bytes: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(line_bytes.is_power_of_two());
        assert!(ways >= 1);
        let lines = (capacity_bytes / line_bytes).max(ways);
        // Round the set count *down* to a power of two (hardware index bits).
        let raw_sets = (lines / ways).max(1);
        let sets = 1u32 << (31 - raw_sets.leading_zeros());
        Cache {
            tags: vec![u64::MAX; (sets * ways) as usize],
            stamps: vec![0; (sets * ways) as usize],
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Probe the line containing `addr`; fill on miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as u32;
        let base = (set * self.ways) as usize;
        let ways = self.ways as usize;
        let slots = &mut self.tags[base..base + ways];
        if let Some(w) = slots.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.tick;
            self.stats.hits += 1;
            return true;
        }
        // Miss: evict LRU way.
        let victim = (0..ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways >= 1");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Probe without filling (used to model cache-bypass configurations).
    pub fn peek(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as u32;
        let base = (set * self.ways) as usize;
        self.tags[base..base + self.ways as usize].contains(&line)
    }

    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of sets (for tests).
    pub fn num_sets(&self) -> u32 {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 4, 32);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(31)); // same line
        assert!(!c.access(32)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 sets? Force a single set: capacity = ways * line -> sets = 1.
        let mut c = Cache::new(2 * 32, 2, 32);
        assert_eq!(c.num_sets(), 1);
        c.access(0); // A
        c.access(64); // B (same set, way 2)
        c.access(0); // A again: A is MRU
        c.access(128); // C evicts B
        assert!(c.access(0), "A must survive");
        assert!(!c.access(64), "B was evicted");
    }

    #[test]
    fn capacity_bound_working_set_always_hits_after_warmup() {
        let mut c = Cache::new(4096, 4, 32);
        let lines: Vec<u64> = (0..64).map(|i| i * 32).collect(); // 2 KiB
        for &a in &lines {
            c.access(a);
        }
        c.reset_stats();
        for _ in 0..4 {
            for &a in &lines {
                assert!(c.access(a));
            }
        }
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn oversized_working_set_thrashes() {
        let mut c = Cache::new(1024, 4, 32); // 32 lines
        let lines: Vec<u64> = (0..256).map(|i| i * 32).collect(); // 8 KiB
        for _ in 0..3 {
            for &a in &lines {
                c.access(a);
            }
        }
        assert!(c.stats().hit_rate() < 0.1, "rate {}", c.stats().hit_rate());
    }

    #[test]
    fn peek_does_not_fill_or_count() {
        let mut c = Cache::new(1024, 4, 32);
        assert!(!c.peek(0));
        assert_eq!(c.stats().accesses, 0);
        c.access(0);
        assert!(c.peek(0));
    }

    #[test]
    fn stats_merge() {
        let mut a = CacheStats {
            accesses: 10,
            hits: 7,
        };
        a.merge(CacheStats {
            accesses: 10,
            hits: 1,
        });
        assert_eq!(a.accesses, 20);
        assert_eq!(a.hits, 8);
        assert_eq!(a.misses(), 12);
        assert!((a.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_hit_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
