//! nvprof-style profiling: hardware counters, hierarchical phase spans,
//! and machine-readable profile reports.
//!
//! The paper's evidence is profiler output — Table II explains the GTX 980
//! speedups via texture-cache hit rate and DRAM throughput measured with
//! nvprof, and each §III-D ablation is justified by a counter delta. This
//! module gives the simulated [`crate::Device`] the same vocabulary:
//!
//! * [`Counters`] — monotone running totals of every modeled hardware
//!   event (DRAM bytes read/written, 32 B transactions, cache hits,
//!   divergence serialization, issue stalls, occupancy, PCIe traffic);
//! * [`Span`] — one named phase (`"preprocess/3-sort-edges"`) with a real
//!   start timestamp and the **counter delta** captured between its
//!   `push_phase`/`pop_phase` boundaries;
//! * [`ProfileReport`] — the per-run aggregate: totals plus every span,
//!   with derived metrics (achieved-vs-peak bandwidth, hit rates) and a
//!   hand-rolled JSON serialization (same style as [`crate::trace`], no
//!   external dependencies).
//!
//! Everything here is deterministic: two identical runs produce
//! byte-identical reports.

use crate::cache::CacheStats;
use crate::executor::KernelStats;

/// Monotone hardware-counter totals. The device keeps one running
/// instance; spans capture snapshot deltas of it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Counters {
    /// Device-side launches: cycle-simulated kernels *and* analytic
    /// primitive passes (each Thrust-style pass is one launch).
    pub kernel_launches: u64,
    /// Seconds the device spent in launches (kernels + primitive passes),
    /// excluding PCIe transfers and context creation.
    pub kernel_time_s: f64,
    /// Slowest-SM cycle counts, summed over launches.
    pub sm_cycles: f64,
    /// Lane steps (≈ dynamic instructions) across simulated kernels.
    pub lane_steps: u64,
    /// Warp scheduling events across simulated kernels.
    pub warp_steps: u64,
    /// Warp steps whose lanes diverged into >1 effect group.
    pub divergent_steps: u64,
    /// Extra issue slots forced by divergence (Σ groups−1 over divergent
    /// steps) — the "divergence-serialized lanes" counter.
    pub serialized_groups: u64,
    /// Cycles the issue pipelines sat idle waiting on latency.
    pub issue_stall_cycles: f64,
    /// 32 B line transactions (simulated kernels count coalesced lines;
    /// analytic passes count `bytes / line_bytes` per direction).
    pub transactions: u64,
    /// Bytes fetched from DRAM (cache misses + streaming reads).
    pub dram_read_bytes: u64,
    /// Bytes stored to DRAM (write-through stores + streaming writes).
    pub dram_write_bytes: u64,
    /// Texture (read-only) cache probes/hits — Table II's hit-rate column.
    pub tex: CacheStats,
    /// L2 slice probes/hits.
    pub l2: CacheStats,
    /// Host-to-device PCIe bytes.
    pub htod_bytes: u64,
    /// Device-to-host PCIe bytes.
    pub dtoh_bytes: u64,
    /// Kernel-time-weighted occupancy accumulator; divide by
    /// `kernel_time_s` (see [`Counters::occupancy`]).
    pub occupancy_weight: f64,
}

impl Counters {
    /// Total DRAM traffic.
    #[inline]
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Kernel-time-weighted achieved occupancy (0 if no kernel ran).
    pub fn occupancy(&self) -> f64 {
        if self.kernel_time_s > 0.0 {
            self.occupancy_weight / self.kernel_time_s
        } else {
            0.0
        }
    }

    /// Fold a simulated kernel launch into the totals.
    pub(crate) fn absorb_kernel(&mut self, stats: &KernelStats) {
        self.kernel_launches += 1;
        self.kernel_time_s += stats.time_s;
        self.sm_cycles += stats.sm_cycles;
        self.lane_steps += stats.lane_steps;
        self.warp_steps += stats.warp_steps;
        self.divergent_steps += stats.divergent_steps;
        self.serialized_groups += stats.serialized_groups;
        self.issue_stall_cycles += stats.issue_stall_cycles;
        self.transactions += stats.transactions;
        self.dram_read_bytes += stats.dram_read_bytes;
        self.dram_write_bytes += stats.dram_write_bytes;
        self.tex.merge(stats.tex);
        self.l2.merge(stats.l2);
        self.occupancy_weight += stats.occupancy * stats.time_s;
    }

    /// Fold an analytic streaming pass (Thrust-style primitive) into the
    /// totals: the pass reads `read_bytes` and writes `write_bytes`
    /// straight through DRAM in `line_bytes` transactions, with no cache
    /// reuse.
    pub(crate) fn absorb_stream_pass(
        &mut self,
        seconds: f64,
        read_bytes: u64,
        write_bytes: u64,
        line_bytes: u32,
    ) {
        self.kernel_launches += 1;
        self.kernel_time_s += seconds;
        self.transactions +=
            read_bytes.div_ceil(line_bytes as u64) + write_bytes.div_ceil(line_bytes as u64);
        self.dram_read_bytes += read_bytes;
        self.dram_write_bytes += write_bytes;
    }

    /// Component-wise sum (for multi-device and phase merging).
    pub fn add(&mut self, other: &Counters) {
        self.kernel_launches += other.kernel_launches;
        self.kernel_time_s += other.kernel_time_s;
        self.sm_cycles += other.sm_cycles;
        self.lane_steps += other.lane_steps;
        self.warp_steps += other.warp_steps;
        self.divergent_steps += other.divergent_steps;
        self.serialized_groups += other.serialized_groups;
        self.issue_stall_cycles += other.issue_stall_cycles;
        self.transactions += other.transactions;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.tex.merge(other.tex);
        self.l2.merge(other.l2);
        self.htod_bytes += other.htod_bytes;
        self.dtoh_bytes += other.dtoh_bytes;
        self.occupancy_weight += other.occupancy_weight;
    }

    /// Counter delta `self − earlier` (both must come from the same
    /// monotone sequence, `earlier` first).
    pub fn delta(&self, earlier: &Counters) -> Counters {
        Counters {
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            kernel_time_s: self.kernel_time_s - earlier.kernel_time_s,
            sm_cycles: self.sm_cycles - earlier.sm_cycles,
            lane_steps: self.lane_steps - earlier.lane_steps,
            warp_steps: self.warp_steps - earlier.warp_steps,
            divergent_steps: self.divergent_steps - earlier.divergent_steps,
            serialized_groups: self.serialized_groups - earlier.serialized_groups,
            issue_stall_cycles: self.issue_stall_cycles - earlier.issue_stall_cycles,
            transactions: self.transactions - earlier.transactions,
            dram_read_bytes: self.dram_read_bytes - earlier.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes - earlier.dram_write_bytes,
            tex: CacheStats {
                accesses: self.tex.accesses - earlier.tex.accesses,
                hits: self.tex.hits - earlier.tex.hits,
            },
            l2: CacheStats {
                accesses: self.l2.accesses - earlier.l2.accesses,
                hits: self.l2.hits - earlier.l2.hits,
            },
            htod_bytes: self.htod_bytes - earlier.htod_bytes,
            dtoh_bytes: self.dtoh_bytes - earlier.dtoh_bytes,
            occupancy_weight: self.occupancy_weight - earlier.occupancy_weight,
        }
    }
}

/// One closed profiling phase: a named span of device time with the
/// counter activity that happened inside it.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Full phase path, `'/'`-separated (`"preprocess/3-sort-edges"`).
    pub path: String,
    /// Nesting depth (0 = top-level span).
    pub depth: usize,
    /// Device-clock start of the span, seconds.
    pub start_s: f64,
    /// Device-clock end of the span, seconds.
    pub end_s: f64,
    /// Index into the device time log of the first charged op inside the
    /// span (with [`Span::end_op`], the span's op range).
    pub first_op: usize,
    /// One past the last charged op inside the span.
    pub end_op: usize,
    /// Counter delta captured between the span's boundaries.
    pub counters: Counters,
}

impl Span {
    #[inline]
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Achieved DRAM bandwidth over the span, GB/s.
    pub fn achieved_bandwidth_gbs(&self) -> f64 {
        let d = self.duration_s();
        if d > 0.0 {
            self.counters.dram_bytes() as f64 / d / 1e9
        } else {
            0.0
        }
    }
}

/// An open span on the device's phase stack.
#[derive(Clone, Debug)]
pub(crate) struct OpenSpan {
    pub(crate) path: String,
    pub(crate) depth: usize,
    pub(crate) start_s: f64,
    pub(crate) first_op: usize,
    pub(crate) snapshot: Counters,
}

/// A profiler span re-expressed on a clock-base-free timeline: integer
/// nanoseconds relative to a caller-chosen origin, computed purely from
/// the per-op modeled durations (each schedule-independent) summed in log
/// order. Two sessions that run the same ops produce identical `RelSpan`s
/// even when their device clocks started from different bases — the
/// property the serving layer's byte-identical request traces rely on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelSpan {
    /// Full phase path (`"count/count-kernel"`).
    pub path: String,
    /// Nesting depth relative to the exported window (0 = outermost).
    pub depth: usize,
    /// Modeled start, nanoseconds from the window origin.
    pub start_ns: u64,
    /// Modeled duration, nanoseconds.
    pub dur_ns: u64,
}

/// Re-express the spans closed at or after `span_mark` relative to the op
/// at `log_mark`: span boundaries become prefix sums of the op durations
/// from `log_mark`, quantized to nanoseconds. Rounding the two prefix
/// sums (rather than the difference) keeps nesting containment exact
/// after quantization. Spans whose op range starts before `log_mark` are
/// skipped — they belong to an earlier window.
pub fn relative_spans(
    spans: &[Span],
    log: &[crate::device::TimedOp],
    span_mark: usize,
    log_mark: usize,
) -> Vec<RelSpan> {
    // cum[i] = modeled seconds of ops[log_mark .. log_mark + i].
    let window = &log[log_mark.min(log.len())..];
    let mut cum = Vec::with_capacity(window.len() + 1);
    let mut acc = 0.0f64;
    cum.push(0.0);
    for op in window {
        acc += op.seconds;
        cum.push(acc);
    }
    let to_ns = |s: f64| (s * 1e9).round() as u64;
    let base_depth = spans[span_mark.min(spans.len())..]
        .iter()
        .map(|s| s.depth)
        .min()
        .unwrap_or(0);
    spans[span_mark.min(spans.len())..]
        .iter()
        .filter(|s| s.first_op >= log_mark && s.end_op <= log.len())
        .map(|s| {
            let start_ns = to_ns(cum[s.first_op - log_mark]);
            let end_ns = to_ns(cum[s.end_op - log_mark]);
            RelSpan {
                path: s.path.clone(),
                depth: s.depth - base_depth.min(s.depth),
                start_ns,
                dur_ns: end_ns - start_ns,
            }
        })
        .collect()
}

/// Aggregated profile of one device run: totals plus every closed span,
/// in completion order, with the device identity needed to derive
/// achieved-vs-peak figures.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileReport {
    /// Device preset name (e.g. `"GTX 980"`).
    pub device: String,
    /// Peak DRAM bandwidth of the preset, GB/s.
    pub peak_bandwidth_gbs: f64,
    /// Devices merged into this report (1 for a single-device run).
    pub devices: usize,
    /// Total device-clock seconds covered.
    pub total_s: f64,
    /// Whole-run counter totals.
    pub totals: Counters,
    /// Closed spans, in completion order (children before parents).
    pub spans: Vec<Span>,
}

impl ProfileReport {
    /// Find a span by exact path (first match in completion order).
    pub fn span(&self, path: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Top-level spans only (depth 0), in start order.
    pub fn top_level(&self) -> Vec<&Span> {
        let mut tops: Vec<&Span> = self.spans.iter().filter(|s| s.depth == 0).collect();
        tops.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        tops
    }

    /// Merge per-device reports of the same pipeline into one: counters
    /// sum, durations take the max (devices run concurrently), spans are
    /// grouped by path.
    pub fn merged(reports: &[ProfileReport]) -> ProfileReport {
        let mut out = ProfileReport {
            device: reports
                .first()
                .map(|r| r.device.clone())
                .unwrap_or_default(),
            peak_bandwidth_gbs: reports.iter().map(|r| r.peak_bandwidth_gbs).sum(),
            devices: reports.iter().map(|r| r.devices).sum(),
            total_s: reports.iter().map(|r| r.total_s).fold(0.0, f64::max),
            totals: Counters::default(),
            spans: Vec::new(),
        };
        for r in reports {
            out.totals.add(&r.totals);
            for s in &r.spans {
                if let Some(existing) = out.spans.iter_mut().find(|e| e.path == s.path) {
                    existing.counters.add(&s.counters);
                    existing.start_s = existing.start_s.min(s.start_s);
                    existing.end_s = existing.end_s.max(s.end_s);
                } else {
                    out.spans.push(s.clone());
                }
            }
        }
        out
    }

    /// Serialize to JSON (hand-rolled, no serde; deterministic key order
    /// and number formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + 512 * self.spans.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"device\": {},\n", json_string(&self.device)));
        out.push_str(&format!(
            "  \"peak_bandwidth_gbs\": {},\n",
            json_f64(self.peak_bandwidth_gbs)
        ));
        out.push_str(&format!("  \"devices\": {},\n", self.devices));
        out.push_str(&format!("  \"total_s\": {},\n", json_f64(self.total_s)));
        out.push_str("  \"totals\": ");
        push_counters_json(&mut out, &self.totals, "  ");
        out.push_str(",\n  \"phases\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"path\": {},\n", json_string(&s.path)));
            out.push_str(&format!("      \"depth\": {},\n", s.depth));
            out.push_str(&format!("      \"start_s\": {},\n", json_f64(s.start_s)));
            out.push_str(&format!(
                "      \"duration_s\": {},\n",
                json_f64(s.duration_s())
            ));
            out.push_str(&format!(
                "      \"achieved_bandwidth_gbs\": {},\n",
                json_f64(s.achieved_bandwidth_gbs())
            ));
            out.push_str("      \"counters\": ");
            push_counters_json(&mut out, &s.counters, "      ");
            out.push_str("\n    }");
            if i + 1 != self.spans.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn push_counters_json(out: &mut String, c: &Counters, indent: &str) {
    let fields: Vec<(&str, String)> = vec![
        ("kernel_launches", c.kernel_launches.to_string()),
        ("kernel_time_s", json_f64(c.kernel_time_s)),
        ("sm_cycles", json_f64(c.sm_cycles)),
        ("lane_steps", c.lane_steps.to_string()),
        ("warp_steps", c.warp_steps.to_string()),
        ("divergent_steps", c.divergent_steps.to_string()),
        ("serialized_groups", c.serialized_groups.to_string()),
        ("issue_stall_cycles", json_f64(c.issue_stall_cycles)),
        ("transactions", c.transactions.to_string()),
        ("dram_read_bytes", c.dram_read_bytes.to_string()),
        ("dram_write_bytes", c.dram_write_bytes.to_string()),
        ("dram_bytes", c.dram_bytes().to_string()),
        ("tex_accesses", c.tex.accesses.to_string()),
        ("tex_hits", c.tex.hits.to_string()),
        ("tex_hit_rate", json_f64(c.tex.hit_rate())),
        ("l2_accesses", c.l2.accesses.to_string()),
        ("l2_hits", c.l2.hits.to_string()),
        ("l2_hit_rate", json_f64(c.l2.hit_rate())),
        ("htod_bytes", c.htod_bytes.to_string()),
        ("dtoh_bytes", c.dtoh_bytes.to_string()),
        ("occupancy", json_f64(c.occupancy())),
    ];
    out.push_str("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        out.push_str(indent);
        out.push_str(&format!("  \"{k}\": {v}"));
        if i + 1 != fields.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push('}');
}

/// Deterministic JSON number formatting (shortest round-trip; non-finite
/// values clamp to 0, which JSON cannot represent).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Minimal JSON string escaping (same rules as `trace::json_string`).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters(scale: u64) -> Counters {
        Counters {
            kernel_launches: scale,
            kernel_time_s: scale as f64 * 0.5,
            sm_cycles: scale as f64 * 100.0,
            lane_steps: scale * 10,
            warp_steps: scale * 3,
            divergent_steps: scale,
            serialized_groups: scale,
            issue_stall_cycles: scale as f64,
            transactions: scale * 4,
            dram_read_bytes: scale * 128,
            dram_write_bytes: scale * 64,
            tex: CacheStats {
                accesses: scale * 8,
                hits: scale * 6,
            },
            l2: CacheStats {
                accesses: scale * 2,
                hits: scale,
            },
            htod_bytes: scale * 1000,
            dtoh_bytes: scale * 10,
            occupancy_weight: scale as f64 * 0.25,
        }
    }

    #[test]
    fn delta_inverts_add() {
        let a = sample_counters(3);
        let mut b = a;
        b.add(&sample_counters(2));
        assert_eq!(b.delta(&a), sample_counters(2));
    }

    #[test]
    fn occupancy_is_time_weighted() {
        let c = sample_counters(4);
        assert!((c.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(Counters::default().occupancy(), 0.0);
    }

    #[test]
    fn stream_pass_attribution_counts_lines() {
        let mut c = Counters::default();
        c.absorb_stream_pass(0.001, 100, 64, 32);
        assert_eq!(c.kernel_launches, 1);
        assert_eq!(c.transactions, 4 + 2);
        assert_eq!(c.dram_read_bytes, 100);
        assert_eq!(c.dram_write_bytes, 64);
        assert_eq!(c.dram_bytes(), 164);
    }

    #[test]
    fn report_json_is_balanced_and_escaped() {
        let report = ProfileReport {
            device: "Test \"G\"PU".into(),
            peak_bandwidth_gbs: 224.0,
            devices: 1,
            total_s: 0.5,
            totals: sample_counters(5),
            spans: vec![Span {
                path: "phase/with\nnewline".into(),
                depth: 1,
                start_s: 0.0,
                end_s: 0.25,
                first_op: 0,
                end_op: 0,
                counters: sample_counters(2),
            }],
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\\\"G\\\"PU"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"tex_hit_rate\": 0.75"));
    }

    #[test]
    fn relative_spans_are_clock_base_free() {
        use crate::config::DeviceConfig;
        use crate::device::Device;

        // Two devices run the same phased ops, but the second has already
        // charged unrelated work (a different clock base). The relative
        // spans of the common window must be identical.
        let run = |dev: &mut Device| {
            let span_mark = dev.spans().len();
            let log_mark = dev.time_log().len();
            dev.push_phase("outer");
            let buf = dev.htod_copy(&[1u32, 2, 3, 4]).unwrap();
            dev.push_phase("inner");
            let _ = dev.dtoh(&buf);
            dev.pop_phase();
            dev.pop_phase();
            relative_spans(dev.spans(), dev.time_log(), span_mark, log_mark)
        };
        let mut cold = Device::new(DeviceConfig::gtx_980());
        cold.preinit_context();
        cold.reset_clock();
        let a = run(&mut cold);

        let mut warm = Device::new(DeviceConfig::gtx_980());
        warm.preinit_context();
        warm.reset_clock();
        let junk = warm.htod_copy(&[9u32; 1024]).unwrap();
        let _ = warm.dtoh(&junk);
        let b = run(&mut warm);

        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Completion order: inner closes first, outer last.
        assert_eq!(a[0].path, "outer/inner");
        assert_eq!(a[1].path, "outer");
        assert_eq!(a[1].start_ns, 0);
        assert!(a[0].start_ns > 0, "inner starts after the htod copy");
        // Quantized nesting stays contained.
        assert!(a[0].start_ns + a[0].dur_ns <= a[1].start_ns + a[1].dur_ns);
        assert_eq!(a[0].depth, 1);
        assert_eq!(a[1].depth, 0);
    }

    #[test]
    fn merged_reports_sum_counters_and_max_durations() {
        let mk = |total: f64| ProfileReport {
            device: "C2050".into(),
            peak_bandwidth_gbs: 144.0,
            devices: 1,
            total_s: total,
            totals: sample_counters(1),
            spans: vec![Span {
                path: "count/kernel".into(),
                depth: 0,
                start_s: 0.0,
                end_s: total,
                first_op: 0,
                end_op: 0,
                counters: sample_counters(1),
            }],
        };
        let m = ProfileReport::merged(&[mk(1.0), mk(2.0)]);
        assert_eq!(m.devices, 2);
        assert_eq!(m.total_s, 2.0);
        assert_eq!(m.totals, {
            let mut c = sample_counters(1);
            c.add(&sample_counters(1));
            c
        });
        assert_eq!(m.spans.len(), 1);
        assert_eq!(m.spans[0].end_s, 2.0);
        assert_eq!(m.spans[0].counters.dram_read_bytes, 256);
    }
}
