//! The kernel programming model: per-thread resumable state machines.
//!
//! A simulated kernel is a [`Kernel`] that spawns one [`Lane`] per thread.
//! Each scheduling event, the warp executor calls [`Lane::step`] on every
//! active lane in lockstep; the lane performs the *functional* part of one
//! instruction (reading device memory through the [`MemView`], updating its
//! private state) and returns the [`Effect`] to charge for *timing* —
//! exactly the split a cycle-level simulator needs. Divergence appears
//! naturally when lanes of one warp return different effect kinds.

/// What one lane did in one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// A global-memory load. `cached` marks loads issued through the
    /// read-only/texture path (`const __restrict__` pointers, §III-D4);
    /// uncached loads bypass the per-SM cache and go straight to L2.
    Read { addr: u64, bytes: u32, cached: bool },
    /// A global-memory store. The value is buffered by the executor and
    /// committed when the kernel completes (our kernels only write
    /// lane-private slots, so ordering is immaterial).
    Write { addr: u64, bytes: u32, value: u64 },
    /// Pure ALU work.
    Compute { cycles: u32 },
    /// An on-chip shared-memory load against a scratch window (hash-table
    /// bucket probes / chain walks). Costs no cache or DRAM traffic; the
    /// executor charges `shared_latency` scaled by the warp's bank-conflict
    /// degree. A multi-word access models a linear chain walk over
    /// consecutive slots. `spilled` marks accesses to tables that exceeded
    /// the per-warp shared-memory budget and live in global scratch
    /// instead: those are priced as uncached global loads (L2/DRAM).
    SharedRead {
        addr: u64,
        bytes: u32,
        spilled: bool,
    },
    /// An on-chip shared-memory store (hash-table slot insert). Buffered
    /// and committed like a global store so the scratch window holds real
    /// data, but charged through the shared-memory bank model unless
    /// `spilled` (then it is priced as a write-through global store).
    SharedWrite {
        addr: u64,
        bytes: u32,
        value: u64,
        spilled: bool,
    },
    /// Lane finished; it will not be stepped again.
    Done,
}

impl Effect {
    /// Discriminant used for divergence grouping. Spilled shared accesses
    /// keep the shared kinds: they are the same instruction in the source
    /// program, only the modeled backing store differs.
    #[inline]
    pub(crate) fn kind(&self) -> u8 {
        match self {
            Effect::Read { cached: true, .. } => 0,
            Effect::Read { cached: false, .. } => 1,
            Effect::Write { .. } => 2,
            Effect::Compute { .. } => 3,
            Effect::SharedRead { .. } => 4,
            Effect::SharedWrite { .. } => 5,
            Effect::Done => 6,
        }
    }
}

/// Read-only functional view of device memory, handed to lanes.
#[derive(Clone, Copy)]
pub struct MemView<'a> {
    data: &'a [u8],
}

impl<'a> MemView<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        MemView { data }
    }

    /// Load a little-endian `u32` at a device address.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let i = addr as usize;
        u32::from_le_bytes([
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ])
    }

    /// Load a little-endian `i32`.
    #[inline]
    pub fn read_i32(&self, addr: u64) -> i32 {
        self.read_u32(addr) as i32
    }

    /// Load a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let lo = self.read_u32(addr) as u64;
        let hi = self.read_u32(addr + 4) as u64;
        (hi << 32) | lo
    }
}

/// One simulated thread.
pub trait Lane: Send {
    /// Execute the next instruction. Must return [`Effect::Done`] forever
    /// once finished.
    fn step(&mut self, mem: &MemView<'_>) -> Effect;
}

/// A launchable kernel: a lane factory.
pub trait Kernel: Sync {
    type Lane: Lane;

    /// Create the lane for global thread `tid` of `total` (`total` is the
    /// active thread count — the grid-stride denominator).
    fn spawn(&self, tid: usize, total: usize) -> Self::Lane;

    /// The kernel's declared [`crate::verifier::AccessContract`] for this launch geometry,
    /// if it carries one. Kernels without a contract cannot launch on a
    /// device with the static verifier on (`missing-contract` finding);
    /// with the verifier off the declaration is never consulted.
    fn contract(
        &self,
        _lc: crate::executor::LaunchConfig,
        _total: usize,
    ) -> Option<crate::verifier::AccessContract> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memview_reads_little_endian() {
        let bytes = [0x01, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0x7F];
        let mv = MemView::new(&bytes);
        assert_eq!(mv.read_u32(0), 1);
        assert_eq!(mv.read_u32(4), 0x7FFF_FFFF);
        assert_eq!(mv.read_i32(4), i32::MAX);
        assert_eq!(mv.read_u64(0), 0x7FFF_FFFF_0000_0001);
    }

    #[test]
    fn effect_kinds_separate_cached_and_uncached_reads() {
        let a = Effect::Read {
            addr: 0,
            bytes: 4,
            cached: true,
        };
        let b = Effect::Read {
            addr: 0,
            bytes: 4,
            cached: false,
        };
        assert_ne!(a.kind(), b.kind());
        assert_ne!(Effect::Done.kind(), Effect::Compute { cycles: 1 }.kind());
    }
}
