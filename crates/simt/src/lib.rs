//! # tc-simt — a SIMT GPU simulator
//!
//! This crate stands in for the CUDA devices of the paper (see DESIGN.md §2).
//! It is *not* a general-purpose GPU simulator; it models exactly the
//! features the paper's evaluation exercises:
//!
//! * **Execution**: streaming multiprocessors (SMs) holding resident thread
//!   blocks; warps executed in lockstep with divergence serialization; an
//!   in-order issue pipeline per SM with multiple issue slots; latency
//!   hiding across resident warps ([`executor`]).
//! * **Memory**: a device-wide arena with capacity accounting ([`arena`] —
//!   §III-D6's "graph too large to fit" path), per-SM read-only/texture
//!   caches and address-sliced L2 ([`cache`] — §III-D4), warp-level
//!   coalescing into 32 B transactions ([`coalesce`]), DRAM bandwidth
//!   accounting (Table II), and a PCIe transfer model (the paper measures
//!   wall time from the host-to-device copy).
//! * **Device primitives**: functional equivalents of the Thrust routines
//!   the preprocessing phase uses — reduce, scan, radix sort, stream
//!   compaction, transform/unzip ([`primitives`]) — with analytic,
//!   bandwidth-derived timing.
//! * **Kernels**: user-defined per-thread state machines ([`kernel`]) whose
//!   memory traffic is simulated cycle-by-cycle. The triangle-counting
//!   kernel in `tc-core` is written against this interface.
//!
//! * **Analysis**: a compute-sanitizer-style layer ([`sanitizer`]) —
//!   memcheck, initcheck, racecheck, and access-pattern lints over the
//!   simulated memory path, off by default and a true no-op when off —
//!   plus a static launch verifier ([`verifier`]) that proves per-kernel
//!   access contracts in-bounds and race-free before a launch runs.
//! * **Clusters**: a multi-node topology with a latency + bandwidth
//!   interconnect cost model ([`cluster`]) layered on the per-node PCIe
//!   model, for the sharded engine in `tc-engine`.
//!
//! Simulated time is deterministic: the same kernel on the same device
//! preset always reports the same cycle count, cache hit rate, and DRAM
//! traffic.

#![forbid(unsafe_code)]

pub mod arena;
pub mod cache;
pub mod cluster;
pub mod coalesce;
pub mod config;
pub mod device;
pub mod error;
pub mod executor;
pub mod kernel;
pub mod multi;
pub mod pool;
pub mod primitives;
pub mod profiler;
pub mod sanitizer;
pub mod trace;
pub mod verifier;

pub use arena::{DeviceBuffer, DeviceScalar};
pub use cluster::{Cluster, ClusterTopology, Interconnect};
pub use config::DeviceConfig;
pub use device::{Device, TimedOp};
pub use error::SimtError;
pub use executor::{KernelStats, LaunchConfig};
pub use kernel::{Effect, Kernel, Lane, MemView};
pub use multi::DeviceGroup;
pub use pool::{DeviceLease, DevicePool, PoolTicket};
pub use profiler::{Counters, ProfileReport, Span};
pub use sanitizer::{Finding, FindingKind, Lint, LintKind, SanitizerMode, SanitizerReport};
pub use verifier::{
    Access, AccessContract, AffineFootprint, Interval, VerifierFinding, VerifierFindingKind,
    VerifierReport,
};
