//! Compute-sanitizer-style analysis over the simulated memory path.
//!
//! Real CUDA triangle-counting work leans on `compute-sanitizer`
//! (memcheck / initcheck / racecheck) because the kernels share raw device
//! addresses through handles exactly like our [`crate::arena::Arena`] /
//! [`crate::kernel::MemView`] pair. This module gives the simulator the
//! same safety net:
//!
//! * **memcheck** — a shadow allocation map over the arena classifies every
//!   access (host `read_at`/`write_at`/`read_slice`/`write_slice`, kernel
//!   `MemView` reads, and every [`crate::executor::PendingWrite`] commit) as
//!   in-bounds, one-past-the-end (the guard window faithful merge kernels
//!   use), out-of-bounds, or use-after-free;
//! * **initcheck** — a per-byte init bitmap flags reads of device bytes no
//!   host copy or committed store ever wrote. Kernel stores are buffered
//!   until the launch retires, so kernel reads are checked against the
//!   *pre-launch* bitmap — the memory they actually observe;
//! * **racecheck** — the executor's per-launch access log is swept for
//!   overlapping same-launch accesses from different lanes (write-write and
//!   read-write, with no intervening kernel boundary);
//! * **lints** — a static pass over the recorded access stream flags
//!   uncoalesced hot loops and divergence-heavy launches. Lints are
//!   advisories, not findings: the paper's own merge kernel is legitimately
//!   divergence-prone, so lints never fail a clean-suite gate.
//!
//! Findings accumulate into a deterministic [`SanitizerReport`]
//! (hand-rolled JSON, same style as [`crate::profiler::ProfileReport`]):
//! each finding carries the offending address, the implicated buffer, the
//! lane (for kernel accesses), and the kernel/phase attribution taken from
//! the profiler's span stack. With [`SanitizerMode::Off`] nothing is
//! recorded or checked — the simulator's modeled statistics are
//! byte-identical to a build without the sanitizer.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

use crate::executor::KernelStats;
use crate::profiler::json_string;

/// Bytes past an allocation's logical end that a read may touch without a
/// `Check`-mode finding: faithful kernels issue a benign one-past-the-end
/// load (the paper's merge loop reads `edge[++u_it]` with `u_it == u_end`
/// on its final iteration), and the arena keeps 8 guard bytes for exactly
/// that access. `Paranoid` mode reports these reads anyway.
pub const GUARD_BYTES: u64 = 8;

/// How much checking the sanitizer does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SanitizerMode {
    /// No shadow state, no checks, no recording — a true no-op.
    #[default]
    Off,
    /// memcheck + initcheck + racecheck + lints. Guard-window reads (the
    /// benign one-past-the-end pattern) are tolerated.
    Check,
    /// Everything `Check` does, plus a finding for every read that lands in
    /// an allocation's padding/guard window — strict one-past-the-end
    /// detection.
    Paranoid,
}

impl SanitizerMode {
    /// Whether any checking is active.
    #[inline]
    pub fn is_on(self) -> bool {
        self != SanitizerMode::Off
    }

    /// Canonical lowercase token (CLI flags, backend tokens, JSON).
    pub fn token(self) -> &'static str {
        match self {
            SanitizerMode::Off => "off",
            SanitizerMode::Check => "check",
            SanitizerMode::Paranoid => "paranoid",
        }
    }
}

impl fmt::Display for SanitizerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// The shared access record lives in [`crate::verifier`]: the sanitizer's
/// dynamic checks and the verifier's static-containment check consume the
/// same executor-recorded stream.
pub use crate::verifier::Access;

/// The kind of a sanitizer finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// Read outside every allocation (or past an allocation's guard window).
    OobRead,
    /// Store outside the logical bytes of any live allocation.
    OobWrite,
    /// Read within a freed allocation's address range.
    UseAfterFreeRead,
    /// Store within a freed allocation's address range.
    UseAfterFreeWrite,
    /// Read of device bytes nothing ever wrote.
    UninitRead,
    /// Same-launch overlapping stores from different lanes.
    WriteWriteRace,
    /// Same-launch read overlapping a different lane's store.
    ReadWriteRace,
    /// Read in an allocation's padding/guard window (`Paranoid` only).
    GuardRead,
    /// `free` of an address that is not a live allocation.
    InvalidFree,
}

impl FindingKind {
    /// Canonical kebab-case token (JSON `kind` field).
    pub fn token(self) -> &'static str {
        match self {
            FindingKind::OobRead => "oob-read",
            FindingKind::OobWrite => "oob-write",
            FindingKind::UseAfterFreeRead => "use-after-free-read",
            FindingKind::UseAfterFreeWrite => "use-after-free-write",
            FindingKind::UninitRead => "uninit-read",
            FindingKind::WriteWriteRace => "write-write-race",
            FindingKind::ReadWriteRace => "read-write-race",
            FindingKind::GuardRead => "guard-read",
            FindingKind::InvalidFree => "invalid-free",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One sanitizer finding, fully attributed.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    pub kind: FindingKind,
    /// Offending device address.
    pub addr: u64,
    /// Access width in bytes (0 for `invalid-free`).
    pub bytes: u32,
    /// Base address of the implicated allocation, if one could be found.
    pub buffer: Option<u64>,
    /// Global thread id of the issuing lane (`None` for host-side ops).
    pub lane: Option<u32>,
    /// Operation label — the kernel's launch label, or the host op
    /// (`"htod"`, `"dtoh"`, `"free"`, …).
    pub kernel: String,
    /// Profiler span path active when the op ran (`""` outside any phase).
    pub phase: String,
}

/// The kind of an access-pattern lint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintKind {
    /// A launch whose loads coalesce poorly: line transactions per read
    /// effect far above the lockstep ideal.
    Uncoalesced,
    /// A launch where most warp steps diverged into multiple issue groups.
    DivergenceHeavy,
}

impl LintKind {
    pub fn token(self) -> &'static str {
        match self {
            LintKind::Uncoalesced => "uncoalesced",
            LintKind::DivergenceHeavy => "divergence-heavy",
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One access-pattern advisory for a launch (never a gate failure).
#[derive(Clone, Debug, PartialEq)]
pub struct Lint {
    pub kind: LintKind,
    /// Launch label of the offending kernel.
    pub kernel: String,
    /// Profiler span path active at launch time.
    pub phase: String,
    /// The triggering ratio (transactions per read, or divergent fraction).
    pub ratio: f64,
    /// Sample size behind the ratio (read effects, or warp steps).
    pub samples: u64,
}

/// Deterministic aggregate of every finding and lint a device observed.
#[derive(Clone, Debug, PartialEq)]
pub struct SanitizerReport {
    pub mode: SanitizerMode,
    /// Device preset name.
    pub device: String,
    pub findings: Vec<Finding>,
    pub lints: Vec<Lint>,
}

impl SanitizerReport {
    /// No findings (lints are advisories and do not count).
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Merge per-device reports (multi-GPU striping) in device-index order.
    pub fn merged(reports: &[SanitizerReport]) -> SanitizerReport {
        let mut out = SanitizerReport {
            mode: reports
                .iter()
                .map(|r| r.mode)
                .max()
                .unwrap_or(SanitizerMode::Off),
            device: reports
                .first()
                .map(|r| r.device.clone())
                .unwrap_or_default(),
            findings: Vec::new(),
            lints: Vec::new(),
        };
        for r in reports {
            out.findings.extend(r.findings.iter().cloned());
            out.lints.extend(r.lints.iter().cloned());
        }
        out
    }

    /// Serialize to JSON (hand-rolled, no serde; deterministic key order
    /// and number formatting — same style as
    /// [`crate::profiler::ProfileReport::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 192 * self.findings.len());
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"mode\": {},\n",
            json_string(self.mode.token())
        ));
        out.push_str(&format!("  \"device\": {},\n", json_string(&self.device)));
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"kind\": {},\n",
                json_string(f.kind.token())
            ));
            out.push_str(&format!("      \"addr\": {},\n", f.addr));
            out.push_str(&format!("      \"bytes\": {},\n", f.bytes));
            match f.buffer {
                Some(b) => out.push_str(&format!("      \"buffer\": {b},\n")),
                None => out.push_str("      \"buffer\": null,\n"),
            }
            match f.lane {
                Some(l) => out.push_str(&format!("      \"lane\": {l},\n")),
                None => out.push_str("      \"lane\": null,\n"),
            }
            out.push_str(&format!("      \"kernel\": {},\n", json_string(&f.kernel)));
            out.push_str(&format!("      \"phase\": {}\n", json_string(&f.phase)));
            out.push_str("    }");
            if i + 1 != self.findings.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"lints\": [\n");
        for (i, l) in self.lints.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"kind\": {},\n",
                json_string(l.kind.token())
            ));
            out.push_str(&format!("      \"kernel\": {},\n", json_string(&l.kernel)));
            out.push_str(&format!("      \"phase\": {},\n", json_string(&l.phase)));
            out.push_str(&format!("      \"ratio\": {},\n", json_f64(l.ratio)));
            out.push_str(&format!("      \"samples\": {}\n", l.samples));
            out.push_str("    }");
            if i + 1 != self.lints.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// A raw (not yet attributed) violation recorded by the shadow while an
/// arena op ran. The [`crate::Device`] drains these and attaches the op
/// label and profiler phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RawViolation {
    pub(crate) kind: FindingKind,
    pub(crate) addr: u64,
    pub(crate) bytes: u32,
    pub(crate) buffer: Option<u64>,
    pub(crate) lane: Option<u32>,
}

impl RawViolation {
    pub(crate) fn into_finding(self, kernel: &str, phase: &str) -> Finding {
        Finding {
            kind: self.kind,
            addr: self.addr,
            bytes: self.bytes,
            buffer: self.buffer,
            lane: self.lane,
            kernel: kernel.to_string(),
            phase: phase.to_string(),
        }
    }
}

/// One allocation's shadow record. Freed allocations are retained (live =
/// false) so later accesses classify as use-after-free rather than plain
/// OOB; the arena never reuses addresses within a session, so records stay
/// unambiguous until a rewind clears them.
#[derive(Clone, Copy, Debug)]
struct ShadowAlloc {
    addr: u64,
    /// Logical bytes requested (capacity accounting granularity).
    bytes: u64,
    live: bool,
}

/// Shadow memory over an [`crate::arena::Arena`]: the allocation map plus
/// the per-byte init bitmap, and a queue of raw violations produced by
/// host-side ops (kernel launches are checked in bulk by
/// [`check_launch`]). The queue sits behind a `RefCell` because reads
/// (`read_slice`/`read_at`) take `&Arena`.
#[derive(Debug)]
pub(crate) struct Shadow {
    mode: SanitizerMode,
    allocs: BTreeMap<u64, ShadowAlloc>,
    /// One bit per arena byte: 1 = written at least once.
    init: Vec<u64>,
    pending: RefCell<Vec<RawViolation>>,
}

impl Shadow {
    pub(crate) fn new(mode: SanitizerMode) -> Self {
        Shadow {
            mode,
            allocs: BTreeMap::new(),
            init: Vec::new(),
            pending: RefCell::new(Vec::new()),
        }
    }

    #[inline]
    pub(crate) fn mode(&self) -> SanitizerMode {
        self.mode
    }

    /// Record a fresh allocation spanning `[addr, addr + span)` with
    /// `bytes` logical bytes, marking the whole span uninitialized.
    pub(crate) fn on_alloc(&mut self, addr: u64, bytes: u64, span: u64) {
        self.ensure_bitmap(addr + span);
        set_bit_range(&mut self.init, addr, addr + span, false);
        self.allocs.insert(
            addr,
            ShadowAlloc {
                addr,
                bytes,
                live: true,
            },
        );
    }

    /// Record an allocation that predates the sanitizer being switched on:
    /// conservatively treat its contents as initialized.
    pub(crate) fn on_adopt(&mut self, addr: u64, bytes: u64, span: u64) {
        self.ensure_bitmap(addr + span);
        set_bit_range(&mut self.init, addr, addr + bytes, true);
        self.allocs.insert(
            addr,
            ShadowAlloc {
                addr,
                bytes,
                live: true,
            },
        );
    }

    pub(crate) fn on_free(&mut self, addr: u64) {
        if let Some(a) = self.allocs.get_mut(&addr) {
            a.live = false;
        }
    }

    pub(crate) fn on_invalid_free(&mut self, addr: u64) {
        self.pending.get_mut().push(RawViolation {
            kind: FindingKind::InvalidFree,
            addr,
            bytes: 0,
            buffer: None,
            lane: None,
        });
    }

    /// The arena rewound its bump pointer: addresses will be reused, so the
    /// old records are void.
    pub(crate) fn on_reset(&mut self) {
        self.allocs.clear();
        self.init.iter_mut().for_each(|w| *w = 0);
    }

    /// A host-side store of `bytes` at `addr` (htod / `write_slice` /
    /// `write_at` / poke).
    pub(crate) fn host_write(&mut self, addr: u64, bytes: u64) {
        let mut out = Vec::new();
        self.check_write_into(addr, bytes, None, &mut out);
        self.pending.get_mut().extend(out);
        self.mark_init(addr, bytes);
    }

    /// A host-side load of `bytes` at `addr` (dtoh / `read_slice` /
    /// `read_at` / peek).
    pub(crate) fn host_read(&self, addr: u64, bytes: u64) {
        let mut out = Vec::new();
        self.check_read_into(addr, bytes, None, &mut out);
        if !out.is_empty() {
            self.pending.borrow_mut().extend(out);
        }
    }

    /// Drain host-op violations recorded since the last drain.
    pub(crate) fn take_pending(&self) -> Vec<RawViolation> {
        std::mem::take(&mut *self.pending.borrow_mut())
    }

    /// Clone the queued violations without draining them.
    pub(crate) fn pending_snapshot(&self) -> Vec<RawViolation> {
        self.pending.borrow().clone()
    }

    /// Whether a store of `bytes` at `addr` lies fully within the logical
    /// bytes of a live allocation (commit admission).
    pub(crate) fn write_allowed(&self, addr: u64, bytes: u64) -> bool {
        match self.locate(addr) {
            Some(a) if a.live => addr + bytes <= a.addr + a.bytes,
            _ => false,
        }
    }

    /// Mark `[addr, addr + bytes)` as initialized (called on every host
    /// write and every committed kernel store).
    pub(crate) fn mark_init(&mut self, addr: u64, bytes: u64) {
        self.ensure_bitmap(addr + bytes);
        set_bit_range(&mut self.init, addr, addr + bytes, true);
    }

    fn ensure_bitmap(&mut self, end: u64) {
        let words = (end as usize).div_ceil(64);
        if self.init.len() < words {
            self.init.resize(words, 0);
        }
    }

    /// The allocation record containing or nearest below `addr`.
    fn locate(&self, addr: u64) -> Option<&ShadowAlloc> {
        self.allocs.range(..=addr).next_back().map(|(_, a)| a)
    }

    fn any_uninit(&self, from: u64, to: u64) -> bool {
        !all_bits_set(&self.init, from, to)
    }

    /// Classify a read of `bytes` at `addr` and append any violations.
    pub(crate) fn check_read_into(
        &self,
        addr: u64,
        bytes: u64,
        lane: Option<u32>,
        out: &mut Vec<RawViolation>,
    ) {
        if bytes == 0 {
            return;
        }
        let end = addr + bytes;
        let mk = |kind, buffer| RawViolation {
            kind,
            addr,
            bytes: bytes as u32,
            buffer,
            lane,
        };
        match self.locate(addr) {
            None => out.push(mk(FindingKind::OobRead, None)),
            Some(a) if !a.live => out.push(mk(FindingKind::UseAfterFreeRead, Some(a.addr))),
            Some(a) => {
                let logical_end = a.addr + a.bytes;
                if end <= logical_end {
                    if self.any_uninit(addr, end) {
                        out.push(mk(FindingKind::UninitRead, Some(a.addr)));
                    }
                } else if end <= logical_end + GUARD_BYTES {
                    // The benign one-past-the-end pattern: tolerated under
                    // Check (initcheck still covers the in-bounds prefix),
                    // reported under Paranoid.
                    if addr < logical_end && self.any_uninit(addr, logical_end) {
                        out.push(mk(FindingKind::UninitRead, Some(a.addr)));
                    }
                    if self.mode >= SanitizerMode::Paranoid {
                        out.push(mk(FindingKind::GuardRead, Some(a.addr)));
                    }
                } else {
                    out.push(mk(FindingKind::OobRead, Some(a.addr)));
                }
            }
        }
    }

    /// Bounds-only read classification for scratch (shared-memory-modeled)
    /// accesses: memcheck and use-after-free apply, initcheck does not —
    /// hash kernels initialize their tables in-launch, which the pre-launch
    /// init bitmap cannot see.
    pub(crate) fn check_read_bounds_into(
        &self,
        addr: u64,
        bytes: u64,
        lane: Option<u32>,
        out: &mut Vec<RawViolation>,
    ) {
        if bytes == 0 {
            return;
        }
        let end = addr + bytes;
        let mk = |kind, buffer| RawViolation {
            kind,
            addr,
            bytes: bytes as u32,
            buffer,
            lane,
        };
        match self.locate(addr) {
            None => out.push(mk(FindingKind::OobRead, None)),
            Some(a) if !a.live => out.push(mk(FindingKind::UseAfterFreeRead, Some(a.addr))),
            Some(a) => {
                let logical_end = a.addr + a.bytes;
                if end <= logical_end {
                    // In bounds: clean (no init requirement).
                } else if end <= logical_end + GUARD_BYTES {
                    if self.mode >= SanitizerMode::Paranoid {
                        out.push(mk(FindingKind::GuardRead, Some(a.addr)));
                    }
                } else {
                    out.push(mk(FindingKind::OobRead, Some(a.addr)));
                }
            }
        }
    }

    /// Classify a store of `bytes` at `addr` and append any violations.
    /// Stores get no guard window: every byte must be logically owned.
    pub(crate) fn check_write_into(
        &self,
        addr: u64,
        bytes: u64,
        lane: Option<u32>,
        out: &mut Vec<RawViolation>,
    ) {
        if bytes == 0 {
            return;
        }
        let mk = |kind, buffer| RawViolation {
            kind,
            addr,
            bytes: bytes as u32,
            buffer,
            lane,
        };
        match self.locate(addr) {
            None => out.push(mk(FindingKind::OobWrite, None)),
            Some(a) if !a.live => out.push(mk(FindingKind::UseAfterFreeWrite, Some(a.addr))),
            Some(a) => {
                if addr + bytes > a.addr + a.bytes {
                    out.push(mk(FindingKind::OobWrite, Some(a.addr)));
                }
            }
        }
    }
}

/// Set or clear the bit range `[from, to)` of a 1-bit-per-byte bitmap.
fn set_bit_range(bits: &mut [u64], from: u64, to: u64, val: bool) {
    if from >= to {
        return;
    }
    let (fw, fb) = ((from / 64) as usize, from % 64);
    let (tw, tb) = ((to / 64) as usize, to % 64);
    debug_assert!(tw < bits.len() || (tw == bits.len() && tb == 0));
    let head = u64::MAX << fb;
    let tail = if tb == 0 { u64::MAX } else { !(u64::MAX << tb) };
    if fw == tw {
        let mask = head & tail;
        if val {
            bits[fw] |= mask;
        } else {
            bits[fw] &= !mask;
        }
        return;
    }
    if val {
        bits[fw] |= head;
        bits[fw + 1..tw].iter_mut().for_each(|w| *w = u64::MAX);
        if tb != 0 {
            bits[tw] |= tail;
        }
    } else {
        bits[fw] &= !head;
        bits[fw + 1..tw].iter_mut().for_each(|w| *w = 0);
        if tb != 0 {
            bits[tw] &= !tail;
        }
    }
}

/// Whether every bit of `[from, to)` is set. Bits beyond the bitmap's end
/// count as unset.
fn all_bits_set(bits: &[u64], from: u64, to: u64) -> bool {
    if from >= to {
        return true;
    }
    let (fw, fb) = ((from / 64) as usize, from % 64);
    let (tw, tb) = ((to / 64) as usize, to % 64);
    let needed = if tb == 0 { tw } else { tw + 1 };
    if needed > bits.len() {
        return false;
    }
    let head = u64::MAX << fb;
    let tail = if tb == 0 { u64::MAX } else { !(u64::MAX << tb) };
    if fw == tw {
        let mask = head & tail;
        return bits[fw] & mask == mask;
    }
    if bits[fw] & head != head {
        return false;
    }
    if bits[fw + 1..tw].iter().any(|&w| w != u64::MAX) {
        return false;
    }
    tb == 0 || bits[tw] & tail == tail
}

/// Largest kernel read effect width in bytes (the chunk-scan kernel's
/// `int4`-style load is 16; 64 leaves headroom). Bounds the racecheck
/// overlap window.
const MAX_ACCESS_BYTES: u64 = 64;

/// Check one retired launch: memcheck + initcheck every recorded access
/// against the pre-launch shadow, racecheck the access log, and compute
/// the access-pattern lints. Returns attributed findings and lints. The
/// caller commits the buffered stores afterwards (via
/// [`crate::arena::Arena::commit_store`], which marks init and skips
/// stores the shadow rejects). `skip_racecheck` elides *only* the WW/RW
/// race sweeps — the static verifier sets it for launches whose contract
/// already proves race-freedom; memcheck, initcheck, and the lints still
/// run, so findings on clean launches are byte-identical either way.
pub(crate) fn check_launch(
    shadow: &Shadow,
    accesses: &[Access],
    stats: &KernelStats,
    label: &str,
    phase: &str,
    skip_racecheck: bool,
) -> (Vec<Finding>, Vec<Lint>) {
    let mut raw: Vec<RawViolation> = Vec::new();
    let mut reads: Vec<&Access> = Vec::new();
    let mut writes: Vec<&Access> = Vec::new();
    for a in accesses {
        if a.scratch {
            // Shared-memory-modeled scratch accesses: memcheck bounds only.
            // They stay out of the racecheck interval lists and the lint
            // denominators — the kernel synchronizes its table accesses
            // (build barrier + warp-synchronous probes), and the coalescing
            // lint's transaction arithmetic only describes global traffic.
            if a.write {
                shadow.check_write_into(a.addr, a.bytes as u64, Some(a.lane), &mut raw);
            } else {
                shadow.check_read_bounds_into(a.addr, a.bytes as u64, Some(a.lane), &mut raw);
            }
        } else if a.write {
            shadow.check_write_into(a.addr, a.bytes as u64, Some(a.lane), &mut raw);
            writes.push(a);
        } else {
            shadow.check_read_into(a.addr, a.bytes as u64, Some(a.lane), &mut raw);
            reads.push(a);
        }
    }

    // --- racecheck: write-write ---
    // Sort the store intervals and sweep maximal overlapping runs; a run
    // touched by more than one lane is one conflict (the paper's kernels
    // write only lane-private slots, so any overlap is a bug). Skipped
    // wholesale when the static verifier already proved race-freedom.
    let mut ws: Vec<(u64, u64, u32)> = if skip_racecheck {
        Vec::new()
    } else {
        writes
            .iter()
            .map(|a| (a.addr, a.addr + a.bytes as u64, a.lane))
            .collect()
    };
    ws.sort_unstable();
    let mut i = 0;
    while i < ws.len() {
        let (run_addr, mut run_end, first_lane) = ws[i];
        let mut other_lane: Option<u32> = None;
        let mut j = i + 1;
        while j < ws.len() && ws[j].0 < run_end {
            run_end = run_end.max(ws[j].1);
            if ws[j].2 != first_lane && other_lane.is_none_or(|l| ws[j].2 < l) {
                other_lane = Some(ws[j].2);
            }
            j += 1;
        }
        if let Some(other) = other_lane {
            raw.push(RawViolation {
                kind: FindingKind::WriteWriteRace,
                addr: run_addr,
                bytes: (run_end - run_addr).min(u32::MAX as u64) as u32,
                buffer: shadow.locate(run_addr).map(|a| a.addr),
                lane: Some(first_lane.min(other)),
            });
        }
        i = j;
    }

    // --- racecheck: read-write ---
    // For each store, find reads from other lanes overlapping it. Reads
    // are bounded-width, so only a bounded window of the sorted read list
    // can overlap; one finding per store suffices. (`ws` is empty when
    // the race sweeps are skipped, so this loop no-ops then.)
    let mut rs: Vec<(u64, u64, u32)> = if ws.is_empty() {
        Vec::new()
    } else {
        reads
            .iter()
            .map(|a| (a.addr, a.addr + a.bytes as u64, a.lane))
            .collect()
    };
    rs.sort_unstable();
    for &(waddr, wend, wlane) in &ws {
        let lo = waddr.saturating_sub(MAX_ACCESS_BYTES);
        let start = rs.partition_point(|r| r.0 < lo);
        for &(raddr, rend, rlane) in &rs[start..] {
            if raddr >= wend {
                break;
            }
            if rend > waddr && rlane != wlane {
                raw.push(RawViolation {
                    kind: FindingKind::ReadWriteRace,
                    addr: waddr.max(raddr),
                    bytes: (wend.min(rend) - waddr.max(raddr)) as u32,
                    buffer: shadow.locate(waddr).map(|a| a.addr),
                    lane: Some(rlane),
                });
                break;
            }
        }
    }

    let findings = raw
        .into_iter()
        .map(|r| r.into_finding(label, phase))
        .collect();

    // --- access-pattern lints (advisories, not findings) ---
    let mut lints = Vec::new();
    let read_count = reads.len() as u64;
    let read_txns = stats.transactions.saturating_sub(writes.len() as u64);
    if read_count >= 2048 && read_txns * 2 > read_count {
        lints.push(Lint {
            kind: LintKind::Uncoalesced,
            kernel: label.to_string(),
            phase: phase.to_string(),
            ratio: read_txns as f64 / read_count as f64,
            samples: read_count,
        });
    }
    if stats.warp_steps >= 256 && stats.divergent_steps * 10 > stats.warp_steps * 3 {
        lints.push(Lint {
            kind: LintKind::DivergenceHeavy,
            kernel: label.to_string(),
            phase: phase.to_string(),
            ratio: stats.divergent_steps as f64 / stats.warp_steps as f64,
            samples: stats.warp_steps,
        });
    }
    (findings, lints)
}

/// Seeded-bug self-test: four intentionally broken kernels — an OOB read,
/// an uninitialized read, a write-write race, and a hash-table bucket
/// probe past its shared scratch window — each of which the sanitizer must
/// detect. CI runs this (`tcount sanitize-selftest`) to prove the checks
/// are alive, the mirror image of proving the real suite clean.
pub mod selftest {
    use super::{FindingKind, SanitizerMode, SanitizerReport};
    use crate::arena::DeviceBuffer;
    use crate::config::DeviceConfig;
    use crate::device::Device;
    use crate::executor::LaunchConfig;
    use crate::kernel::{Effect, Kernel, Lane, MemView};

    /// Outcome of one seeded-bug kernel.
    #[derive(Clone, Debug)]
    pub struct SeededBug {
        /// Kernel name (`"oob-read"`, `"uninit-read"`, `"write-write-race"`).
        pub name: &'static str,
        /// The finding kind the kernel is seeded to produce.
        pub expected: FindingKind,
        /// Whether the sanitizer produced at least one finding of that kind.
        pub detected: bool,
        /// The full report of the seeded run.
        pub report: SanitizerReport,
    }

    /// One-shot lane: returns a fixed effect on its first step, `Done`
    /// after.
    struct OneShotLane {
        effect: Option<Effect>,
    }

    impl Lane for OneShotLane {
        fn step(&mut self, _mem: &MemView<'_>) -> Effect {
            self.effect.take().unwrap_or(Effect::Done)
        }
    }

    /// Lane 0 reads 4 bytes deep inside the buffer's padding — past the
    /// logical end and past the guard window.
    struct OobReadKernel {
        data: DeviceBuffer<u32>,
    }

    impl Kernel for OobReadKernel {
        type Lane = OneShotLane;
        fn spawn(&self, tid: usize, _total: usize) -> OneShotLane {
            OneShotLane {
                effect: (tid == 0).then_some(Effect::Read {
                    // 64 bytes past the logical end: well beyond GUARD_BYTES,
                    // but still inside the arena's 256 B span padding.
                    addr: self.data.addr() + self.data.byte_len() + 64,
                    bytes: 4,
                    cached: true,
                }),
            }
        }
    }

    /// Lane 0 reads element 0 of a buffer nothing ever wrote.
    struct UninitReadKernel {
        data: DeviceBuffer<u32>,
    }

    impl Kernel for UninitReadKernel {
        type Lane = OneShotLane;
        fn spawn(&self, tid: usize, _total: usize) -> OneShotLane {
            OneShotLane {
                effect: (tid == 0).then_some(Effect::Read {
                    addr: self.data.addr(),
                    bytes: 4,
                    cached: true,
                }),
            }
        }
    }

    /// Every lane stores its tid to the same result slot — the classic
    /// missing-`atomicAdd` bug.
    struct RaceKernel {
        result: DeviceBuffer<u64>,
    }

    impl Kernel for RaceKernel {
        type Lane = OneShotLane;
        fn spawn(&self, tid: usize, _total: usize) -> OneShotLane {
            OneShotLane {
                effect: Some(Effect::Write {
                    addr: self.result.addr(),
                    bytes: 8,
                    value: tid as u64,
                }),
            }
        }
    }

    /// Lane 0 probes a hash-table bucket one stride past the end of its
    /// scratch window — the classic `hash & mask` miscomputation. The
    /// access is a shared-memory effect, so this proves memcheck covers
    /// the scratch path even though initcheck/racecheck exempt it.
    struct HashOobProbeKernel {
        table: DeviceBuffer<u32>,
    }

    impl Kernel for HashOobProbeKernel {
        type Lane = OneShotLane;
        fn spawn(&self, tid: usize, _total: usize) -> OneShotLane {
            OneShotLane {
                effect: (tid == 0).then_some(Effect::SharedRead {
                    addr: self.table.addr() + self.table.byte_len() + 64,
                    bytes: 4,
                    spilled: false,
                }),
            }
        }
    }

    fn seeded_device() -> Device {
        let cfg = DeviceConfig::nvs_5200m()
            .with_unlimited_memory()
            .with_sanitizer(SanitizerMode::Check);
        let mut dev = Device::new(cfg);
        dev.preinit_context();
        dev.reset_clock();
        dev
    }

    fn outcome(name: &'static str, expected: FindingKind, dev: &Device) -> SeededBug {
        let report = dev
            .sanitizer_report()
            .expect("seeded device runs with the sanitizer on");
        SeededBug {
            name,
            expected,
            detected: report.findings.iter().any(|f| f.kind == expected),
            report,
        }
    }

    /// Run the four seeded-bug kernels, each on a fresh sanitized device.
    pub fn run() -> Vec<SeededBug> {
        let lc = LaunchConfig::new(1, 64);
        let mut out = Vec::with_capacity(4);

        let mut dev = seeded_device();
        let data = dev.alloc::<u32>(16).unwrap();
        dev.poke(&data, &[7u32; 16]);
        let kernel = OobReadKernel { data };
        dev.with_phase("selftest", |d| d.launch("SeededOobRead", lc, &kernel))
            .unwrap();
        out.push(outcome("oob-read", FindingKind::OobRead, &dev));

        let mut dev = seeded_device();
        let data = dev.alloc::<u32>(64).unwrap();
        let kernel = UninitReadKernel { data };
        dev.with_phase("selftest", |d| d.launch("SeededUninitRead", lc, &kernel))
            .unwrap();
        out.push(outcome("uninit-read", FindingKind::UninitRead, &dev));

        let mut dev = seeded_device();
        let result = dev.alloc::<u64>(1).unwrap();
        dev.poke(&result, &[0u64]);
        let kernel = RaceKernel { result };
        dev.with_phase("selftest", |d| d.launch("SeededRace", lc, &kernel))
            .unwrap();
        out.push(outcome(
            "write-write-race",
            FindingKind::WriteWriteRace,
            &dev,
        ));

        let mut dev = seeded_device();
        let table = dev.alloc::<u32>(256).unwrap();
        let kernel = HashOobProbeKernel { table };
        dev.with_phase("selftest", |d| d.launch("SeededHashOobProbe", lc, &kernel))
            .unwrap();
        out.push(outcome("hash-oob-probe", FindingKind::OobRead, &dev));

        out
    }

    /// Whether every seeded bug was detected.
    pub fn all_detected(bugs: &[SeededBug]) -> bool {
        !bugs.is_empty() && bugs.iter().all(|b| b.detected)
    }

    /// Deterministic JSON for the whole self-test (CI gate artifact).
    pub fn to_json(bugs: &[SeededBug]) -> String {
        let mut out = String::from("{\n  \"seeded_bugs\": [\n");
        for (i, b) in bugs.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", b.name));
            out.push_str(&format!(
                "      \"expected\": \"{}\",\n",
                b.expected.token()
            ));
            out.push_str(&format!("      \"detected\": {},\n", b.detected));
            out.push_str("      \"report\": ");
            // Indent the nested report to keep the output readable.
            let nested = b.report.to_json();
            let nested = nested.trim_end().replace('\n', "\n      ");
            out.push_str(&nested);
            out.push_str("\n    }");
            if i + 1 != bugs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  ],\n  \"all_detected\": {}\n}}\n",
            all_detected(bugs)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_range_ops_cover_word_boundaries() {
        let mut bits = vec![0u64; 4];
        set_bit_range(&mut bits, 3, 130, true);
        assert!(all_bits_set(&bits, 3, 130));
        assert!(!all_bits_set(&bits, 2, 4));
        assert!(!all_bits_set(&bits, 129, 131));
        set_bit_range(&mut bits, 64, 128, false);
        assert!(!all_bits_set(&bits, 60, 70));
        assert!(all_bits_set(&bits, 3, 64));
        assert!(all_bits_set(&bits, 128, 130));
        // Empty ranges are trivially set; ranges past the bitmap are not.
        assert!(all_bits_set(&bits, 5, 5));
        assert!(!all_bits_set(&bits, 250, 300));
    }

    #[test]
    fn shadow_classifies_reads() {
        let mut sh = Shadow::new(SanitizerMode::Check);
        sh.on_alloc(0, 64, 256); // u32[16]
        sh.on_alloc(256, 8, 256);
        sh.mark_init(0, 64);
        let mut out = Vec::new();
        // In-bounds initialized: clean.
        sh.check_read_into(0, 4, None, &mut out);
        assert!(out.is_empty());
        // One-past-the-end within the guard window: clean under Check.
        sh.check_read_into(64, 4, None, &mut out);
        assert!(out.is_empty());
        // Past the guard window: OOB.
        sh.check_read_into(128, 4, None, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, FindingKind::OobRead);
        assert_eq!(out[0].buffer, Some(0));
        // Uninitialized second buffer.
        out.clear();
        sh.check_read_into(256, 8, None, &mut out);
        assert_eq!(out[0].kind, FindingKind::UninitRead);
        // Use-after-free.
        sh.on_free(0);
        out.clear();
        sh.check_read_into(16, 4, None, &mut out);
        assert_eq!(out[0].kind, FindingKind::UseAfterFreeRead);
    }

    #[test]
    fn paranoid_reports_guard_reads() {
        let mut sh = Shadow::new(SanitizerMode::Paranoid);
        sh.on_alloc(0, 64, 256);
        sh.mark_init(0, 64);
        let mut out = Vec::new();
        sh.check_read_into(64, 4, None, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, FindingKind::GuardRead);
    }

    #[test]
    fn writes_get_no_guard_window() {
        let mut sh = Shadow::new(SanitizerMode::Check);
        sh.on_alloc(0, 64, 256);
        let mut out = Vec::new();
        sh.check_write_into(60, 4, Some(3), &mut out);
        assert!(out.is_empty());
        sh.check_write_into(64, 4, Some(3), &mut out);
        assert_eq!(out[0].kind, FindingKind::OobWrite);
        assert_eq!(out[0].lane, Some(3));
        assert!(sh.write_allowed(60, 4));
        assert!(!sh.write_allowed(64, 4));
    }

    #[test]
    fn racecheck_finds_conflicting_writes_once() {
        let mut sh = Shadow::new(SanitizerMode::Check);
        sh.on_alloc(0, 64, 256);
        sh.mark_init(0, 64);
        let accesses: Vec<Access> = (0..32)
            .map(|lane| Access {
                lane,
                addr: 8,
                bytes: 8,
                write: true,
                scratch: false,
                spilled: false,
            })
            .collect();
        let stats = KernelStats::default();
        let (findings, _) = check_launch(&sh, &accesses, &stats, "k", "p", false);
        let races: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::WriteWriteRace)
            .collect();
        assert_eq!(races.len(), 1, "one finding per overlapping run");
        assert_eq!(races[0].addr, 8);
        assert_eq!(races[0].lane, Some(0));
        assert_eq!(races[0].kernel, "k");
        assert_eq!(races[0].phase, "p");
    }

    #[test]
    fn racecheck_finds_read_write_conflicts_but_not_private_slots() {
        let mut sh = Shadow::new(SanitizerMode::Check);
        sh.on_alloc(0, 256, 256);
        sh.mark_init(0, 256);
        let stats = KernelStats::default();
        // Lane-private slots: no race.
        let private: Vec<Access> = (0..16)
            .flat_map(|lane| {
                [
                    Access {
                        lane,
                        addr: lane as u64 * 8,
                        bytes: 8,
                        write: true,
                        scratch: false,
                        spilled: false,
                    },
                    Access {
                        lane,
                        addr: lane as u64 * 8,
                        bytes: 8,
                        write: false,
                        scratch: false,
                        spilled: false,
                    },
                ]
            })
            .collect();
        let (findings, _) = check_launch(&sh, &private, &stats, "k", "", false);
        assert!(findings.is_empty(), "{findings:?}");
        // Lane 1 reads what lane 0 writes: read-write race.
        let racy = vec![
            Access {
                lane: 0,
                addr: 16,
                bytes: 8,
                write: true,
                scratch: false,
                spilled: false,
            },
            Access {
                lane: 1,
                addr: 16,
                bytes: 8,
                write: false,
                scratch: false,
                spilled: false,
            },
        ];
        let (findings, _) = check_launch(&sh, &racy, &stats, "k", "", false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::ReadWriteRace);
        assert_eq!(findings[0].lane, Some(1));
    }

    #[test]
    fn scratch_accesses_skip_init_and_race_but_not_bounds() {
        let mut sh = Shadow::new(SanitizerMode::Check);
        sh.on_alloc(0, 256, 512); // scratch table, never initialized
        let stats = KernelStats::default();
        // Uninitialized probe, colliding write/read from different lanes:
        // all clean because the accesses are scratch-synchronized.
        let synced = vec![
            Access {
                lane: 0,
                addr: 16,
                bytes: 4,
                write: true,
                scratch: true,
                spilled: false,
            },
            Access {
                lane: 1,
                addr: 16,
                bytes: 12, // chain walk across the written slot
                write: false,
                scratch: true,
                spilled: false,
            },
        ];
        let (findings, _) = check_launch(&sh, &synced, &stats, "k", "", false);
        assert!(findings.is_empty(), "{findings:?}");
        // But bounds still apply: a probe past the scratch window is OOB.
        let oob = vec![Access {
            lane: 2,
            addr: 256 + GUARD_BYTES + 64,
            bytes: 4,
            write: false,
            scratch: true,
            spilled: false,
        }];
        let (findings, _) = check_launch(&sh, &oob, &stats, "k", "", false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::OobRead);
        assert_eq!(findings[0].lane, Some(2));
    }

    #[test]
    fn report_json_is_deterministic_and_balanced() {
        let report = SanitizerReport {
            mode: SanitizerMode::Check,
            device: "GTX 980".into(),
            findings: vec![Finding {
                kind: FindingKind::OobRead,
                addr: 1234,
                bytes: 4,
                buffer: Some(1024),
                lane: Some(7),
                kernel: "CountTriangles".into(),
                phase: "count/count-kernel".into(),
            }],
            lints: vec![Lint {
                kind: LintKind::DivergenceHeavy,
                kernel: "CountTriangles".into(),
                phase: "count/count-kernel".into(),
                ratio: 0.5,
                samples: 1000,
            }],
        };
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"kind\": \"oob-read\""));
        assert!(json.contains("\"lane\": 7"));
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains("\"kind\": \"divergence-heavy\""));
    }

    #[test]
    fn merged_reports_concatenate_in_order() {
        let mk = |addr| SanitizerReport {
            mode: SanitizerMode::Check,
            device: "C2050".into(),
            findings: vec![Finding {
                kind: FindingKind::UninitRead,
                addr,
                bytes: 4,
                buffer: None,
                lane: None,
                kernel: "k".into(),
                phase: String::new(),
            }],
            lints: Vec::new(),
        };
        let m = SanitizerReport::merged(&[mk(1), mk(2)]);
        assert_eq!(m.findings.len(), 2);
        assert_eq!(m.findings[0].addr, 1);
        assert_eq!(m.findings[1].addr, 2);
        assert!(!m.is_clean());
        assert!(
            SanitizerReport::merged(&[]).is_clean(),
            "empty merge is clean"
        );
    }

    #[test]
    fn selftest_detects_all_four_seeded_bugs() {
        let bugs = selftest::run();
        assert_eq!(bugs.len(), 4);
        for b in &bugs {
            assert!(b.detected, "{} must be detected", b.name);
        }
        assert!(selftest::all_detected(&bugs));
        // Deterministic, byte-identical JSON across runs.
        let a = selftest::to_json(&bugs);
        let b = selftest::to_json(&selftest::run());
        assert_eq!(a, b);
        assert!(a.contains("\"all_detected\": true"));
    }
}
