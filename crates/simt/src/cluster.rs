//! Simulated multi-node clusters: topology + interconnect cost model.
//!
//! The paper's multi-GPU scheme ([`crate::multi`]) lives inside one host:
//! every device hangs off the same PCIe root and the whole graph is
//! broadcast to each card. A cluster generalizes that to N *nodes* of M
//! devices each, joined by a network interconnect that is slower than
//! PCIe and pays a per-message latency. [`Cluster`] models exactly that
//! seam: uploads to a device on node 0 (where the host data lives) cost
//! only the PCIe copy, uploads to any other node first cross the
//! interconnect — latency plus bytes over bandwidth — and then the
//! target's PCIe link.
//!
//! Like everything in this crate the costs are analytic and deterministic:
//! the same bytes over the same [`Interconnect`] always charge the same
//! modeled seconds.

use crate::arena::{DeviceBuffer, DeviceScalar};
use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::SimtError;

/// The inter-node network: a latency + bandwidth cost model layered on top
/// of the per-node PCIe model.
///
/// Defaults approximate a commodity InfiniBand fabric (2 µs message
/// latency, 10 GB/s effective bandwidth) — slower than every PCIe preset
/// in [`DeviceConfig`], so crossing nodes is never free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interconnect {
    /// Per-message latency in seconds (paid once per transfer).
    pub latency_s: f64,
    /// Effective bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect {
            latency_s: 2e-6,
            bandwidth_gbs: 10.0,
        }
    }
}

impl Interconnect {
    /// Modeled seconds to move `bytes` across the interconnect.
    #[inline]
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// The shape of a cluster: `nodes` hosts with `devices_per_node` devices
/// each. Device `i` (flat index) lives on node `i / devices_per_node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterTopology {
    pub nodes: usize,
    pub devices_per_node: usize,
}

impl ClusterTopology {
    /// A topology of `nodes` × `devices_per_node`. Both must be ≥ 1.
    pub fn new(nodes: usize, devices_per_node: usize) -> Self {
        assert!(nodes >= 1, "a cluster needs at least one node");
        assert!(devices_per_node >= 1, "a node needs at least one device");
        ClusterTopology {
            nodes,
            devices_per_node,
        }
    }

    /// Total devices in the cluster.
    #[inline]
    pub fn num_devices(&self) -> usize {
        self.nodes * self.devices_per_node
    }

    /// The node a flat device index lives on.
    #[inline]
    pub fn node_of(&self, device: usize) -> usize {
        device / self.devices_per_node
    }

    /// The canonical `<n>x<m>` label (`2x2`, `4x1`, …).
    pub fn label(&self) -> String {
        format!("{}x{}", self.nodes, self.devices_per_node)
    }
}

/// A set of simulated devices spread across cluster nodes, with the
/// interconnect charged on every cross-node movement.
///
/// Host data (graph shards) is assumed resident on node 0; an upload to a
/// device on another node first pays the interconnect transfer, then the
/// target's PCIe copy. Per-device clocks advance independently — the
/// cluster's wall clock is [`Cluster::elapsed_max`], exactly like
/// [`crate::multi::DeviceGroup`].
#[derive(Debug)]
pub struct Cluster {
    topology: ClusterTopology,
    interconnect: Interconnect,
    devices: Vec<Device>,
}

impl Cluster {
    /// `topology.num_devices()` identical devices.
    pub fn homogeneous(
        topology: ClusterTopology,
        interconnect: Interconnect,
        cfg: &DeviceConfig,
    ) -> Self {
        Cluster {
            topology,
            interconnect,
            devices: (0..topology.num_devices())
                .map(|_| Device::new(cfg.clone()))
                .collect(),
        }
    }

    #[inline]
    pub fn topology(&self) -> ClusterTopology {
        self.topology
    }

    #[inline]
    pub fn interconnect(&self) -> Interconnect {
        self.interconnect
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    #[inline]
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    #[inline]
    pub fn device_mut(&mut self, i: usize) -> &mut Device {
        &mut self.devices[i]
    }

    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Pre-create every context (outside the measured window, like the
    /// paper's `cudaFree(NULL)`).
    pub fn preinit_all(&mut self) {
        for d in &mut self.devices {
            d.preinit_context();
        }
    }

    pub fn reset_clocks(&mut self) {
        for d in &mut self.devices {
            d.reset_clock();
        }
    }

    /// Upload host data to one device, charging the interconnect first
    /// when the device lives off node 0 (the shard must travel from the
    /// host holding the graph to the owning node before its PCIe copy).
    pub fn htod_scatter<T: DeviceScalar>(
        &mut self,
        device: usize,
        data: &[T],
    ) -> Result<DeviceBuffer<T>, SimtError> {
        self.charge_internode(
            device,
            (data.len() * T::BYTES) as u64,
            "internode: shard send",
        );
        self.devices[device].htod_copy(data)
    }

    /// Charge the interconnect cost of moving `bytes` to/from `device`'s
    /// node, on that device's clock. A no-op for devices on node 0 — they
    /// share the host's node, so only PCIe (charged elsewhere) applies.
    pub fn charge_internode(&mut self, device: usize, bytes: u64, label: &str) {
        if self.topology.node_of(device) == 0 {
            return;
        }
        let cost = self.interconnect.transfer_seconds(bytes);
        self.devices[device].advance(label, cost);
    }

    /// The cluster's wall clock: the slowest device.
    pub fn elapsed_max(&self) -> f64 {
        self.devices.iter().map(Device::elapsed).fold(0.0, f64::max)
    }

    /// The largest per-device peak memory footprint, in bytes — the
    /// capacity a real deployment of this topology would have to provision
    /// per card.
    pub fn mem_peak_max(&self) -> u64 {
        self.devices.iter().map(Device::mem_peak).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_maps_flat_indices_to_nodes() {
        let t = ClusterTopology::new(2, 3);
        assert_eq!(t.num_devices(), 6);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(2), 0);
        assert_eq!(t.node_of(3), 1);
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.label(), "2x3");
    }

    #[test]
    fn interconnect_cost_is_latency_plus_bandwidth() {
        let ic = Interconnect {
            latency_s: 1e-6,
            bandwidth_gbs: 10.0,
        };
        let t = ic.transfer_seconds(10_000_000_000);
        assert!((t - (1e-6 + 1.0)).abs() < 1e-12);
        // Zero bytes still pay the message latency.
        assert_eq!(ic.transfer_seconds(0), 1e-6);
    }

    #[test]
    fn scatter_to_remote_nodes_charges_the_interconnect() {
        let cfg = DeviceConfig::tesla_c2050().with_unlimited_memory();
        let mut cluster =
            Cluster::homogeneous(ClusterTopology::new(2, 1), Interconnect::default(), &cfg);
        cluster.preinit_all();
        cluster.reset_clocks();
        let data: Vec<u32> = (0..4096).collect();
        let b0 = cluster.htod_scatter(0, &data).unwrap();
        let b1 = cluster.htod_scatter(1, &data).unwrap();
        assert_eq!(cluster.device(0).peek(&b0), data);
        assert_eq!(cluster.device(1).peek(&b1), data);
        // Device 1 sits on node 1: same PCIe copy, plus the interconnect.
        let local = cluster.device(0).elapsed();
        let remote = cluster.device(1).elapsed();
        let expected_extra = cluster.interconnect().transfer_seconds((4096 * 4) as u64);
        assert!(
            (remote - local - expected_extra).abs() < 1e-12,
            "remote {remote} vs local {local} (+{expected_extra})"
        );
        assert!(cluster.elapsed_max() >= remote);
    }

    #[test]
    fn internode_charges_are_deterministic() {
        let cfg = DeviceConfig::gtx_980().with_unlimited_memory();
        let run = || {
            let mut c =
                Cluster::homogeneous(ClusterTopology::new(2, 2), Interconnect::default(), &cfg);
            c.preinit_all();
            c.reset_clocks();
            let data: Vec<u64> = (0..1000).collect();
            for i in 0..4 {
                c.htod_scatter(i, &data).unwrap();
                c.charge_internode(i, 8, "internode: result send");
            }
            (0..4).map(|i| c.device(i).elapsed()).collect::<Vec<f64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mem_peak_max_tracks_the_largest_device() {
        let cfg = DeviceConfig::gtx_980().with_unlimited_memory();
        let mut c = Cluster::homogeneous(ClusterTopology::new(1, 2), Interconnect::default(), &cfg);
        c.preinit_all();
        let big: Vec<u32> = vec![0; 10_000];
        let small: Vec<u32> = vec![0; 10];
        c.htod_scatter(0, &big).unwrap();
        c.htod_scatter(1, &small).unwrap();
        assert!(c.mem_peak_max() >= 40_000);
    }
}
