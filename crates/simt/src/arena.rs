//! Device memory: a flat arena with capacity accounting.
//!
//! Allocation is a 256-byte-aligned bump with explicit free. Freed bytes
//! return to the capacity budget (so repeated pipelines don't leak), but
//! address space is never reused within one device lifetime — that keeps
//! buffer handles unambiguous and makes the cache simulation's address→set
//! mapping stable. The backing host `Vec` grows on demand; the *simulated*
//! capacity is enforced by the byte budget, which is what the §III-D6
//! "graph too large to fit" logic keys off.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use crate::error::SimtError;
use crate::sanitizer::{RawViolation, SanitizerMode, Shadow};

/// Scalar types that can live in device memory.
pub trait DeviceScalar: Copy + Send + Sync + 'static {
    const BYTES: usize;
    fn write_le(self, out: &mut [u8]);
    fn read_le(src: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl DeviceScalar for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out[..Self::BYTES].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(src: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&src[..Self::BYTES]);
                <$t>::from_le_bytes(b)
            }
        }
    )*};
}

impl_scalar!(u32, i32, u64, i64);

/// Typed handle to a device allocation. Copyable; freeing is done through
/// the owning [`crate::Device`].
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    addr: u64,
    len: usize,
    _t: PhantomData<fn() -> T>,
}

impl<T> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DeviceBuffer<T> {}

impl<T: DeviceScalar> DeviceBuffer<T> {
    pub(crate) fn new(addr: u64, len: usize) -> Self {
        DeviceBuffer {
            addr,
            len,
            _t: PhantomData,
        }
    }

    /// Base device address.
    #[inline]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes occupied.
    #[inline]
    pub fn byte_len(&self) -> u64 {
        (self.len * T::BYTES) as u64
    }

    /// Device address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        debug_assert!(i <= self.len);
        self.addr + (i * T::BYTES) as u64
    }

    /// A sub-range view `[from, to)` of this buffer (no new allocation).
    pub fn slice(&self, from: usize, to: usize) -> DeviceBuffer<T> {
        assert!(
            from <= to && to <= self.len,
            "slice {from}..{to} of len {}",
            self.len
        );
        DeviceBuffer {
            addr: self.addr_of(from),
            len: to - from,
            _t: PhantomData,
        }
    }
}

/// The flat device memory arena.
#[derive(Debug)]
pub struct Arena {
    data: Vec<u8>,
    capacity: u64,
    used: u64,
    peak: u64,
    next: u64,
    live: BTreeMap<u64, u64>,
    /// Sanitizer shadow state (`None` when [`SanitizerMode::Off`] — the
    /// arena then behaves byte-identically to a build without it).
    shadow: Option<Box<Shadow>>,
}

const ALIGN: u64 = 256;

impl Arena {
    pub fn new(capacity: u64) -> Self {
        Arena {
            data: Vec::new(),
            capacity,
            used: 0,
            peak: 0,
            next: 0,
            live: BTreeMap::new(),
            shadow: None,
        }
    }

    /// Install (or remove) the sanitizer shadow. Allocations made before
    /// the switch are adopted with their contents conservatively treated
    /// as initialized.
    pub fn set_sanitizer(&mut self, mode: SanitizerMode) {
        if !mode.is_on() {
            self.shadow = None;
            return;
        }
        let mut sh = Shadow::new(mode);
        for (&addr, &bytes) in &self.live {
            sh.on_adopt(addr, bytes, span_of(bytes));
        }
        self.shadow = Some(Box::new(sh));
    }

    /// The active sanitizer mode.
    #[inline]
    pub fn sanitizer_mode(&self) -> SanitizerMode {
        self.shadow
            .as_deref()
            .map_or(SanitizerMode::Off, Shadow::mode)
    }

    /// The shadow state, when the sanitizer is on.
    #[inline]
    pub(crate) fn shadow(&self) -> Option<&Shadow> {
        self.shadow.as_deref()
    }

    /// Drain raw violations recorded by host-side arena ops since the last
    /// drain (the device attributes them to an op label and phase).
    pub(crate) fn take_violations(&self) -> Vec<RawViolation> {
        self.shadow
            .as_deref()
            .map(Shadow::take_pending)
            .unwrap_or_default()
    }

    /// Clone the currently queued (undrained) raw violations without
    /// draining them — report snapshots must not consume state a later
    /// timed op would attribute.
    pub(crate) fn pending_violations(&self) -> Vec<RawViolation> {
        self.shadow
            .as_deref()
            .map(Shadow::pending_snapshot)
            .unwrap_or_default()
    }

    /// Allocate `bytes`; fails like `cudaMalloc` when the budget is blown.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, SimtError> {
        if self.used.saturating_add(bytes) > self.capacity {
            return Err(SimtError::OutOfMemory {
                requested: bytes,
                available: self.capacity - self.used,
            });
        }
        let addr = self.next;
        // Zero-byte allocations still get a distinct address (CUDA returns
        // distinct non-null pointers too); without this, two empty buffers
        // would alias and double-free.
        let span = span_of(bytes);
        self.next += span;
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        // Keep 8 guard bytes past the last allocation: faithful kernels may
        // issue a benign one-past-the-end load (the paper's merge loop reads
        // `edge[++u_it]` with `u_it == u_end` on its final iteration), and
        // the functional view must not panic on it.
        let end = (addr + span) as usize + 8;
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.live.insert(addr, bytes);
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.on_alloc(addr, bytes, span);
        }
        Ok(addr)
    }

    /// Release an allocation made by [`Arena::alloc`].
    pub fn free(&mut self, addr: u64) -> Result<(), SimtError> {
        match self.live.remove(&addr) {
            Some(bytes) => {
                self.used -= bytes;
                if let Some(sh) = self.shadow.as_deref_mut() {
                    sh.on_free(addr);
                }
                Ok(())
            }
            None => {
                if let Some(sh) = self.shadow.as_deref_mut() {
                    sh.on_invalid_free(addr);
                }
                Err(SimtError::InvalidBuffer { addr })
            }
        }
    }

    /// Rewind the bump pointer and the high-water mark for a fresh session,
    /// if nothing is live. Within a session addresses are never reused (live
    /// buffers must not alias, and the cache model's address→set mapping
    /// must stay stable), but once every allocation has been freed a rewind
    /// is semantically clean — it makes a recycled device allocate the same
    /// addresses a fresh one would, which keeps pooled reuse byte-identical
    /// to cold starts. Returns whether the rewind happened.
    pub fn reset_unused(&mut self) -> bool {
        if !self.live.is_empty() {
            return false;
        }
        self.next = 0;
        self.used = 0;
        self.peak = 0;
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.on_reset();
        }
        true
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of allocated bytes.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Would an additional allocation of `bytes` fit right now?
    #[inline]
    pub fn fits(&self, bytes: u64) -> bool {
        self.used.saturating_add(bytes) <= self.capacity
    }

    /// The live allocation at or nearest below `addr`, as
    /// `(base, logical_bytes)` — the static verifier's bounds oracle.
    /// Callers must still check the queried range against the returned
    /// logical extent: the record nearest below may end before `addr`.
    pub(crate) fn live_alloc_below(&self, addr: u64) -> Option<(u64, u64)> {
        self.live
            .range(..=addr)
            .next_back()
            .map(|(&base, &bytes)| (base, bytes))
    }

    /// Raw backing bytes (for the executor's functional memory view).
    #[inline]
    pub(crate) fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Write a typed slice at a buffer's location.
    pub fn write_slice<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, src: &[T]) {
        assert!(
            src.len() <= buf.len(),
            "write of {} into buffer of {}",
            src.len(),
            buf.len()
        );
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.host_write(buf.addr(), (src.len() * T::BYTES) as u64);
        }
        let base = buf.addr() as usize;
        for (i, &v) in src.iter().enumerate() {
            v.write_le(&mut self.data[base + i * T::BYTES..]);
        }
    }

    /// Read a typed buffer back out.
    pub fn read_slice<T: DeviceScalar>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        if let Some(sh) = self.shadow.as_deref() {
            sh.host_read(buf.addr(), (buf.len() * T::BYTES) as u64);
        }
        let base = buf.addr() as usize;
        (0..buf.len())
            .map(|i| T::read_le(&self.data[base + i * T::BYTES..]))
            .collect()
    }

    /// Read one element.
    #[inline]
    pub fn read_at<T: DeviceScalar>(&self, buf: &DeviceBuffer<T>, i: usize) -> T {
        assert!(i < buf.len());
        if let Some(sh) = self.shadow.as_deref() {
            sh.host_read(buf.addr_of(i), T::BYTES as u64);
        }
        T::read_le(&self.data[buf.addr_of(i) as usize..])
    }

    /// Write one element.
    #[inline]
    pub fn write_at<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) {
        assert!(i < buf.len());
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.host_write(buf.addr_of(i), T::BYTES as u64);
        }
        v.write_le(&mut self.data[buf.addr_of(i) as usize..]);
    }

    /// Commit one buffered kernel store ([`crate::executor::PendingWrite`]).
    /// With the sanitizer on, stores the shadow rejects (OOB or
    /// use-after-free — the launch checker has already recorded the
    /// finding) are skipped so the simulation survives to report them;
    /// accepted stores mark their bytes initialized. Returns whether the
    /// store was applied.
    ///
    /// # Panics
    /// Panics on a store width other than 4 or 8 bytes (our kernels store
    /// only `u32`/`u64`).
    pub fn commit_store(&mut self, addr: u64, bytes: u32, value: u64) -> bool {
        assert!(bytes == 4 || bytes == 8, "unsupported store width {bytes}");
        if let Some(sh) = self.shadow.as_deref_mut() {
            if !sh.write_allowed(addr, bytes as u64) {
                return false;
            }
            sh.mark_init(addr, bytes as u64);
        }
        let dst = &mut self.data[addr as usize..];
        if bytes == 4 {
            (value as u32).write_le(dst);
        } else {
            value.write_le(dst);
        }
        true
    }
}

/// Aligned footprint of an allocation of `bytes` logical bytes.
#[inline]
fn span_of(bytes: u64) -> u64 {
    bytes.div_ceil(ALIGN).max(1) * ALIGN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut a = Arena::new(1024);
        let b1 = a.alloc(400).unwrap();
        assert_eq!(a.used(), 400);
        let b2 = a.alloc(600).unwrap();
        assert_eq!(a.used(), 1000);
        assert_eq!(a.peak(), 1000);
        assert!(a.alloc(100).is_err());
        a.free(b1).unwrap();
        assert_eq!(a.used(), 600);
        let _b3 = a.alloc(100).unwrap();
        assert_eq!(a.peak(), 1000);
        a.free(b2).unwrap();
    }

    #[test]
    fn oom_reports_headroom() {
        let mut a = Arena::new(100);
        a.alloc(60).unwrap();
        match a.alloc(60) {
            Err(SimtError::OutOfMemory {
                requested: 60,
                available: 40,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_free_is_an_error() {
        let mut a = Arena::new(100);
        let b = a.alloc(10).unwrap();
        a.free(b).unwrap();
        assert!(matches!(a.free(b), Err(SimtError::InvalidBuffer { .. })));
    }

    #[test]
    fn addresses_are_aligned_and_disjoint() {
        let mut a = Arena::new(1 << 20);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        assert_eq!(x % ALIGN, 0);
        assert_eq!(y % ALIGN, 0);
        assert!(y >= x + ALIGN);
    }

    #[test]
    fn typed_roundtrip() {
        let mut a = Arena::new(1 << 20);
        let addr = a.alloc(4 * 8).unwrap();
        let buf: DeviceBuffer<u64> = DeviceBuffer::new(addr, 4);
        a.write_slice(&buf, &[1, 2, 3, u64::MAX]);
        assert_eq!(a.read_slice(&buf), vec![1, 2, 3, u64::MAX]);
        a.write_at(&buf, 1, 99);
        assert_eq!(a.read_at(&buf, 1), 99);
    }

    #[test]
    fn buffer_slicing() {
        let buf: DeviceBuffer<u32> = DeviceBuffer::new(256, 10);
        let s = buf.slice(2, 7);
        assert_eq!(s.len(), 5);
        assert_eq!(s.addr(), 256 + 8);
        assert_eq!(s.addr_of(0), buf.addr_of(2));
    }

    #[test]
    #[should_panic(expected = "slice")]
    fn out_of_range_slice_panics() {
        let buf: DeviceBuffer<u32> = DeviceBuffer::new(0, 4);
        let _ = buf.slice(2, 9);
    }

    #[test]
    fn zero_byte_allocations_get_distinct_addresses() {
        let mut a = Arena::new(1 << 20);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
        a.free(x).unwrap();
        a.free(y).unwrap();
    }

    #[test]
    fn fits_matches_alloc_outcome() {
        let mut a = Arena::new(100);
        assert!(a.fits(100));
        a.alloc(80).unwrap();
        assert!(a.fits(20));
        assert!(!a.fits(21));
    }

    #[test]
    fn free_of_unknown_addr_is_an_error() {
        let mut a = Arena::new(1024);
        let b = a.alloc(10).unwrap();
        assert!(matches!(
            a.free(b + ALIGN),
            Err(SimtError::InvalidBuffer { .. })
        ));
        assert_eq!(a.used(), 10, "failed free must not change accounting");
        a.free(b).unwrap();
    }

    #[test]
    fn reset_unused_refuses_while_buffers_live() {
        let mut a = Arena::new(1024);
        let b1 = a.alloc(100).unwrap();
        let b2 = a.alloc(100).unwrap();
        assert!(!a.reset_unused(), "live buffers must block the rewind");
        a.free(b1).unwrap();
        assert!(!a.reset_unused(), "one live buffer still blocks it");
        assert_eq!(a.used(), 100);
        a.free(b2).unwrap();
        assert!(a.reset_unused());
        assert_eq!(a.used(), 0);
        assert_eq!(a.peak(), 0);
        // Post-rewind allocations start from address zero again.
        assert_eq!(a.alloc(10).unwrap(), 0);
    }

    #[test]
    fn shadow_tracks_host_accesses() {
        use crate::sanitizer::{FindingKind, SanitizerMode};
        let mut a = Arena::new(1 << 20);
        a.set_sanitizer(SanitizerMode::Check);
        assert_eq!(a.sanitizer_mode(), SanitizerMode::Check);
        let addr = a.alloc(16).unwrap();
        let buf: DeviceBuffer<u32> = DeviceBuffer::new(addr, 4);
        // Uninitialized read, then clean after a write.
        let _ = a.read_slice(&buf);
        let v = a.take_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, FindingKind::UninitRead);
        a.write_slice(&buf, &[1, 2, 3, 4]);
        let _ = a.read_slice(&buf);
        assert!(a.take_violations().is_empty());
        // Use-after-free read.
        a.free(addr).unwrap();
        let _ = a.read_at(&buf, 0);
        let v = a.take_violations();
        assert_eq!(v[0].kind, FindingKind::UseAfterFreeRead);
        // Invalid free is recorded as a violation too.
        assert!(a.free(addr).is_err());
        let v = a.take_violations();
        assert_eq!(v[0].kind, FindingKind::InvalidFree);
    }

    #[test]
    fn commit_store_skips_rejected_writes_only_when_sanitized() {
        use crate::sanitizer::SanitizerMode;
        let mut a = Arena::new(1 << 20);
        let addr = a.alloc(8).unwrap();
        // Unsanitized: any in-vec store is applied.
        assert!(a.commit_store(addr, 8, 42));
        let buf: DeviceBuffer<u64> = DeviceBuffer::new(addr, 1);
        assert_eq!(a.read_at(&buf, 0), 42);
        // Sanitized: a store past the logical end is rejected and skipped.
        a.set_sanitizer(SanitizerMode::Check);
        assert!(!a.commit_store(addr + 8, 8, 7));
        assert!(a.commit_store(addr, 4, 9));
        assert_eq!(a.read_at(&DeviceBuffer::<u32>::new(addr, 1), 0), 9);
        assert!(a.take_violations().is_empty(), "commit_store records none");
    }

    #[test]
    fn i32_scalar_roundtrip() {
        let mut a = Arena::new(1024);
        let addr = a.alloc(8).unwrap();
        let buf: DeviceBuffer<i32> = DeviceBuffer::new(addr, 2);
        a.write_slice(&buf, &[-5, i32::MAX]);
        assert_eq!(a.read_slice(&buf), vec![-5, i32::MAX]);
    }
}
