//! Device memory: a flat arena with capacity accounting.
//!
//! Allocation is a 256-byte-aligned bump with explicit free. Freed bytes
//! return to the capacity budget (so repeated pipelines don't leak), but
//! address space is never reused within one device lifetime — that keeps
//! buffer handles unambiguous and makes the cache simulation's address→set
//! mapping stable. The backing host `Vec` grows on demand; the *simulated*
//! capacity is enforced by the byte budget, which is what the §III-D6
//! "graph too large to fit" logic keys off.

use std::collections::BTreeMap;
use std::marker::PhantomData;

use crate::error::SimtError;

/// Scalar types that can live in device memory.
pub trait DeviceScalar: Copy + Send + Sync + 'static {
    const BYTES: usize;
    fn write_le(self, out: &mut [u8]);
    fn read_le(src: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl DeviceScalar for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out[..Self::BYTES].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(src: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&src[..Self::BYTES]);
                <$t>::from_le_bytes(b)
            }
        }
    )*};
}

impl_scalar!(u32, i32, u64, i64);

/// Typed handle to a device allocation. Copyable; freeing is done through
/// the owning [`crate::Device`].
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    addr: u64,
    len: usize,
    _t: PhantomData<fn() -> T>,
}

impl<T> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DeviceBuffer<T> {}

impl<T: DeviceScalar> DeviceBuffer<T> {
    pub(crate) fn new(addr: u64, len: usize) -> Self {
        DeviceBuffer {
            addr,
            len,
            _t: PhantomData,
        }
    }

    /// Base device address.
    #[inline]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes occupied.
    #[inline]
    pub fn byte_len(&self) -> u64 {
        (self.len * T::BYTES) as u64
    }

    /// Device address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        debug_assert!(i <= self.len);
        self.addr + (i * T::BYTES) as u64
    }

    /// A sub-range view `[from, to)` of this buffer (no new allocation).
    pub fn slice(&self, from: usize, to: usize) -> DeviceBuffer<T> {
        assert!(
            from <= to && to <= self.len,
            "slice {from}..{to} of len {}",
            self.len
        );
        DeviceBuffer {
            addr: self.addr_of(from),
            len: to - from,
            _t: PhantomData,
        }
    }
}

/// The flat device memory arena.
#[derive(Debug)]
pub struct Arena {
    data: Vec<u8>,
    capacity: u64,
    used: u64,
    peak: u64,
    next: u64,
    live: BTreeMap<u64, u64>,
}

const ALIGN: u64 = 256;

impl Arena {
    pub fn new(capacity: u64) -> Self {
        Arena {
            data: Vec::new(),
            capacity,
            used: 0,
            peak: 0,
            next: 0,
            live: BTreeMap::new(),
        }
    }

    /// Allocate `bytes`; fails like `cudaMalloc` when the budget is blown.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, SimtError> {
        if self.used.saturating_add(bytes) > self.capacity {
            return Err(SimtError::OutOfMemory {
                requested: bytes,
                available: self.capacity - self.used,
            });
        }
        let addr = self.next;
        // Zero-byte allocations still get a distinct address (CUDA returns
        // distinct non-null pointers too); without this, two empty buffers
        // would alias and double-free.
        let span = bytes.div_ceil(ALIGN).max(1) * ALIGN;
        self.next += span;
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        // Keep 8 guard bytes past the last allocation: faithful kernels may
        // issue a benign one-past-the-end load (the paper's merge loop reads
        // `edge[++u_it]` with `u_it == u_end` on its final iteration), and
        // the functional view must not panic on it.
        let end = (addr + span) as usize + 8;
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.live.insert(addr, bytes);
        Ok(addr)
    }

    /// Release an allocation made by [`Arena::alloc`].
    pub fn free(&mut self, addr: u64) -> Result<(), SimtError> {
        match self.live.remove(&addr) {
            Some(bytes) => {
                self.used -= bytes;
                Ok(())
            }
            None => Err(SimtError::InvalidBuffer { addr }),
        }
    }

    /// Rewind the bump pointer and the high-water mark for a fresh session,
    /// if nothing is live. Within a session addresses are never reused (live
    /// buffers must not alias, and the cache model's address→set mapping
    /// must stay stable), but once every allocation has been freed a rewind
    /// is semantically clean — it makes a recycled device allocate the same
    /// addresses a fresh one would, which keeps pooled reuse byte-identical
    /// to cold starts. Returns whether the rewind happened.
    pub fn reset_unused(&mut self) -> bool {
        if !self.live.is_empty() {
            return false;
        }
        self.next = 0;
        self.used = 0;
        self.peak = 0;
        true
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of allocated bytes.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Would an additional allocation of `bytes` fit right now?
    #[inline]
    pub fn fits(&self, bytes: u64) -> bool {
        self.used.saturating_add(bytes) <= self.capacity
    }

    /// Raw backing bytes (for the executor's functional memory view).
    #[inline]
    pub(crate) fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Write a typed slice at a buffer's location.
    pub fn write_slice<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, src: &[T]) {
        assert!(
            src.len() <= buf.len(),
            "write of {} into buffer of {}",
            src.len(),
            buf.len()
        );
        let base = buf.addr() as usize;
        for (i, &v) in src.iter().enumerate() {
            v.write_le(&mut self.data[base + i * T::BYTES..]);
        }
    }

    /// Read a typed buffer back out.
    pub fn read_slice<T: DeviceScalar>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let base = buf.addr() as usize;
        (0..buf.len())
            .map(|i| T::read_le(&self.data[base + i * T::BYTES..]))
            .collect()
    }

    /// Read one element.
    #[inline]
    pub fn read_at<T: DeviceScalar>(&self, buf: &DeviceBuffer<T>, i: usize) -> T {
        assert!(i < buf.len());
        T::read_le(&self.data[buf.addr_of(i) as usize..])
    }

    /// Write one element.
    #[inline]
    pub fn write_at<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) {
        assert!(i < buf.len());
        v.write_le(&mut self.data[buf.addr_of(i) as usize..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut a = Arena::new(1024);
        let b1 = a.alloc(400).unwrap();
        assert_eq!(a.used(), 400);
        let b2 = a.alloc(600).unwrap();
        assert_eq!(a.used(), 1000);
        assert_eq!(a.peak(), 1000);
        assert!(a.alloc(100).is_err());
        a.free(b1).unwrap();
        assert_eq!(a.used(), 600);
        let _b3 = a.alloc(100).unwrap();
        assert_eq!(a.peak(), 1000);
        a.free(b2).unwrap();
    }

    #[test]
    fn oom_reports_headroom() {
        let mut a = Arena::new(100);
        a.alloc(60).unwrap();
        match a.alloc(60) {
            Err(SimtError::OutOfMemory {
                requested: 60,
                available: 40,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_free_is_an_error() {
        let mut a = Arena::new(100);
        let b = a.alloc(10).unwrap();
        a.free(b).unwrap();
        assert!(matches!(a.free(b), Err(SimtError::InvalidBuffer { .. })));
    }

    #[test]
    fn addresses_are_aligned_and_disjoint() {
        let mut a = Arena::new(1 << 20);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        assert_eq!(x % ALIGN, 0);
        assert_eq!(y % ALIGN, 0);
        assert!(y >= x + ALIGN);
    }

    #[test]
    fn typed_roundtrip() {
        let mut a = Arena::new(1 << 20);
        let addr = a.alloc(4 * 8).unwrap();
        let buf: DeviceBuffer<u64> = DeviceBuffer::new(addr, 4);
        a.write_slice(&buf, &[1, 2, 3, u64::MAX]);
        assert_eq!(a.read_slice(&buf), vec![1, 2, 3, u64::MAX]);
        a.write_at(&buf, 1, 99);
        assert_eq!(a.read_at(&buf, 1), 99);
    }

    #[test]
    fn buffer_slicing() {
        let buf: DeviceBuffer<u32> = DeviceBuffer::new(256, 10);
        let s = buf.slice(2, 7);
        assert_eq!(s.len(), 5);
        assert_eq!(s.addr(), 256 + 8);
        assert_eq!(s.addr_of(0), buf.addr_of(2));
    }

    #[test]
    #[should_panic(expected = "slice")]
    fn out_of_range_slice_panics() {
        let buf: DeviceBuffer<u32> = DeviceBuffer::new(0, 4);
        let _ = buf.slice(2, 9);
    }

    #[test]
    fn zero_byte_allocations_get_distinct_addresses() {
        let mut a = Arena::new(1 << 20);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
        a.free(x).unwrap();
        a.free(y).unwrap();
    }

    #[test]
    fn fits_matches_alloc_outcome() {
        let mut a = Arena::new(100);
        assert!(a.fits(100));
        a.alloc(80).unwrap();
        assert!(a.fits(20));
        assert!(!a.fits(21));
    }

    #[test]
    fn i32_scalar_roundtrip() {
        let mut a = Arena::new(1024);
        let addr = a.alloc(8).unwrap();
        let buf: DeviceBuffer<i32> = DeviceBuffer::new(addr, 2);
        a.write_slice(&buf, &[-5, i32::MAX]);
        assert_eq!(a.read_slice(&buf), vec![-5, i32::MAX]);
    }
}
