//! Device configurations and the presets mirroring the paper's hardware.
//!
//! The absolute constants are a *cost model*, not a die shot: they are chosen
//! so that (a) relative throughput between the presets tracks the real cards
//! (GTX 980 ≈ 2–3× a Tesla C2050 on this kernel, per Table I), and (b) the
//! memory-hierarchy parameters (line size, cache capacities, DRAM peak
//! bandwidth) match the published specs, because those drive the Table II
//! statistics directly.

use crate::sanitizer::SanitizerMode;

/// Static description of a simulated device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Lanes per warp (32 on every NVIDIA part).
    pub warp_size: u32,
    /// Core clock in GHz; one SM pipeline cycle = 1/clock ns.
    pub clock_ghz: f64,
    /// Instruction-issue slots per SM per cycle (Fermi ≈ 2, Maxwell ≈ 4).
    pub issue_width: u32,
    /// Memory-pipeline throughput: read transactions an SM can start per
    /// cycle. This is *effective* texture-path throughput including replays
    /// and bank conflicts (< 1 on these parts; Maxwell roughly doubled
    /// Fermi's).
    pub mem_txn_per_cycle: f64,
    /// Maximum resident threads per SM (occupancy ceiling).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Per-SM read-only (texture) cache capacity in bytes.
    pub tex_cache_bytes: u32,
    /// Texture-cache associativity (ways).
    pub tex_cache_ways: u32,
    /// Device-wide L2 capacity in bytes (address-sliced per SM in the sim).
    /// Presets scale this down with the graph suite, like `memory_capacity`:
    /// the paper's working sets exceed the real L2 by the same factor the
    /// bench suite exceeds these values.
    pub l2_cache_bytes: u32,
    pub l2_cache_ways: u32,
    /// Cache probe / transaction granularity in bytes (32 B sectors).
    pub line_bytes: u32,
    /// Bytes actually fetched from DRAM per missing sector (DRAM bursts are
    /// wider than a sector; 64 B here).
    pub dram_fetch_bytes: u32,
    /// Load-to-use latencies in cycles.
    pub tex_hit_latency: u32,
    pub l2_hit_latency: u32,
    pub dram_latency: u32,
    /// On-chip shared memory available to one block, in bytes (48 KB on
    /// every preset: the Fermi default split and the Maxwell per-block cap).
    pub shared_mem_per_block_bytes: u32,
    /// Conflict-free shared-memory load-to-use latency in cycles; an
    /// n-way bank conflict replays the access n times.
    pub shared_latency: u32,
    /// Number of 4-byte shared-memory banks (32 on every NVIDIA part).
    pub shared_banks: u32,
    /// Peak DRAM bandwidth in GB/s (GTX 980: 224, C2050: 144).
    pub dram_bandwidth_gbs: f64,
    /// Fraction of peak DRAM bandwidth streaming primitives achieve
    /// (Thrust-style passes reach 70–85 % in practice).
    pub stream_efficiency: f64,
    /// Host↔device copy bandwidth in GB/s (PCIe gen2 ≈ 6, gen3 ≈ 12).
    pub pcie_bandwidth_gbs: f64,
    /// Fixed overhead per kernel launch, in microseconds.
    pub launch_overhead_us: f64,
    /// Cost of first-touch CUDA context creation (the paper's
    /// `cudaFree(NULL)` note: ~100 ms folded into the first `cudaMalloc`
    /// unless the context is pre-initialized).
    pub context_init_ms: f64,
    /// Device memory capacity in bytes. Presets scale this down by the same
    /// factor as the graph suite (DESIGN.md §2) so the §III-D6 fallback
    /// triggers on the analog of the paper's over-capacity graphs.
    pub memory_capacity: u64,
    /// Compute-sanitizer mode installed on devices built from this config
    /// (memcheck/initcheck/racecheck over the simulated memory path).
    /// `Off` is a true no-op — modeled statistics are byte-identical.
    pub sanitizer: SanitizerMode,
    /// Whether devices built from this config run the static launch
    /// verifier (per-kernel access contracts proven in-bounds and
    /// race-free before each launch). Host-side only: modeled timings are
    /// byte-identical with it on or off.
    pub verifier: bool,
}

impl DeviceConfig {
    /// Nvidia Tesla C2050 (Fermi): 14 SMs @ 1.15 GHz, 3 GB, 144 GB/s.
    /// Capacity is scaled down with the graph suite (DESIGN.md §2) so that,
    /// at bench scale, exactly the Orkut and top-Kronecker analogs overflow
    /// it — the rows Table I marks †.
    pub fn tesla_c2050() -> Self {
        DeviceConfig {
            name: "Tesla C2050",
            num_sms: 14,
            warp_size: 32,
            clock_ghz: 1.15,
            issue_width: 2,
            mem_txn_per_cycle: 0.18,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            tex_cache_bytes: 32 * 1024,
            tex_cache_ways: 4,
            l2_cache_bytes: 64 * 1024,
            l2_cache_ways: 8,
            line_bytes: 32,
            tex_hit_latency: 40,
            l2_hit_latency: 180,
            dram_latency: 450,
            shared_mem_per_block_bytes: 48 * 1024,
            shared_latency: 36,
            shared_banks: 32,
            dram_fetch_bytes: 64,
            dram_bandwidth_gbs: 144.0,
            stream_efficiency: 0.70,
            pcie_bandwidth_gbs: 6.0,
            launch_overhead_us: 8.0,
            context_init_ms: 100.0,
            memory_capacity: 20 * 1024 * 1024,
            sanitizer: SanitizerMode::Off,
            verifier: false,
        }
    }

    /// Nvidia GeForce GTX 980 (Maxwell): 16 SMs @ 1.216 GHz, 4 GB, 224 GB/s.
    /// Scaled capacity holds the whole bench suite, like the real card held
    /// every Table I graph.
    pub fn gtx_980() -> Self {
        DeviceConfig {
            name: "GTX 980",
            num_sms: 16,
            warp_size: 32,
            clock_ghz: 1.216,
            issue_width: 4,
            mem_txn_per_cycle: 0.33,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            tex_cache_bytes: 96 * 1024,
            tex_cache_ways: 8,
            l2_cache_bytes: 128 * 1024,
            l2_cache_ways: 16,
            line_bytes: 32,
            tex_hit_latency: 30,
            l2_hit_latency: 160,
            dram_latency: 380,
            shared_mem_per_block_bytes: 48 * 1024,
            shared_latency: 24,
            shared_banks: 32,
            dram_fetch_bytes: 64,
            dram_bandwidth_gbs: 224.0,
            stream_efficiency: 0.80,
            pcie_bandwidth_gbs: 12.0,
            launch_overhead_us: 5.0,
            context_init_ms: 100.0,
            memory_capacity: 48 * 1024 * 1024,
            sanitizer: SanitizerMode::Off,
            verifier: false,
        }
    }

    /// Nvidia NVS 5200M (the laptop Fermi part used for development):
    /// 2 SMs @ 0.625 GHz, 1 GB, 14.4 GB/s.
    pub fn nvs_5200m() -> Self {
        DeviceConfig {
            name: "NVS 5200M",
            num_sms: 2,
            warp_size: 32,
            clock_ghz: 0.625,
            issue_width: 2,
            mem_txn_per_cycle: 0.1,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            tex_cache_bytes: 16 * 1024,
            tex_cache_ways: 4,
            l2_cache_bytes: 32 * 1024,
            l2_cache_ways: 8,
            line_bytes: 32,
            tex_hit_latency: 40,
            l2_hit_latency: 200,
            dram_latency: 500,
            shared_mem_per_block_bytes: 48 * 1024,
            shared_latency: 36,
            shared_banks: 32,
            dram_fetch_bytes: 64,
            dram_bandwidth_gbs: 14.4,
            stream_efficiency: 0.65,
            pcie_bandwidth_gbs: 3.0,
            launch_overhead_us: 10.0,
            context_init_ms: 100.0,
            memory_capacity: 18 * 1024 * 1024,
            sanitizer: SanitizerMode::Off,
            verifier: false,
        }
    }

    /// A variant with unlimited memory — used by tests that must not hit the
    /// capacity fallback.
    pub fn with_unlimited_memory(mut self) -> Self {
        self.memory_capacity = u64::MAX;
        self
    }

    /// A variant with an explicit capacity in bytes — used by the §III-D6
    /// failure-injection tests.
    pub fn with_memory_capacity(mut self, bytes: u64) -> Self {
        self.memory_capacity = bytes;
        self
    }

    /// A variant with the given sanitizer mode.
    pub fn with_sanitizer(mut self, mode: SanitizerMode) -> Self {
        self.sanitizer = mode;
        self
    }

    /// A variant with the static launch verifier on or off.
    pub fn with_verifier(mut self, on: bool) -> Self {
        self.verifier = on;
        self
    }

    /// Seconds taken by one SM pipeline cycle.
    #[inline]
    pub fn cycle_seconds(&self) -> f64 {
        1e-9 / self.clock_ghz
    }

    /// Resident blocks per SM for a given block size, limited by both the
    /// block and thread occupancy ceilings.
    pub fn resident_blocks(&self, threads_per_block: u32) -> u32 {
        (self.max_threads_per_sm / threads_per_block.max(1))
            .min(self.max_blocks_per_sm)
            .max(1)
    }

    /// The paper's tuned launch: 64 threads per block, 8 blocks per SM
    /// (§III-C).
    pub fn paper_launch(&self) -> crate::executor::LaunchConfig {
        crate::executor::LaunchConfig {
            threads_per_block: 64,
            blocks: 8 * self.num_sms,
            warp_split: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_sane() {
        for cfg in [
            DeviceConfig::tesla_c2050(),
            DeviceConfig::gtx_980(),
            DeviceConfig::nvs_5200m(),
        ] {
            assert!(cfg.num_sms >= 1);
            assert_eq!(cfg.warp_size, 32);
            assert!(cfg.clock_ghz > 0.1);
            assert!(cfg.line_bytes.is_power_of_two());
            assert!(cfg.tex_cache_bytes % (cfg.line_bytes * cfg.tex_cache_ways) == 0);
            assert!(cfg.dram_bandwidth_gbs > 1.0);
            assert!(cfg.memory_capacity > 1024);
            assert!(cfg.shared_banks.is_power_of_two());
            assert!(cfg.shared_mem_per_block_bytes >= 16 * 1024);
            assert!(cfg.shared_latency < cfg.l2_hit_latency);
        }
    }

    #[test]
    fn gtx980_outclasses_c2050() {
        let fermi = DeviceConfig::tesla_c2050();
        let maxwell = DeviceConfig::gtx_980();
        let fermi_tput = fermi.num_sms as f64 * fermi.clock_ghz * fermi.mem_txn_per_cycle;
        let maxwell_tput = maxwell.num_sms as f64 * maxwell.clock_ghz * maxwell.mem_txn_per_cycle;
        assert!(
            maxwell_tput / fermi_tput > 1.8,
            "{maxwell_tput} vs {fermi_tput}"
        );
    }

    #[test]
    fn paper_launch_matches_section_iii_c() {
        let cfg = DeviceConfig::gtx_980();
        let lc = cfg.paper_launch();
        assert_eq!(lc.threads_per_block, 64);
        assert_eq!(lc.blocks, 8 * cfg.num_sms);
    }

    #[test]
    fn resident_blocks_respects_both_limits() {
        let cfg = DeviceConfig::tesla_c2050();
        // 64-thread blocks: thread limit allows 24, block limit caps at 8.
        assert_eq!(cfg.resident_blocks(64), 8);
        // 1024-thread blocks: thread limit caps at 1.
        assert_eq!(cfg.resident_blocks(1024), 1);
    }

    #[test]
    fn capacity_overrides() {
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(1234);
        assert_eq!(cfg.memory_capacity, 1234);
        assert_eq!(cfg.with_unlimited_memory().memory_capacity, u64::MAX);
    }
}
