//! Chrome-trace export of a device time log.
//!
//! Every [`crate::Device`] records each charged operation (copies, Thrust
//! passes, kernels) with its modeled duration. This module serializes that
//! log into the Trace Event Format understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev), so a pipeline run can be inspected
//! visually — handy when tuning the §III-E phase split.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::device::TimedOp;

/// Serialize a time log as a Trace Event Format JSON array. Events are laid
/// back to back starting at `t = 0`, one per [`TimedOp`], on the given
/// process/thread ids (use distinct `tid`s for multi-device runs).
pub fn to_chrome_trace(log: &[TimedOp], pid: u32, tid: u32) -> String {
    let mut out = String::from("[\n");
    let mut t_us = 0.0f64;
    for (i, op) in log.iter().enumerate() {
        let dur_us = op.seconds * 1e6;
        out.push_str(&format!(
            "  {{\"name\": {}, \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
             \"pid\": {}, \"tid\": {}}}{}\n",
            json_string(&op.label),
            t_us,
            dur_us,
            pid,
            tid,
            if i + 1 == log.len() { "" } else { "," }
        ));
        t_us += dur_us;
    }
    out.push(']');
    out
}

/// Write one or more device logs (one trace thread each) to a file.
pub fn write_chrome_trace(
    logs: &[(&str, &[TimedOp])],
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(out, "[")?;
    let mut first = true;
    for (tid, (name, log)) in logs.iter().enumerate() {
        // Thread-name metadata event.
        if !first {
            writeln!(out, ",")?;
        }
        first = false;
        write!(
            out,
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"name\": {}}}}}",
            tid,
            json_string(name)
        )?;
        let mut t_us = 0.0f64;
        for op in log.iter() {
            let dur_us = op.seconds * 1e6;
            writeln!(out, ",")?;
            write!(
                out,
                "  {{\"name\": {}, \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"pid\": 1, \"tid\": {}}}",
                json_string(&op.label),
                t_us,
                dur_us,
                tid
            )?;
            t_us += dur_us;
        }
    }
    writeln!(out, "\n]")?;
    out.flush()
}

/// Minimal JSON string escaping for labels.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::device::Device;

    fn sample_log() -> Vec<TimedOp> {
        let mut dev = Device::new(DeviceConfig::gtx_980());
        dev.preinit_context();
        dev.reset_clock();
        let buf = dev.htod_copy(&[1u32, 2, 3, 4]).unwrap();
        let _ = dev.dtoh(&buf);
        dev.time_log().to_vec()
    }

    #[test]
    fn trace_is_structurally_sound() {
        let log = sample_log();
        let json = to_chrome_trace(&log, 1, 0);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), log.len());
        assert!(json.contains("htod"));
        assert!(json.contains("dtoh"));
    }

    #[test]
    fn durations_are_cumulative_and_ordered() {
        let log = vec![
            TimedOp { label: "a".into(), seconds: 1e-6 },
            TimedOp { label: "b".into(), seconds: 2e-6 },
        ];
        let json = to_chrome_trace(&log, 1, 0);
        // Second event starts where the first ended.
        assert!(json.contains("\"ts\": 0.000, \"dur\": 1.000"));
        assert!(json.contains("\"ts\": 1.000, \"dur\": 2.000"));
    }

    #[test]
    fn file_export_handles_multiple_devices() {
        let log = sample_log();
        let dir = std::env::temp_dir().join("tc_simt_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_chrome_trace(&[("dev0", &log), ("dev1", &log)], &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.matches("thread_name").count(), 2);
        assert!(content.trim_end().ends_with(']'));
        // Crude JSON validation: balanced braces/brackets per line.
        assert_eq!(content.matches('{').count(), content.matches('}').count());
    }

    #[test]
    fn labels_are_escaped() {
        let log = vec![TimedOp { label: "with \"quotes\"\nand newline".into(), seconds: 1e-6 }];
        let json = to_chrome_trace(&log, 1, 0);
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
    }
}
