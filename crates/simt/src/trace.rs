//! Chrome-trace export of a device time log and its profiler spans.
//!
//! Every [`crate::Device`] records each charged operation (copies, Thrust
//! passes, kernels) with its modeled start time and duration, and — when the
//! caller brackets work with [`crate::Device::push_phase`] — a hierarchy of
//! named spans. This module serializes both into the Trace Event Format
//! understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev),
//! so a pipeline run can be inspected visually — handy when tuning the
//! §III-E phase split.
//!
//! All serializers share one event builder: spans and leaf ops become `"X"`
//! (complete) events on the same thread, so Perfetto nests them by time
//! containment; each thread gets an `"M"` metadata event carrying its name.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::device::TimedOp;
use crate::profiler::{json_string, Span};

/// Everything one trace thread (= one device) contributes: a display name,
/// the leaf operation log, and the profiler's phase spans (may be empty).
pub struct TraceThread<'a> {
    pub name: &'a str,
    pub log: &'a [TimedOp],
    pub spans: &'a [Span],
}

/// Serialize one event object (no trailing separator).
fn complete_event(name: &str, start_s: f64, dur_s: f64, pid: u32, tid: u32) -> String {
    format!(
        "  {{\"name\": {}, \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
         \"pid\": {}, \"tid\": {}}}",
        json_string(name),
        start_s * 1e6,
        dur_s * 1e6,
        pid,
        tid
    )
}

/// Append one thread's events: optional thread-name metadata, then the phase
/// spans (outermost first, by recorded start), then the leaf ops. Perfetto
/// nests slices on a thread by time containment, so parent spans must simply
/// cover their children — which the device guarantees by construction.
fn push_thread_events(
    out: &mut Vec<String>,
    pid: u32,
    tid: u32,
    name: Option<&str>,
    log: &[TimedOp],
    spans: &[Span],
) {
    if let Some(name) = name {
        out.push(format!(
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": {}, \
             \"args\": {{\"name\": {}}}}}",
            pid,
            tid,
            json_string(name)
        ));
    }
    // Spans are recorded in completion order (children before parents);
    // re-emit sorted by (start, -depth) so output order is stable and
    // outer-before-inner, which keeps diffs readable.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        spans[a]
            .start_s
            .partial_cmp(&spans[b].start_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(spans[a].depth.cmp(&spans[b].depth))
    });
    for i in order {
        let s = &spans[i];
        let label = s.path.rsplit('/').next().unwrap_or(&s.path);
        out.push(complete_event(label, s.start_s, s.duration_s(), pid, tid));
    }
    for op in log {
        out.push(complete_event(&op.label, op.start_s, op.seconds, pid, tid));
    }
}

/// Serialize a time log as a Trace Event Format JSON array, one `"X"` event
/// per [`TimedOp`] at its recorded start time, on the given process/thread
/// ids (use distinct `tid`s for multi-device runs).
pub fn to_chrome_trace(log: &[TimedOp], pid: u32, tid: u32) -> String {
    let mut events = Vec::with_capacity(log.len());
    push_thread_events(&mut events, pid, tid, None, log, &[]);
    format!("[\n{}\n]", events.join(",\n"))
}

/// Write one or more device logs (one trace thread each) to a file. Spanless
/// convenience wrapper over [`write_chrome_trace_spanned`].
pub fn write_chrome_trace(
    logs: &[(&str, &[TimedOp])],
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let threads: Vec<TraceThread<'_>> = logs
        .iter()
        .map(|&(name, log)| TraceThread {
            name,
            log,
            spans: &[],
        })
        .collect();
    write_chrome_trace_spanned(&threads, path)
}

/// Write a full trace — phase spans nested above the leaf ops — with one
/// trace thread per device.
pub fn write_chrome_trace_spanned(
    threads: &[TraceThread<'_>],
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    let mut events = Vec::new();
    for (tid, t) in threads.iter().enumerate() {
        push_thread_events(&mut events, 1, tid as u32, Some(t.name), t.log, t.spans);
    }
    writeln!(out, "[")?;
    writeln!(out, "{}", events.join(",\n"))?;
    writeln!(out, "]")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::device::Device;

    fn sample_log() -> Vec<TimedOp> {
        let mut dev = Device::new(DeviceConfig::gtx_980());
        dev.preinit_context();
        dev.reset_clock();
        let buf = dev.htod_copy(&[1u32, 2, 3, 4]).unwrap();
        let _ = dev.dtoh(&buf);
        dev.time_log().to_vec()
    }

    #[test]
    fn trace_is_structurally_sound() {
        let log = sample_log();
        let json = to_chrome_trace(&log, 1, 0);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), log.len());
        assert!(json.contains("htod"));
        assert!(json.contains("dtoh"));
    }

    #[test]
    fn events_start_at_their_recorded_times() {
        let log = vec![TimedOp::new("a", 0.0, 1e-6), TimedOp::new("b", 1e-6, 2e-6)];
        let json = to_chrome_trace(&log, 1, 0);
        // Second event starts where the first ended.
        assert!(json.contains("\"ts\": 0.000, \"dur\": 1.000"));
        assert!(json.contains("\"ts\": 1.000, \"dur\": 2.000"));
    }

    #[test]
    fn file_export_handles_multiple_devices() {
        let log = sample_log();
        let dir = std::env::temp_dir().join("tc_simt_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_chrome_trace(&[("dev0", &log), ("dev1", &log)], &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.matches("thread_name").count(), 2);
        assert!(content.trim_end().ends_with(']'));
        // Crude JSON validation: balanced braces/brackets per line.
        assert_eq!(content.matches('{').count(), content.matches('}').count());
    }

    #[test]
    fn spans_wrap_their_ops_in_the_nested_export() {
        let mut dev = Device::new(DeviceConfig::gtx_980());
        dev.preinit_context();
        dev.reset_clock();
        dev.push_phase("copy");
        let buf = dev.htod_copy(&[1u32, 2, 3, 4]).unwrap();
        let _ = dev.dtoh(&buf);
        dev.pop_phase();

        let dir = std::env::temp_dir().join("tc_simt_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nested.json");
        let threads = [TraceThread {
            name: "dev0",
            log: dev.time_log(),
            spans: dev.spans(),
        }];
        write_chrome_trace_spanned(&threads, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        // One span event + the leaf ops, all "X" events on tid 0.
        assert_eq!(
            content.matches("\"ph\": \"X\"").count(),
            dev.time_log().len() + 1
        );
        assert!(content.contains("\"name\": \"copy\""));
        // The span must be emitted before the ops it contains.
        let span_pos = content.find("\"name\": \"copy\"").unwrap();
        let op_pos = content.find("htod").unwrap();
        assert!(span_pos < op_pos);
    }

    #[test]
    fn labels_are_escaped() {
        let log = vec![TimedOp::new("with \"quotes\"\nand newline", 0.0, 1e-6)];
        let json = to_chrome_trace(&log, 1, 0);
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
    }
}
