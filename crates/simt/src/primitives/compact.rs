//! Stream compaction (`thrust::remove_if`, §III-B step 6).

use crate::arena::DeviceBuffer;
use crate::device::Device;
use crate::verifier::Interval;

use super::charge_pass;

/// The paper's step-5 kernel on its own: evaluate `pred` over `buf[..len]`
/// and return the per-element marks. Charged as one pass reading the array
/// and writing one flag byte per element. Pipelines that want the mark and
/// compact steps profiled separately call this then
/// [`compact_marked_u64`]; [`remove_if_u64`] fuses them.
pub fn mark_if_u64<P>(dev: &mut Device, buf: &DeviceBuffer<u64>, len: usize, pred: P) -> Vec<bool>
where
    P: Fn(u64) -> bool + Sync,
{
    assert!(len <= buf.len());
    let span = [Interval::bytes(buf.addr(), len as u64 * 8)];
    dev.verify_pass("mark-backward kernel", &span, &[]);
    let data = dev.peek(&buf.slice(0, len));
    let marks: Vec<bool> = data.iter().map(|&x| pred(x)).collect();
    charge_pass(dev, "mark-backward kernel", len as u64 * 8, len as u64); // read + flag write
    marks
}

/// The paper's step 6: compact the elements whose mark is `false` to the
/// front, preserving order (stable, like `thrust::remove_if`). Returns the
/// new logical length. Charged as one pass reading the array (and marks)
/// and writing the survivors.
pub fn compact_marked_u64(
    dev: &mut Device,
    buf: &DeviceBuffer<u64>,
    len: usize,
    marks: &[bool],
) -> usize {
    assert!(len <= buf.len());
    assert_eq!(marks.len(), len);
    // Survivor count is data-dependent; declare the worst case (all kept).
    let span = [Interval::bytes(buf.addr(), len as u64 * 8)];
    dev.verify_pass("thrust::remove_if", &span, &span);
    let data = dev.peek(&buf.slice(0, len));
    let kept: Vec<u64> = data
        .iter()
        .zip(marks)
        .filter(|&(_, &m)| !m)
        .map(|(&x, _)| x)
        .collect();
    let new_len = kept.len();
    dev.poke(&buf.slice(0, new_len), &kept);
    charge_pass(dev, "thrust::remove_if", len as u64 * 8, new_len as u64 * 8);
    new_len
}

/// Remove the elements of `buf[..len]` for which `pred` holds, compacting
/// the survivors to the front in their original order. Two passes: the
/// predicate/mark pass and the scatter pass.
pub fn remove_if_u64<P>(dev: &mut Device, buf: &DeviceBuffer<u64>, len: usize, pred: P) -> usize
where
    P: Fn(u64) -> bool + Sync,
{
    let marks = mark_if_u64(dev, buf, len, pred);
    compact_marked_u64(dev, buf, len, &marks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn device() -> Device {
        let mut d = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        d.preinit_context();
        d.reset_clock();
        d
    }

    #[test]
    fn removes_and_preserves_order() {
        let mut dev = device();
        let buf = dev.htod_copy(&[10u64, 3, 8, 1, 6, 7]).unwrap();
        let n = remove_if_u64(&mut dev, &buf, 6, |x| x % 2 == 0);
        assert_eq!(n, 3);
        assert_eq!(dev.peek(&buf.slice(0, n)), vec![3, 1, 7]);
    }

    #[test]
    fn remove_nothing_and_everything() {
        let mut dev = device();
        let buf = dev.htod_copy(&[1u64, 2, 3]).unwrap();
        assert_eq!(remove_if_u64(&mut dev, &buf, 3, |_| false), 3);
        assert_eq!(dev.peek(&buf), vec![1, 2, 3]);
        assert_eq!(remove_if_u64(&mut dev, &buf, 3, |_| true), 0);
    }

    #[test]
    fn respects_len_prefix() {
        let mut dev = device();
        let buf = dev.htod_copy(&[2u64, 4, 99]).unwrap();
        let n = remove_if_u64(&mut dev, &buf, 2, |x| x % 2 == 0);
        assert_eq!(n, 0);
        // The tail element beyond len is untouched.
        assert_eq!(dev.peek(&buf)[2], 99);
    }

    #[test]
    fn charges_two_passes() {
        let mut dev = device();
        let buf = dev.htod_copy(&vec![1u64; 1000]).unwrap();
        let logged = dev.time_log().len();
        remove_if_u64(&mut dev, &buf, 1000, |x| x == 0);
        assert_eq!(dev.time_log().len(), logged + 2);
    }
}
