//! Transform passes: unzipping (§III-B step 7 / §III-D1) and node-array
//! construction (steps 4 and 8).

use crate::arena::DeviceBuffer;
use crate::device::Device;
use crate::error::SimtError;
use crate::verifier::Interval;

use super::charge_pass;

/// Split `len` packed `u64`s into their low and high `u32` halves —
/// the array-of-structures → structure-of-arrays "unzip". Allocates the two
/// output arrays. "Conversion … is very fast" (§III-D1): one read + write
/// pass.
pub fn unzip_u64(
    dev: &mut Device,
    buf: &DeviceBuffer<u64>,
    len: usize,
) -> Result<(DeviceBuffer<u32>, DeviceBuffer<u32>), SimtError> {
    assert!(len <= buf.len());
    let lo_buf = dev.alloc::<u32>(len)?;
    let hi_buf = dev.alloc::<u32>(len)?;
    dev.verify_pass(
        "unzip",
        &[Interval::bytes(buf.addr(), len as u64 * 8)],
        &[
            Interval::bytes(lo_buf.addr(), len as u64 * 4),
            Interval::bytes(hi_buf.addr(), len as u64 * 4),
        ],
    );
    let data = dev.peek(&buf.slice(0, len));
    let lo: Vec<u32> = data.iter().map(|&x| x as u32).collect();
    let hi: Vec<u32> = data.iter().map(|&x| (x >> 32) as u32).collect();
    dev.poke(&lo_buf, &lo);
    dev.poke(&hi_buf, &hi);
    charge_pass(dev, "unzip", len as u64 * 8, len as u64 * 8);
    Ok((lo_buf, hi_buf))
}

/// Build the node array over a sorted, grouped key sequence (§III-B step 4):
/// `group(key)` extracts the grouping vertex from each packed element;
/// result `node` has `n + 1` entries with `node[v] ..  node[v+1]` spanning
/// the elements grouped under `v`. Mirrors the paper's construction —
/// "running m−1 threads, thread k examines elements k and k+1; if their
/// first vertices differ it writes k+1", including the multi-cell fill for
/// empty adjacency lists. One read pass plus the (small) node-array write.
pub fn group_boundaries<F>(
    dev: &mut Device,
    buf: &DeviceBuffer<u64>,
    len: usize,
    n: usize,
    group: F,
) -> Result<DeviceBuffer<u32>, SimtError>
where
    F: Fn(u64) -> u32,
{
    assert!(len <= buf.len());
    assert!(len <= u32::MAX as usize);
    let node_buf = dev.alloc::<u32>(n + 1)?;
    dev.verify_pass(
        "node-array kernel",
        &[Interval::bytes(buf.addr(), len as u64 * 8)],
        &[Interval::bytes(node_buf.addr(), (n as u64 + 1) * 4)],
    );
    let data = dev.peek(&buf.slice(0, len));
    let mut node = vec![0u32; n + 1];
    // Thread 0's special case: groups before the first element are empty.
    if len > 0 {
        let first = group(data[0]) as usize;
        for slot in node.iter_mut().take(first + 1).skip(1) {
            // node[1..=first] = 0 already; written explicitly in hardware.
            *slot = 0;
        }
        for k in 0..len - 1 {
            let a = group(data[k]) as usize;
            let b = group(data[k + 1]) as usize;
            if a != b {
                debug_assert!(a < b, "keys must be grouped/sorted");
                for slot in node.iter_mut().take(b + 1).skip(a + 1) {
                    *slot = (k + 1) as u32;
                }
            }
        }
        let last = group(data[len - 1]) as usize;
        for slot in node.iter_mut().take(n + 1).skip(last + 1) {
            *slot = len as u32;
        }
    }
    dev.poke(&node_buf, &node);
    charge_pass(dev, "node-array kernel", len as u64 * 8, (n as u64 + 1) * 4);
    Ok(node_buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn device() -> Device {
        let mut d = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        d.preinit_context();
        d.reset_clock();
        d
    }

    #[test]
    fn unzip_splits_halves() {
        let mut dev = device();
        let buf = dev
            .htod_copy(&[(1u64 << 32) | 2, (3u64 << 32) | 4])
            .unwrap();
        let (lo, hi) = unzip_u64(&mut dev, &buf, 2).unwrap();
        assert_eq!(dev.peek(&lo), vec![2, 4]);
        assert_eq!(dev.peek(&hi), vec![1, 3]);
    }

    #[test]
    fn boundaries_of_grouped_keys() {
        let mut dev = device();
        // Elements grouped under vertices: 0, 0, 2, 2, 2, 4  (n = 5)
        let keys: Vec<u64> = [0u64, 0, 2, 2, 2, 4].iter().map(|&v| v << 32).collect();
        let buf = dev.htod_copy(&keys).unwrap();
        let node = group_boundaries(&mut dev, &buf, 6, 5, |k| (k >> 32) as u32).unwrap();
        assert_eq!(dev.peek(&node), vec![0, 2, 2, 5, 5, 6]);
    }

    #[test]
    fn empty_groups_at_both_ends() {
        let mut dev = device();
        // Only vertex 2 of n = 5 has elements.
        let keys: Vec<u64> = [2u64, 2].iter().map(|&v| v << 32).collect();
        let buf = dev.htod_copy(&keys).unwrap();
        let node = group_boundaries(&mut dev, &buf, 2, 5, |k| (k >> 32) as u32).unwrap();
        assert_eq!(dev.peek(&node), vec![0, 0, 0, 2, 2, 2]);
    }

    #[test]
    fn empty_input_gives_all_zero_node_array() {
        let mut dev = device();
        let buf = dev.alloc::<u64>(0).unwrap();
        let node = group_boundaries(&mut dev, &buf, 0, 3, |k| (k >> 32) as u32).unwrap();
        assert_eq!(dev.peek(&node), vec![0, 0, 0, 0]);
    }

    #[test]
    fn node_array_spans_index_ranges() {
        let mut dev = device();
        let keys: Vec<u64> = [0u64, 1, 1, 3].iter().map(|&v| v << 32).collect();
        let buf = dev.htod_copy(&keys).unwrap();
        let node = group_boundaries(&mut dev, &buf, 4, 4, |k| (k >> 32) as u32).unwrap();
        let node = dev.peek(&node);
        // vertex 0: [0,1), vertex 1: [1,3), vertex 2: [3,3), vertex 3: [3,4)
        assert_eq!(node, vec![0, 1, 3, 3, 4]);
    }
}
