//! Prefix sums (`thrust::exclusive_scan` / `inclusive_scan`).
//!
//! Not used directly by the eight preprocessing steps (the node array is
//! built by boundary detection instead), but scans underpin the stream
//! compaction of step 6 and are part of the Thrust surface the paper's
//! pipeline "makes heavy use of", so they are provided and tested for
//! parity.

use crate::arena::DeviceBuffer;
use crate::device::Device;
use crate::verifier::Interval;

use super::charge_pass;

/// In-place exclusive prefix sum over the first `len` elements. Returns the
/// total (the value that would follow the last element).
pub fn exclusive_scan_u32(dev: &mut Device, buf: &DeviceBuffer<u32>, len: usize) -> u64 {
    assert!(len <= buf.len());
    let span = [Interval::bytes(buf.addr(), len as u64 * 4)];
    dev.verify_pass("thrust::exclusive_scan", &span, &span);
    let mut data = dev.peek(&buf.slice(0, len));
    let mut acc: u64 = 0;
    for v in data.iter_mut() {
        let next = acc + *v as u64;
        *v = acc as u32;
        acc = next;
    }
    dev.poke(&buf.slice(0, len), &data);
    charge_pass(
        dev,
        "thrust::exclusive_scan",
        len as u64 * 4,
        len as u64 * 4,
    );
    acc
}

/// In-place inclusive prefix sum. Returns the total.
pub fn inclusive_scan_u32(dev: &mut Device, buf: &DeviceBuffer<u32>, len: usize) -> u64 {
    assert!(len <= buf.len());
    let span = [Interval::bytes(buf.addr(), len as u64 * 4)];
    dev.verify_pass("thrust::inclusive_scan", &span, &span);
    let mut data = dev.peek(&buf.slice(0, len));
    let mut acc: u64 = 0;
    for v in data.iter_mut() {
        acc += *v as u64;
        *v = acc as u32;
    }
    dev.poke(&buf.slice(0, len), &data);
    charge_pass(
        dev,
        "thrust::inclusive_scan",
        len as u64 * 4,
        len as u64 * 4,
    );
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn device() -> Device {
        let mut d = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        d.preinit_context();
        d.reset_clock();
        d
    }

    #[test]
    fn exclusive_scan_matches_reference() {
        let mut dev = device();
        let buf = dev.htod_copy(&[3u32, 1, 4, 1, 5]).unwrap();
        let total = exclusive_scan_u32(&mut dev, &buf, 5);
        assert_eq!(dev.peek(&buf), vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn inclusive_scan_matches_reference() {
        let mut dev = device();
        let buf = dev.htod_copy(&[3u32, 1, 4, 1, 5]).unwrap();
        let total = inclusive_scan_u32(&mut dev, &buf, 5);
        assert_eq!(dev.peek(&buf), vec![3, 4, 8, 9, 14]);
        assert_eq!(total, 14);
    }

    #[test]
    fn partial_scan_leaves_tail_untouched() {
        let mut dev = device();
        let buf = dev.htod_copy(&[1u32, 1, 1, 7, 7]).unwrap();
        exclusive_scan_u32(&mut dev, &buf, 3);
        assert_eq!(dev.peek(&buf), vec![0, 1, 2, 7, 7]);
    }

    #[test]
    fn empty_scan_is_zero() {
        let mut dev = device();
        let buf = dev.alloc::<u32>(0).unwrap();
        assert_eq!(exclusive_scan_u32(&mut dev, &buf, 0), 0);
        assert_eq!(inclusive_scan_u32(&mut dev, &buf, 0), 0);
    }
}
