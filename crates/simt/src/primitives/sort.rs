//! `thrust::sort` equivalents (§III-B step 3, §III-D2).
//!
//! `thrust::sort` on integer keys is an LSD radix sort. The cost model
//! charges one read+write streaming pass per radix digit (8-bit digits, so
//! 8 passes for `u64`), plus a histogram pass, and allocates the temporary
//! double buffer radix sort needs — **the peak-memory moment of the whole
//! pipeline**, which is exactly what overflows device memory for the paper's
//! † graphs and triggers the §III-D6 CPU fallback.
//!
//! [`sort_pairs_baseline`] models the unoptimized alternative the paper
//! measured: sorting an array of `(u32, u32)` structs goes through Thrust's
//! comparison path, about 5× slower.

use crate::arena::DeviceBuffer;
use crate::device::Device;
use crate::error::SimtError;
use crate::verifier::Interval;

use super::charge_pass;

const U64_RADIX_PASSES: u64 = 8;
/// The paper reports pair-struct sort ≈ 5× slower than u64 radix (§III-D2).
const PAIR_SORT_FACTOR: u64 = 5;

/// Radix-sort the first `len` packed keys ascending, in place. Allocates
/// (and frees) the radix double buffer; fails with `OutOfMemory` when that
/// temporary does not fit — callers translate this into the §III-D6
/// fallback.
pub fn sort_u64(dev: &mut Device, buf: &DeviceBuffer<u64>, len: usize) -> Result<(), SimtError> {
    assert!(len <= buf.len());
    // The double buffer must be allocated before we touch the data, like
    // thrust does: OOM must happen *before* any work.
    let temp = dev.alloc::<u64>(len)?;
    let span = [Interval::bytes(buf.addr(), len as u64 * 8)];
    let scatter = [
        Interval::bytes(buf.addr(), len as u64 * 8),
        Interval::bytes(temp.addr(), len as u64 * 8),
    ];
    dev.verify_pass("thrust::sort(u64)", &span, &scatter);
    let view = buf.slice(0, len);
    let mut data = dev.peek(&view);
    data.sort_unstable();
    dev.poke(&view, &data);
    // Histogram pass + one read/write pass per digit.
    let bytes = len as u64 * 8;
    charge_pass(dev, "thrust::sort(u64) histogram", bytes, 0);
    for pass in 0..U64_RADIX_PASSES {
        charge_pass(dev, &format!("thrust::sort(u64) pass {pass}"), bytes, bytes);
    }
    dev.free(temp)?;
    Ok(())
}

/// Baseline comparison sort of `(u32, u32)` structs, for the §III-D2
/// ablation: functionally identical ordering (lexicographic on the packed
/// key) but charged at the comparison-sort rate. Uses the same double
/// buffer.
pub fn sort_pairs_baseline(
    dev: &mut Device,
    buf: &DeviceBuffer<u64>,
    len: usize,
) -> Result<(), SimtError> {
    assert!(len <= buf.len());
    let temp = dev.alloc::<u64>(len)?;
    let span = [Interval::bytes(buf.addr(), len as u64 * 8)];
    let scatter = [
        Interval::bytes(buf.addr(), len as u64 * 8),
        Interval::bytes(temp.addr(), len as u64 * 8),
    ];
    dev.verify_pass("thrust::sort(pair structs)", &span, &scatter);
    let view = buf.slice(0, len);
    let mut data = dev.peek(&view);
    data.sort_unstable();
    dev.poke(&view, &data);
    // A comparison merge sort launches ~log2(n) passes, each moving the
    // whole array; the per-element constant is what makes it ~5× the radix
    // cost at the paper's sizes.
    let bytes = len as u64 * 8;
    let total = PAIR_SORT_FACTOR * (2 * bytes * U64_RADIX_PASSES + bytes);
    let passes = (usize::BITS - len.next_power_of_two().leading_zeros()).max(1) as u64;
    for pass in 0..passes {
        // Each merge pass reads and writes the whole array, so the charged
        // bytes split evenly between the two directions.
        let per_pass = total / passes;
        charge_pass(
            dev,
            &format!("thrust::sort(pair structs) merge pass {pass}"),
            per_pass - per_pass / 2,
            per_pass / 2,
        );
    }
    dev.free(temp)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn device() -> Device {
        let mut d = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        d.preinit_context();
        d.reset_clock();
        d
    }

    #[test]
    fn sorts_ascending() {
        let mut dev = device();
        let buf = dev.htod_copy(&[5u64, 3, 9, 1, 1, 0]).unwrap();
        sort_u64(&mut dev, &buf, 6).unwrap();
        assert_eq!(dev.peek(&buf), vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn partial_sort_respects_len() {
        let mut dev = device();
        let buf = dev.htod_copy(&[5u64, 3, 9, 0]).unwrap();
        sort_u64(&mut dev, &buf, 3).unwrap();
        assert_eq!(dev.peek(&buf), vec![3, 5, 9, 0]);
    }

    #[test]
    fn pair_baseline_is_about_five_times_slower() {
        // Large enough that per-pass launch overheads are negligible, as in
        // the paper's (multi-million-edge) measurements.
        let data: Vec<u64> = (0..1_000_000u64).rev().collect();

        let mut dev = device();
        let buf = dev.htod_copy(&data).unwrap();
        let t0 = dev.elapsed();
        sort_u64(&mut dev, &buf, data.len()).unwrap();
        let fast = dev.elapsed() - t0;

        let mut dev2 = device();
        let buf2 = dev2.htod_copy(&data).unwrap();
        let t0 = dev2.elapsed();
        sort_pairs_baseline(&mut dev2, &buf2, data.len()).unwrap();
        let slow = dev2.elapsed() - t0;

        assert_eq!(dev.peek(&buf), dev2.peek(&buf2));
        let ratio = slow / fast;
        assert!((4.0..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sort_temp_buffer_can_oom() {
        // Capacity fits the data but not data + double buffer.
        let cfg = DeviceConfig::gtx_980().with_memory_capacity(12 * 1024);
        let mut dev = Device::new(cfg);
        dev.preinit_context();
        let data: Vec<u64> = (0..1024u64).rev().collect(); // 8 KiB
        let buf = dev.htod_copy(&data).unwrap();
        match sort_u64(&mut dev, &buf, data.len()) {
            Err(SimtError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
        // And the data was not touched.
        assert_eq!(dev.peek(&buf), data);
    }

    #[test]
    fn sort_frees_its_temporary() {
        let mut dev = device();
        let data: Vec<u64> = (0..512u64).rev().collect();
        let buf = dev.htod_copy(&data).unwrap();
        let used_before = dev.mem_used();
        sort_u64(&mut dev, &buf, data.len()).unwrap();
        assert_eq!(dev.mem_used(), used_before);
        assert!(dev.mem_peak() >= used_before + 512 * 8);
    }
}
