//! Thrust-substitute device primitives (paper §III-B).
//!
//! The preprocessing phase is built from `thrust::reduce`, `thrust::sort`,
//! `thrust::remove_if`, and simple transform kernels. These are streaming,
//! memory-bandwidth-bound passes, so this module executes them
//! *functionally* on the arena (with rayon where it pays) and charges
//! *analytic* time: `bytes_moved / (stream_efficiency × peak_bandwidth) +
//! launch_overhead` per pass. The cycle-level simulator is reserved for the
//! counting kernel, where the microarchitectural effects the paper studies
//! actually live (DESIGN.md §6, "two execution tiers").
//!
//! Costs that matter to the paper's story and are modeled explicitly:
//!
//! * radix-sorting edges as packed `u64` keys is ~5× cheaper than
//!   comparison-sorting `(u32, u32)` pairs (§III-D2);
//! * the sort needs a temporary double buffer — the peak-memory step that
//!   forces the §III-D6 CPU-preprocessing fallback for large graphs.

pub mod compact;
pub mod reduce;
pub mod scan;
pub mod sort;
pub mod transform;

pub use compact::{compact_marked_u64, mark_if_u64, remove_if_u64};
pub use reduce::{reduce_map_max_u64, reduce_sum_u64};
pub use scan::{exclusive_scan_u32, inclusive_scan_u32};
pub use sort::{sort_pairs_baseline, sort_u64};
pub use transform::{group_boundaries, unzip_u64};

use crate::config::DeviceConfig;
use crate::device::Device;

/// Seconds for one streaming pass that moves `bytes` through DRAM.
pub(crate) fn stream_pass_seconds(cfg: &DeviceConfig, bytes: u64) -> f64 {
    bytes as f64 / (cfg.stream_efficiency * cfg.dram_bandwidth_gbs * 1e9)
        + cfg.launch_overhead_us * 1e-6
}

/// Charge a labeled streaming pass on the device clock, attributing the
/// bytes it moves to the profiler's DRAM read/write counters (each pass is
/// also counted as one kernel launch, matching what nvprof would see).
pub(crate) fn charge_pass(dev: &mut Device, label: &str, read_bytes: u64, write_bytes: u64) {
    let secs = stream_pass_seconds(dev.config(), read_bytes + write_bytes);
    dev.charge_stream_pass(label, secs, read_bytes, write_bytes);
}

/// Charge one Thrust-style streaming transform pass that the caller
/// executed functionally on the host (compute + `Device::poke`). This is
/// the extension point for composed transform kernels living outside this
/// crate (e.g. tc-core's edge-binning pass): the caller states the bytes
/// the pass would read and write on hardware and gets exactly the same
/// accounting — analytic seconds on the clock, DRAM bytes and one kernel
/// launch in the counters — as the primitives in this module.
pub fn charge_transform_pass(dev: &mut Device, label: &str, read_bytes: u64, write_bytes: u64) {
    charge_pass(dev, label, read_bytes, write_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_cost_scales_with_bytes_and_includes_overhead() {
        let cfg = DeviceConfig::gtx_980();
        let small = stream_pass_seconds(&cfg, 0);
        assert!((small - cfg.launch_overhead_us * 1e-6).abs() < 1e-12);
        let big = stream_pass_seconds(&cfg, 1 << 30);
        assert!(big > 100.0 * small);
        // 1 GiB at 80 % of 224 GB/s ≈ 6 ms.
        assert!((0.004..0.010).contains(&big), "{big}");
    }
}
