//! `thrust::reduce` equivalents.

use crate::arena::DeviceBuffer;
use crate::device::Device;
use crate::verifier::Interval;

use super::charge_pass;

/// Sum-reduce a `u64` buffer (the paper's final step: summing the per-thread
/// `result` array). One read pass.
pub fn reduce_sum_u64(dev: &mut Device, buf: &DeviceBuffer<u64>) -> u64 {
    let span = [Interval::bytes(buf.addr(), buf.byte_len())];
    dev.verify_pass("thrust::reduce(sum)", &span, &[]);
    let data = dev.peek(buf);
    charge_pass(dev, "thrust::reduce(sum)", buf.byte_len(), 0);
    tc_par::sum_by_u64(data.len(), |i| data[i])
}

/// Max-reduce after applying `map` to each element — used by preprocessing
/// step 2 (largest vertex identifier across both ends of all edges) with a
/// map extracting `max(hi, lo)` from each packed edge. One read pass.
pub fn reduce_map_max_u64<F>(dev: &mut Device, buf: &DeviceBuffer<u64>, map: F) -> u64
where
    F: Fn(u64) -> u64 + Sync,
{
    let span = [Interval::bytes(buf.addr(), buf.byte_len())];
    dev.verify_pass("thrust::reduce(max)", &span, &[]);
    let data = dev.peek(buf);
    charge_pass(dev, "thrust::reduce(max)", buf.byte_len(), 0);
    tc_par::map_chunks(&data, 64 * 1024, |_, c| {
        c.iter().map(|&x| map(x)).max().unwrap_or(0)
    })
    .into_iter()
    .max()
    .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn device() -> Device {
        let mut d = Device::new(DeviceConfig::gtx_980().with_unlimited_memory());
        d.preinit_context();
        d.reset_clock();
        d
    }

    #[test]
    fn sum_is_exact_and_charges_time() {
        let mut dev = device();
        let data: Vec<u64> = (1..=1000).collect();
        let buf = dev.htod_copy(&data).unwrap();
        let before = dev.elapsed();
        assert_eq!(reduce_sum_u64(&mut dev, &buf), 500_500);
        assert!(dev.elapsed() > before);
    }

    #[test]
    fn mapped_max_finds_packed_vertex_ids() {
        let mut dev = device();
        // Edges (3, 9) and (7, 2) packed first-major.
        let data = vec![(3u64 << 32) | 9, (7u64 << 32) | 2];
        let buf = dev.htod_copy(&data).unwrap();
        let max = reduce_map_max_u64(&mut dev, &buf, |e| (e >> 32).max(e & 0xFFFF_FFFF));
        assert_eq!(max, 9);
    }

    #[test]
    fn empty_buffer_reduces_to_identity() {
        let mut dev = device();
        let buf = dev.alloc::<u64>(0).unwrap();
        assert_eq!(reduce_sum_u64(&mut dev, &buf), 0);
        assert_eq!(reduce_map_max_u64(&mut dev, &buf, |x| x), 0);
    }
}
