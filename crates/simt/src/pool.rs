//! Device leasing for serving workloads.
//!
//! A [`DevicePool`] owns a bounded set of simulated devices and leases them
//! to workers. Leasing amortizes the expensive parts of bringing a device
//! up — above all the ~100 ms context creation (`cudaFree(NULL)`, §IV),
//! which a naive count-per-request server would pay on every call. Devices
//! returned to the pool keep their warm context and are handed out again to
//! the next request for the same [`DeviceConfig`] preset.
//!
//! Two ways to hold a device:
//!
//! * [`DeviceLease`] — an RAII guard; the device goes back to the idle set
//!   when the guard drops. This is what transient per-job work uses.
//! * [`DeviceLease::detach`] — splits the lease into the raw [`Device`] and
//!   a [`PoolTicket`]. The device can then move into a long-lived structure
//!   (the engine's `PreparedGraph` cache keeps preprocessed graphs resident
//!   on a device for many counts); the ticket still accounts for the pool
//!   slot and returns it — with or without the device — when the structure
//!   is torn down.
//!
//! `acquire` blocks while the pool is at capacity, which is the pool-level
//! backpressure: a fleet of workers can never hold more devices than the
//! simulated host has.

use std::sync::{Arc, Condvar, Mutex};

use crate::config::DeviceConfig;
use crate::device::Device;

#[derive(Debug)]
struct PoolState {
    /// Leased or detached devices currently counted against `capacity`.
    outstanding: usize,
    /// Warm devices ready for reuse.
    idle: Vec<Device>,
    /// Devices ever constructed by this pool — each one paid (or will pay)
    /// context bring-up exactly once.
    created: usize,
}

#[derive(Debug)]
struct PoolInner {
    capacity: usize,
    state: Mutex<PoolState>,
    freed: Condvar,
}

/// A bounded pool of simulated devices (see the module docs).
#[derive(Clone, Debug)]
pub struct DevicePool {
    inner: Arc<PoolInner>,
}

impl DevicePool {
    /// An empty pool that will create devices on demand, up to `capacity`
    /// outstanding at once.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a device pool needs at least one slot");
        DevicePool {
            inner: Arc::new(PoolInner {
                capacity,
                state: Mutex::new(PoolState {
                    outstanding: 0,
                    idle: Vec::new(),
                    created: 0,
                }),
                freed: Condvar::new(),
            }),
        }
    }

    /// A pool pre-warmed with `warm` devices of `cfg`, their contexts
    /// already created (the cost a serving deployment pays at startup, not
    /// per request).
    pub fn with_warm_devices(capacity: usize, cfg: &DeviceConfig, warm: usize) -> Self {
        let pool = DevicePool::new(capacity);
        {
            let mut state = pool.inner.state.lock().unwrap();
            for _ in 0..warm.min(capacity) {
                let mut dev = Device::new(cfg.clone());
                dev.preinit_context();
                state.idle.push(dev);
                state.created += 1;
            }
        }
        pool
    }

    /// Lease a device with the given config, blocking while the pool is at
    /// capacity. An idle device with the same preset name is reused (warm
    /// context); otherwise a fresh device is created.
    pub fn acquire(&self, cfg: &DeviceConfig) -> DeviceLease {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(i) = state.idle.iter().position(|d| d.config().name == cfg.name) {
                let device = state.idle.swap_remove(i);
                state.outstanding += 1;
                return self.lease_of(device);
            }
            if state.outstanding + state.idle.len() < self.inner.capacity {
                state.outstanding += 1;
                state.created += 1;
                drop(state);
                return self.lease_of(Device::new(cfg.clone()));
            }
            // At capacity with no matching idle device. If idle devices of a
            // *different* preset exist, retire one to make room; otherwise
            // wait for a lease or ticket to come back.
            if let Some(i) = state.idle.iter().position(|d| d.config().name != cfg.name) {
                state.idle.swap_remove(i);
                continue;
            }
            state = self.inner.freed.wait(state).unwrap();
        }
    }

    /// Non-blocking [`DevicePool::acquire`]: `None` when the pool is at
    /// capacity with no reusable idle device.
    pub fn try_acquire(&self, cfg: &DeviceConfig) -> Option<DeviceLease> {
        let mut state = self.inner.state.lock().unwrap();
        if let Some(i) = state.idle.iter().position(|d| d.config().name == cfg.name) {
            let device = state.idle.swap_remove(i);
            state.outstanding += 1;
            return Some(self.lease_of(device));
        }
        if state.outstanding + state.idle.len() >= self.inner.capacity {
            // At capacity: retire a mismatched idle device to make room, or
            // give up if every slot is genuinely busy.
            match state.idle.iter().position(|d| d.config().name != cfg.name) {
                Some(i) => {
                    state.idle.swap_remove(i);
                }
                None => return None,
            }
        }
        state.outstanding += 1;
        state.created += 1;
        Some(self.lease_of(Device::new(cfg.clone())))
    }

    fn lease_of(&self, device: Device) -> DeviceLease {
        DeviceLease {
            inner: Arc::clone(&self.inner),
            device: Some(device),
        }
    }

    /// Devices currently leased or detached.
    pub fn outstanding(&self) -> usize {
        self.inner.state.lock().unwrap().outstanding
    }

    /// Warm devices waiting for reuse.
    pub fn idle(&self) -> usize {
        self.inner.state.lock().unwrap().idle.len()
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Devices this pool has ever constructed. Each paid context bring-up
    /// once; `devices_created()` × `context_init_ms` is a serving
    /// deployment's total bring-up cost, however many jobs it runs.
    pub fn devices_created(&self) -> usize {
        self.inner.state.lock().unwrap().created
    }
}

fn release(inner: &PoolInner, device: Option<Device>) {
    let mut state = inner.state.lock().unwrap();
    state.outstanding -= 1;
    if let Some(dev) = device {
        state.idle.push(dev);
    }
    drop(state);
    inner.freed.notify_one();
}

/// RAII lease of one pool device. Deref to use it; drop to return it warm.
#[derive(Debug)]
pub struct DeviceLease {
    inner: Arc<PoolInner>,
    device: Option<Device>,
}

impl DeviceLease {
    pub fn device(&self) -> &Device {
        self.device.as_ref().expect("lease holds a device")
    }

    pub fn device_mut(&mut self) -> &mut Device {
        self.device.as_mut().expect("lease holds a device")
    }

    /// Split into the raw device and a slot ticket, for structures that
    /// keep a device resident past the lease scope.
    pub fn detach(mut self) -> (Device, PoolTicket) {
        let device = self.device.take().expect("lease holds a device");
        let ticket = PoolTicket {
            inner: Arc::clone(&self.inner),
            done: false,
        };
        // `self` now holds no device; its Drop must not release the slot —
        // the ticket owns it. Forgetting the empty guard is the cleanest
        // way to hand over responsibility without a drop flag on the lease.
        std::mem::forget(self);
        (device, ticket)
    }
}

impl std::ops::Deref for DeviceLease {
    type Target = Device;
    fn deref(&self) -> &Device {
        self.device()
    }
}

impl std::ops::DerefMut for DeviceLease {
    fn deref_mut(&mut self) -> &mut Device {
        self.device_mut()
    }
}

impl Drop for DeviceLease {
    fn drop(&mut self) {
        release(&self.inner, self.device.take());
    }
}

/// The pool-slot half of a detached lease: returns the slot on drop, and
/// can give the (still warm) device back for reuse via
/// [`PoolTicket::restore`].
#[derive(Debug)]
pub struct PoolTicket {
    inner: Arc<PoolInner>,
    done: bool,
}

impl PoolTicket {
    /// Return the detached device to the pool's idle set and free the slot.
    pub fn restore(mut self, device: Device) {
        self.done = true;
        release(&self.inner, Some(device));
    }
}

impl Drop for PoolTicket {
    fn drop(&mut self) {
        if !self.done {
            release(&self.inner, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::gtx_980().with_unlimited_memory()
    }

    #[test]
    fn leases_block_capacity_and_return_warm_devices() {
        let pool = DevicePool::new(1);
        let mut lease = pool.acquire(&cfg());
        lease.preinit_context();
        assert_eq!(pool.outstanding(), 1);
        assert!(pool.try_acquire(&cfg()).is_none(), "pool is exhausted");
        drop(lease);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.idle(), 1);
        // The returned device is reused with its warm context: a fresh
        // allocation charges no context-init time.
        let mut again = pool.try_acquire(&cfg()).expect("idle device reusable");
        again.reset_clock();
        let _ = again.alloc::<u32>(8).unwrap();
        assert!(again.elapsed() < 1e-3, "warm context must not be re-paid");
    }

    #[test]
    fn detach_keeps_the_slot_until_the_ticket_drops() {
        let pool = DevicePool::new(1);
        let lease = pool.acquire(&cfg());
        let (device, ticket) = lease.detach();
        assert_eq!(pool.outstanding(), 1);
        assert!(pool.try_acquire(&cfg()).is_none());
        ticket.restore(device);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn dropping_a_ticket_frees_the_slot_without_a_device() {
        let pool = DevicePool::new(1);
        let (device, ticket) = pool.acquire(&cfg()).detach();
        drop(device);
        drop(ticket);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.idle(), 0);
        assert!(pool.try_acquire(&cfg()).is_some());
    }

    #[test]
    fn mismatched_idle_devices_are_retired_for_new_presets() {
        let pool = DevicePool::with_warm_devices(1, &cfg(), 1);
        assert_eq!(pool.idle(), 1);
        let other = DeviceConfig::tesla_c2050().with_unlimited_memory();
        let lease = pool.try_acquire(&other).expect("retires the mismatch");
        assert_eq!(lease.config().name, "Tesla C2050");
        drop(lease);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn acquire_unblocks_when_a_lease_returns() {
        let pool = DevicePool::new(1);
        let lease = pool.acquire(&cfg());
        let pool2 = pool;
        let handle = std::thread::spawn(move || {
            let l = pool2.acquire(&DeviceConfig::gtx_980().with_unlimited_memory());
            l.config().name
        });
        // Give the waiter a moment to park, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(lease);
        assert_eq!(handle.join().unwrap(), "GTX 980");
    }

    #[test]
    fn warm_pool_counts_idle_toward_capacity() {
        let pool = DevicePool::with_warm_devices(2, &cfg(), 2);
        let a = pool.acquire(&cfg());
        let b = pool.acquire(&cfg());
        assert!(pool.try_acquire(&cfg()).is_none());
        drop(a);
        drop(b);
    }
}
