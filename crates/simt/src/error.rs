//! Simulator error type.

use std::fmt;

/// Errors surfaced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimtError {
    /// `cudaMalloc` failed: the requested allocation does not fit in the
    /// device's remaining capacity. Carries the request and the headroom so
    /// callers (the §III-D6 fallback) can plan.
    OutOfMemory { requested: u64, available: u64 },
    /// A typed buffer operation used mismatched lengths.
    LengthMismatch { expected: usize, got: usize },
    /// A buffer handle was used after being freed or on the wrong device.
    InvalidBuffer { addr: u64 },
    /// A launch configuration was degenerate (zero blocks/threads, or a warp
    /// split that does not divide the warp).
    BadLaunch { message: &'static str },
    /// The static launch verifier rejected the kernel's access contract
    /// (out-of-bounds footprint, missing contract, shared-budget overrun,
    /// …). The findings are in the device's
    /// [`crate::VerifierReport`]; this carries the count.
    VerifierRejected { findings: usize },
}

impl fmt::Display for SimtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimtError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
            SimtError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            SimtError::InvalidBuffer { addr } => write!(f, "invalid buffer handle @{addr:#x}"),
            SimtError::BadLaunch { message } => write!(f, "bad launch config: {message}"),
            SimtError::VerifierRejected { findings } => write!(
                f,
                "static verifier rejected the launch ({findings} finding{})",
                if *findings == 1 { "" } else { "s" }
            ),
        }
    }
}

impl std::error::Error for SimtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_key_numbers() {
        let e = SimtError::OutOfMemory {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
        let e = SimtError::LengthMismatch {
            expected: 4,
            got: 5,
        };
        assert!(e.to_string().contains("expected 4"));
    }
}
