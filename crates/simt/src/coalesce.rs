//! Warp-level memory coalescing.
//!
//! The memory system serves line-sized transactions. When the lanes of a
//! warp issue loads in the same step, accesses falling in the same line are
//! merged into one transaction — the classic coalescing rule. The counting
//! kernel's outer loop (consecutive lanes read consecutive edge slots)
//! coalesces perfectly; the inner merge loop (each lane walks a different
//! adjacency list) mostly does not, which is precisely why the paper's
//! kernel is texture-cache-bound.

/// Collect the distinct line base addresses touched by a set of `(addr,
/// bytes)` accesses. Order of first touch is preserved (deterministic
/// timing), and a scratch buffer is reused by the caller to avoid per-step
/// allocation.
pub fn coalesce_into(accesses: &[(u64, u32)], line_bytes: u32, out: &mut Vec<u64>) {
    out.clear();
    let shift = line_bytes.trailing_zeros();
    for &(addr, bytes) in accesses {
        debug_assert!(bytes > 0);
        let first = addr >> shift;
        let last = (addr + bytes as u64 - 1) >> shift;
        for line in first..=last {
            let base = line << shift;
            // Warps have ≤ 32 lanes: linear containment check beats hashing.
            if !out.contains(&base) {
                out.push(base);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coalesce(accesses: &[(u64, u32)], line: u32) -> Vec<u64> {
        let mut out = Vec::new();
        coalesce_into(accesses, line, &mut out);
        out
    }

    #[test]
    fn perfectly_coalesced_warp_is_a_few_transactions() {
        // 32 lanes reading consecutive u32s: 128 bytes = 4 lines of 32 B.
        let accesses: Vec<(u64, u32)> = (0..32).map(|i| (i * 4, 4)).collect();
        assert_eq!(coalesce(&accesses, 32).len(), 4);
    }

    #[test]
    fn scattered_warp_is_one_transaction_per_lane() {
        let accesses: Vec<(u64, u32)> = (0..32).map(|i| (i * 4096, 4)).collect();
        assert_eq!(coalesce(&accesses, 32).len(), 32);
    }

    #[test]
    fn same_address_merges() {
        let accesses = vec![(100, 4), (100, 4), (96, 4)];
        assert_eq!(coalesce(&accesses, 32).len(), 1);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        // 8-byte read at offset 28 crosses the 32 B boundary.
        assert_eq!(coalesce(&[(28, 8)], 32), vec![0, 32]);
    }

    #[test]
    fn preserves_first_touch_order() {
        assert_eq!(coalesce(&[(64, 4), (0, 4), (65, 4)], 32), vec![64, 0]);
    }
}
