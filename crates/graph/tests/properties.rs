//! Property tests for the graph crate's own invariants.

use proptest::prelude::*;

use tc_graph::{AdjacencyList, Csr, EdgeArray, Orientation};

fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..60, 0u32..60), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn constructor_output_always_validates(pairs in arb_pairs()) {
        let g = EdgeArray::from_undirected_pairs(pairs);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    #[test]
    fn degrees_sum_to_arc_count(pairs in arb_pairs()) {
        let g = EdgeArray::from_undirected_pairs(pairs);
        let total: u64 = g.degrees().iter().map(|&d| d as u64).sum();
        prop_assert_eq!(total, g.num_arcs() as u64);
    }

    #[test]
    fn csr_roundtrip_preserves_arcs(pairs in arb_pairs()) {
        let g = EdgeArray::from_undirected_pairs(pairs);
        let csr = Csr::from_edge_array(&g).unwrap();
        prop_assert_eq!(csr.num_arcs(), g.num_arcs());
        let back = csr.to_edge_array();
        let mut a: Vec<u64> = g.arcs().iter().map(|e| e.as_u64_first_major()).collect();
        let mut b: Vec<u64> = back.arcs().iter().map(|e| e.as_u64_first_major()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn csr_neighbor_lists_sorted_and_complete(pairs in arb_pairs()) {
        let g = EdgeArray::from_undirected_pairs(pairs);
        let csr = Csr::from_edge_array(&g).unwrap();
        for v in 0..csr.num_nodes() as u32 {
            let nb = csr.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(nb.len() as u32, csr.degree(v));
            // Symmetry: u in N(v) <=> v in N(u).
            for &u in nb {
                prop_assert!(csr.neighbors(u).binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn adjacency_roundtrip(pairs in arb_pairs()) {
        let g = EdgeArray::from_undirected_pairs(pairs);
        let adj = AdjacencyList::from_edge_array(&g);
        let back = adj.to_edge_array();
        prop_assert_eq!(back.num_arcs(), g.num_arcs());
        prop_assert!(back.validate().is_ok());
    }

    #[test]
    fn orientation_is_a_partition_of_edges(pairs in arb_pairs()) {
        let g = EdgeArray::from_undirected_pairs(pairs);
        let orientation = Orientation::forward(&g).unwrap();
        // Every undirected edge appears exactly once, in exactly one
        // direction.
        let mut oriented: Vec<(u32, u32)> = orientation
            .csr
            .arcs()
            .map(|e| if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) })
            .collect();
        oriented.sort_unstable();
        let mut undirected: Vec<(u32, u32)> = g.undirected_iter().collect();
        undirected.sort_unstable();
        prop_assert_eq!(oriented, undirected);
    }

    #[test]
    fn text_io_roundtrip(pairs in arb_pairs()) {
        let g = EdgeArray::from_undirected_pairs(pairs);
        let mut buf: Vec<u8> = Vec::new();
        {
            use std::io::Write;
            for (u, v) in g.undirected_iter() {
                writeln!(buf, "{u} {v}").unwrap();
            }
        }
        let h = tc_graph::io::read_text_from(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(h.num_edges(), g.num_edges());
    }
}
